//! Crash, reboot and recovery scenarios, including the exact §3.2 cases.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{Capability, DirClient, Rights};
use amoeba_dirsvc::sim::{Ctx, Simulation};

fn ready_root(ctx: &Ctx, client: &DirClient) -> Capability {
    loop {
        match client.create_dir(ctx, &["owner"]) {
            Ok(c) => return c,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

fn form_cluster(seed: u64) -> (Simulation, Cluster, DirClient, Capability) {
    let mut sim = Simulation::new(seed);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let out = sim.spawn("form", move |ctx| ready_root(ctx, &c2));
    sim.run_for(Duration::from_secs(20));
    let root = out.take().expect("service formed");
    (sim, cluster, client, root)
}

#[test]
fn service_survives_one_crash_and_recovers_the_server() {
    let (mut sim, mut cluster, client, root) = form_cluster(41);
    // Write something before the crash.
    let c2 = client.clone();
    let pre = sim.spawn("pre", move |ctx| {
        c2.append_row(ctx, root, "before", root, vec![Rights::ALL])
            .is_ok()
    });
    sim.run_for(Duration::from_secs(5));
    assert_eq!(pre.take(), Some(true));

    cluster.crash_server(&sim, 2);
    let c3 = client.clone();
    let during = sim.spawn("during", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        // Majority (2 of 3) still serves reads and writes.
        let r1 = c3.lookup(ctx, root, "before").unwrap().is_some();
        let r2 = c3
            .append_row(ctx, root, "during", root, vec![Rights::ALL])
            .is_ok();
        (r1, r2)
    });
    sim.run_for(Duration::from_secs(15));
    assert_eq!(during.take(), Some((true, true)));

    // Reboot: the server recovers via Fig. 6 and catches up.
    cluster.restart_server(&sim, 2);
    sim.run_for(Duration::from_secs(15));
    assert!(cluster.group_server(2).is_normal(), "server 2 recovered");
    assert_eq!(
        cluster.group_server(2).update_seq(),
        cluster.group_server(0).update_seq(),
        "recovered server caught up"
    );
}

#[test]
fn two_simultaneous_crashes_require_all_servers_back() {
    // Servers 1 and 2 crash at the same instant, so no surviving
    // configuration vector records either death. Under the strict Fig. 6
    // rule the last set stays {0,1,2}: bringing back only server 1 is NOT
    // enough (server 2 might hold the newest update); service resumes
    // only once every member of the last set is reachable.
    let (mut sim, mut cluster, client, root) = form_cluster(43);
    cluster.crash_server(&sim, 1);
    cluster.crash_server(&sim, 2);
    let c2 = client.clone();
    let minority = sim.spawn("minority", move |ctx| {
        // Let failure detection run first. Reads are refused too (paper
        // §3.1: a partitioned survivor could otherwise resurrect deleted
        // directories).
        ctx.sleep(Duration::from_secs(2));
        c2.lookup(ctx, root, "whatever")
    });
    sim.run_for(Duration::from_secs(20));
    let refused = minority.take().expect("minority lookup returned");
    assert!(
        refused.is_err(),
        "a lone server must refuse reads: {refused:?}"
    );

    // Server 1 returns: majority exists, but the strict last-set check
    // still blocks (server 2 may have performed the last update).
    cluster.restart_server(&sim, 1);
    sim.run_for(Duration::from_secs(25));
    assert!(
        !cluster.group_server(0).is_normal(),
        "strict rule: {{0,1}} may not serve while 2's fate is unrecorded"
    );

    // Server 2 returns: the full last set is assembled; service resumes.
    cluster.restart_server(&sim, 2);
    sim.run_for(Duration::from_secs(25));
    let c3 = client.clone();
    let resumed = sim.spawn("resumed", move |ctx| {
        for _ in 0..50 {
            if c3
                .append_row(ctx, root, "resumed", root, vec![Rights::ALL])
                .is_ok()
            {
                return true;
            }
            ctx.sleep(Duration::from_millis(200));
        }
        false
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(
        resumed.take(),
        Some(true),
        "service resumed with full last set"
    );
}

#[test]
fn improved_rule_lets_a_stayed_up_server_recover_with_one_reboot() {
    // §3.2's improvement: server 0 never crashed, so it has every update
    // servers 1/2 could have performed; with the improved rule enabled it
    // may pair with a rebooted server instead of waiting for both.
    let mut sim = Simulation::new(45);
    let mut params = ClusterParams::paper(Variant::Group);
    params.dir.improved_recovery = true;
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let setup = sim.spawn("setup", move |ctx| {
        let root = ready_root(ctx, &c2);
        c2.append_row(ctx, root, "kept", root, vec![Rights::ALL])
            .unwrap();
        root
    });
    sim.run_for(Duration::from_secs(20));
    let root = setup.take().expect("formed");

    cluster.crash_server(&sim, 1);
    cluster.crash_server(&sim, 2);
    sim.run_for(Duration::from_secs(5));
    // Only server 1 returns; server 0 stayed up with the newest state.
    cluster.restart_server(&sim, 1);
    sim.run_for(Duration::from_secs(30));
    assert!(
        cluster.group_server(0).is_normal(),
        "improved rule: stayed-up server 0 + rebooted server 1 may serve"
    );
    let c3 = client.clone();
    let check = sim.spawn("check", move |ctx| {
        c3.lookup(ctx, root, "kept").unwrap().is_some()
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(check.take(), Some(true), "no update was lost");
}

#[test]
fn section_3_2_scenario_one_and_two_may_not_recover_alone() {
    // Paper §3.2: servers 1,2,3 up; 3 crashes; then 1 and 2 crash.
    // When 1 and 3 come back (2 still down), they must NOT form a
    // service: 2 may have performed the last update.
    let (mut sim, mut cluster, client, root) = form_cluster(47);
    let c2 = client.clone();
    let w = sim.spawn("w", move |ctx| {
        c2.append_row(ctx, root, "x", root, vec![Rights::ALL])
            .is_ok()
    });
    sim.run_for(Duration::from_secs(5));
    assert_eq!(w.take(), Some(true));

    // Crash 3 (index 2); let 1,2 rebuild (config vector 110).
    cluster.crash_server(&sim, 2);
    sim.run_for(Duration::from_secs(5));
    // Crash 1 and 2 (indexes 0, 1).
    cluster.crash_server(&sim, 0);
    cluster.crash_server(&sim, 1);
    sim.run_for(Duration::from_secs(2));

    // Restart 0 and 2 only.
    cluster.restart_server(&sim, 0);
    cluster.restart_server(&sim, 2);
    sim.run_for(Duration::from_secs(25));
    // Neither may enter normal operation: server 1 (who possibly performed
    // the last update) is in both last sets.
    assert!(
        !cluster.group_server(0).is_normal(),
        "server 0 must keep waiting for server 1"
    );
    assert!(
        !cluster.group_server(2).is_normal(),
        "server 2 must keep waiting for server 1"
    );
    // Client requests are refused meanwhile.
    let c3 = client.clone();
    let refused = sim.spawn("refused", move |ctx| c3.lookup(ctx, root, "x").is_err());
    sim.run_for(Duration::from_secs(10));
    assert_eq!(refused.take(), Some(true));

    // Server 1 returns: now recovery completes and data is intact.
    cluster.restart_server(&sim, 1);
    sim.run_for(Duration::from_secs(30));
    assert!(cluster.group_server(0).is_normal());
    let c4 = client.clone();
    let intact = sim.spawn("intact", move |ctx| {
        c4.lookup(ctx, root, "x").unwrap().is_some()
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(intact.take(), Some(true), "the update survived");
}

#[test]
fn section_3_2_scenario_one_and_two_recover_without_three() {
    // Paper §3.2: 3 crashes first (vectors become 110), then 1 and 2
    // crash. When 1 and 2 come back, they know 3 crashed before them and
    // recover WITHOUT 3.
    let (mut sim, mut cluster, client, root) = form_cluster(53);
    let c2 = client.clone();
    let w = sim.spawn("w", move |ctx| {
        c2.append_row(ctx, root, "y", root, vec![Rights::ALL])
            .is_ok()
    });
    sim.run_for(Duration::from_secs(5));
    assert_eq!(w.take(), Some(true));

    cluster.crash_server(&sim, 2);
    // Give 0 and 1 time to reset and write config vectors (110).
    sim.run_for(Duration::from_secs(8));
    cluster.crash_server(&sim, 0);
    cluster.crash_server(&sim, 1);
    sim.run_for(Duration::from_secs(2));

    // Only 0 and 1 return; 2 stays down.
    cluster.restart_server(&sim, 0);
    cluster.restart_server(&sim, 1);
    sim.run_for(Duration::from_secs(40));
    assert!(
        cluster.group_server(0).is_normal() && cluster.group_server(1).is_normal(),
        "servers 0 and 1 must recover without server 2"
    );
    let c3 = client.clone();
    let intact = sim.spawn("intact", move |ctx| {
        c3.lookup(ctx, root, "y").unwrap().is_some()
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(intact.take(), Some(true));
}

#[test]
fn updates_written_while_one_server_down_reach_it_after_recovery() {
    let (mut sim, mut cluster, client, root) = form_cluster(59);
    cluster.crash_server(&sim, 0);
    let c2 = client.clone();
    let w = sim.spawn("w", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        let mut ok = 0;
        for i in 0..5 {
            if c2
                .append_row(ctx, root, &format!("offline{i}"), root, vec![Rights::ALL])
                .is_ok()
            {
                ok += 1;
            }
        }
        ok
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(w.take(), Some(5));
    cluster.restart_server(&sim, 0);
    sim.run_for(Duration::from_secs(20));
    assert!(cluster.group_server(0).is_normal());
    assert_eq!(
        cluster.group_server(0).update_seq(),
        cluster.group_server(1).update_seq(),
        "recovered replica must hold the offline-period updates"
    );
}

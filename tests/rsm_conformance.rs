//! Conformance suite for the `amoeba-rsm` [`StateMachine`] contract,
//! run against *both* production machines (the directory service and
//! the lock/registry service), plus crash tests proving the
//! group-commit batching invariants: a batch becomes durable through
//! one flush, and recovery never observes a partially applied batch.

use std::sync::Arc;
use std::time::Duration;

use amoeba_dirsvc::bullet::{start_bullet_server, BulletClient, BulletStore};
use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{
    Capability, DirOp, DirParams, DirectoryStateMachine, LockRequest, LockStateMachine, Rights,
    ServiceConfig,
};
use amoeba_dirsvc::disk::{DiskParams, DiskServer, Journal, RawPartition, VDisk};
use amoeba_dirsvc::flip::{NetParams, Network, Payload};
use amoeba_dirsvc::rpc::{RpcClient, RpcNode};
use amoeba_dirsvc::rsm::StateMachine;
use amoeba_dirsvc::sim::{Ctx, NodeId, Resource, Simulation};
use std::sync::Mutex;

// ---------------------------------------------------------------------
// The generic conformance checks.
// ---------------------------------------------------------------------

/// Drives two machines through the same op stream (in batches with one
/// `flush` each — exactly what the driver does) and checks the trait
/// contract: deterministic replies, cursor-consistent snapshots, and
/// snapshot/install equivalence into a fresh machine.
fn check_conformance<S: StateMachine>(
    ctx: &Ctx,
    a: &S,
    b: &S,
    fresh: &S,
    batch1: &[Payload],
    batch2: &[Payload],
) {
    let mut seq = 0u64;
    // Batch 1 on a and b: identical replies, then one group commit.
    for op in batch1 {
        seq += 1;
        let ra = a.apply(ctx, seq, op);
        let rb = b.apply(ctx, seq, op);
        assert_eq!(ra, rb, "apply #{seq} diverged between replicas");
    }
    a.flush(ctx);
    b.flush(ctx);
    let (cur_a, snap_a) = a.snapshot(ctx);
    let (cur_b, snap_b) = b.snapshot(ctx);
    assert_eq!(cur_a, seq, "snapshot cursor must cover every apply");
    assert_eq!(cur_a, cur_b);
    assert_eq!(snap_a, snap_b, "same op stream must yield same snapshot");

    // Install into a fresh machine: state transfer must leave it
    // exactly as if it had applied the order itself.
    assert!(fresh.install(ctx, cur_a, &snap_a), "snapshot must install");
    let (cur_f, snap_f) = fresh.snapshot(ctx);
    assert_eq!((cur_f, &snap_f), (cur_a, &snap_a), "install not faithful");

    // Batch 2 on all three: the installed machine must stay in step.
    for op in batch2 {
        seq += 1;
        let ra = a.apply(ctx, seq, op);
        let rb = b.apply(ctx, seq, op);
        let rf = fresh.apply(ctx, seq, op);
        assert_eq!(ra, rb, "apply #{seq} diverged between replicas");
        assert_eq!(ra, rf, "apply #{seq} diverged after state transfer");
    }
    a.flush(ctx);
    b.flush(ctx);
    fresh.flush(ctx);
    let (ca, sa) = a.snapshot(ctx);
    let (cb, sb) = b.snapshot(ctx);
    let (cf, sf) = fresh.snapshot(ctx);
    assert_eq!(ca, seq);
    assert_eq!((ca, &sa), (cb, &sb));
    assert_eq!((ca, &sa), (cf, &sf), "installed machine diverged");
    // Idempotence: flushing with nothing pending is a no-op.
    a.flush(ctx);
    let (ca2, sa2) = a.snapshot(ctx);
    assert_eq!((ca, &sa), (ca2, &sa2));
}

// ---------------------------------------------------------------------
// Directory-machine harness: one storage column per machine.
// ---------------------------------------------------------------------

struct DirColumn {
    sm: Arc<DirectoryStateMachine>,
    node: NodeId,
    vdisk: VDisk,
}

const TABLE_BLOCKS: u64 = 16;

fn dir_column(
    sim: &Simulation,
    net: &Network,
    idx: usize,
    disk_params: DiskParams,
    dir_params: DirParams,
) -> DirColumn {
    let cfg = ServiceConfig::new(3, idx);
    let node = sim.add_node(&format!("col-{idx}"));
    let stack = net.attach();
    let rpc = RpcNode::start(sim, node, stack);
    let vdisk = VDisk::new(2048, 4096);
    let disk = DiskServer::start(sim, node, vdisk.clone(), disk_params);
    let partition = RawPartition::new(disk.clone(), 0, TABLE_BLOCKS);
    let store = BulletStore::new(2048 - TABLE_BLOCKS, 4096, 0xB0 + idx as u64);
    start_bullet_server(
        sim,
        node,
        &rpc,
        cfg.bullet_port(idx),
        disk,
        store,
        TABLE_BLOCKS,
        2,
    );
    let bullet = BulletClient::new(RpcClient::new(&rpc), cfg.bullet_port(idx));
    let cpu = Resource::new(sim.handle(), &format!("cpu-{idx}"));
    DirColumn {
        sm: Arc::new(DirectoryStateMachine::standalone(
            cfg, dir_params, bullet, partition, None, None, cpu,
        )),
        node,
        vdisk,
    }
}

fn dir_ops_batch1() -> Vec<Payload> {
    let port = ServiceConfig::new(3, 0).public_port;
    let cap = |object: u64, check: u64| Capability::owner(port, object, check);
    vec![
        DirOp::Create {
            columns: vec!["owner".into()],
            check: 0xC1 | 1,
        }
        .encode(),
        DirOp::Append {
            object: 1,
            name: "a".into(),
            cap: cap(1, 0xC1 | 1),
            col_rights: vec![Rights::ALL],
        }
        .encode(),
        DirOp::Append {
            object: 1,
            name: "b".into(),
            cap: cap(1, 0xC1 | 1),
            col_rights: vec![Rights::MODIFY],
        }
        .encode(),
        DirOp::Create {
            columns: vec!["owner".into(), "other".into()],
            check: 0xC2 | 1,
        }
        .encode(),
        DirOp::Append {
            object: 2,
            name: "x".into(),
            cap: cap(2, 0xC2 | 1),
            col_rights: vec![Rights::ALL, Rights::NONE],
        }
        .encode(),
        DirOp::Chmod {
            object: 1,
            name: "a".into(),
            col_rights: vec![Rights::column(0)],
        }
        .encode(),
        // An op that fails deterministically still consumes its slot.
        DirOp::DeleteRow {
            object: 1,
            name: "ghost".into(),
        }
        .encode(),
    ]
}

fn dir_ops_batch2() -> Vec<Payload> {
    let port = ServiceConfig::new(3, 0).public_port;
    vec![
        DirOp::DeleteRow {
            object: 1,
            name: "b".into(),
        }
        .encode(),
        // Delete a directory, then re-create: the allocator reuses the
        // object number inside one batch (drop-then-store coalescing).
        DirOp::Delete { object: 2 }.encode(),
        DirOp::Create {
            columns: vec!["owner".into()],
            check: 0xC3 | 1,
        }
        .encode(),
        DirOp::Append {
            object: 2,
            name: "y".into(),
            cap: Capability::owner(port, 2, 0xC3 | 1),
            col_rights: vec![Rights::ALL],
        }
        .encode(),
    ]
}

#[test]
fn directory_machine_conforms() {
    let mut sim = Simulation::new(0x5EED);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0x5EED);
    let a = dir_column(&sim, &net, 0, DiskParams::instant(), DirParams::default());
    let b = dir_column(&sim, &net, 1, DiskParams::instant(), DirParams::default());
    let f = dir_column(&sim, &net, 2, DiskParams::instant(), DirParams::default());
    let (sa, sb, sf) = (Arc::clone(&a.sm), Arc::clone(&b.sm), Arc::clone(&f.sm));
    let out = sim.spawn("conformance", move |ctx| {
        check_conformance(ctx, &*sa, &*sb, &*sf, &dir_ops_batch1(), &dir_ops_batch2());
        true
    });
    sim.run_for(Duration::from_secs(120));
    assert_eq!(out.take(), Some(true), "conformance run did not finish");
}

#[test]
fn lock_machine_conforms() {
    let mut sim = Simulation::new(7);
    let a = LockStateMachine::new(3);
    let b = LockStateMachine::new(3);
    let f = LockStateMachine::new(3);
    let acq = |name: &str, owner: u64| {
        LockRequest::Acquire {
            name: name.into(),
            owner,
        }
        .encode()
    };
    let rel = |name: &str, owner: u64| {
        LockRequest::Release {
            name: name.into(),
            owner,
        }
        .encode()
    };
    let batch1 = vec![
        acq("a", 1),
        acq("b", 2),
        acq("a", 9), // refused: busy
        rel("b", 2),
        rel("b", 2), // refused: not held
        acq("c", 3),
    ];
    let batch2 = vec![rel("a", 1), acq("a", 9), acq("d", 4)];
    let out = sim.spawn("conformance", move |ctx| {
        check_conformance(ctx, &a, &b, &f, &batch1, &batch2);
        true
    });
    sim.run();
    assert_eq!(out.take(), Some(true));
}

// ---------------------------------------------------------------------
// Group-commit batching invariants.
// ---------------------------------------------------------------------

/// An unflushed batch is pure RAM: a reboot before `flush` lands on the
/// pre-batch durable state. After `flush`, the whole batch is durable.
/// And the coalesced flush costs strictly fewer disk writes than
/// flushing each op individually.
#[test]
fn group_commit_defers_then_makes_batch_durable_and_coalesces() {
    let mut sim = Simulation::new(0xBA7C);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0xBA7C);
    // Batched column vs a flush-per-op column.
    let batched = dir_column(&sim, &net, 0, DiskParams::instant(), DirParams::default());
    let per_op = dir_column(&sim, &net, 1, DiskParams::instant(), DirParams::default());
    let (sm_b, sm_p) = (Arc::clone(&batched.sm), Arc::clone(&per_op.sm));
    let (vd_b, vd_p) = (batched.vdisk.clone(), per_op.vdisk.clone());
    let ops = dir_ops_batch1();
    let out = sim.spawn("batching", move |ctx| {
        // Apply the whole batch without flushing: nothing durable yet.
        for (i, op) in ops.iter().enumerate() {
            let _ = sm_b.apply(ctx, 1 + i as u64, op);
        }
        assert_eq!(
            sm_b.update_seq(),
            ops.len() as u64,
            "RAM state covers the batch"
        );
        // A reboot now (fresh machine over the same storage) sees the
        // pre-batch prefix: nothing.
        let rebooted = probe_machine(ctx, &sm_b);
        assert_eq!(rebooted, 0, "unflushed batch must not be visible");

        // One group commit, counting disk writes.
        let w0 = vd_b.stats().writes;
        sm_b.flush(ctx);
        let batched_writes = vd_b.stats().writes - w0;
        let rebooted = probe_machine(ctx, &sm_b);
        // Op 7 (the deterministic failure) consumes a logical seq but
        // has no durable effect, so a reboot recovers version 6: the
        // highest seqno stored with any directory (paper §3).
        assert_eq!(rebooted, 6, "flushed batch must be durable");

        // The same ops flushed one by one cost more disk writes.
        let w0 = vd_p.stats().writes;
        for (i, op) in ops.iter().enumerate() {
            let _ = sm_p.apply(ctx, 1 + i as u64, op);
            sm_p.flush(ctx);
        }
        let per_op_writes = vd_p.stats().writes - w0;
        assert!(
            batched_writes < per_op_writes,
            "group commit must coalesce: batched {batched_writes} vs per-op {per_op_writes}"
        );
        true
    });
    sim.run_for(Duration::from_secs(120));
    assert_eq!(out.take(), Some(true));
}

/// Boots a throwaway machine over the same storage and returns its
/// recovered `update_seq` (what a post-crash recovery would claim).
fn probe_machine(ctx: &Ctx, original: &DirectoryStateMachine) -> u64 {
    let probe = original.reopen_for_test();
    probe.boot(ctx);
    probe.update_seq()
}

// ---------------------------------------------------------------------
// Pipelined-commit (flush window > 1) crash matrix.
// ---------------------------------------------------------------------

/// The pipelined window is pure RAM until the flusher retires it: with
/// three sealed batches staged and nothing flushed, a reboot sees the
/// empty pre-window state; retiring staged flushes in token order then
/// makes exactly the flushed prefix durable, batch by batch.
#[test]
fn pipelined_window_exposes_no_unflushed_state_and_retires_in_order() {
    let mut sim = Simulation::new(0x91DE);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0x91DE);
    let params = DirParams {
        flush_window: 4,
        ..DirParams::default()
    };
    let col = dir_column(&sim, &net, 0, DiskParams::instant(), params);
    let sm = Arc::clone(&col.sm);
    let port = ServiceConfig::new(3, 0).public_port;
    let out = sim.spawn("pipelined-staging", move |ctx| {
        sm.boot(ctx); // enables the durable mirror (flush_window > 1)
        let cap = |object: u64, check: u64| Capability::owner(port, object, check);
        // Three batches, sealed but not flushed: the whole window in RAM.
        let batches: [Vec<Payload>; 3] = [
            vec![
                DirOp::Create {
                    columns: vec!["owner".into()],
                    check: 0xC1 | 1,
                }
                .encode(),
                DirOp::Append {
                    object: 1,
                    name: "a".into(),
                    cap: cap(1, 0xC1 | 1),
                    col_rights: vec![Rights::ALL],
                }
                .encode(),
            ],
            vec![
                DirOp::Create {
                    columns: vec!["owner".into()],
                    check: 0xC2 | 1,
                }
                .encode(),
                DirOp::Append {
                    object: 2,
                    name: "x".into(),
                    cap: cap(2, 0xC2 | 1),
                    col_rights: vec![Rights::ALL],
                }
                .encode(),
            ],
            vec![DirOp::Append {
                object: 1,
                name: "b".into(),
                cap: cap(1, 0xC1 | 1),
                col_rights: vec![Rights::MODIFY],
            }
            .encode()],
        ];
        let mut seq = 0u64;
        let mut batch_end = [0u64; 3];
        for (token, ops) in batches.iter().enumerate() {
            for op in ops {
                seq += 1;
                let _ = sm.apply(ctx, seq, op);
            }
            sm.seal_batch(ctx, token as u64);
            batch_end[token] = seq;
        }
        assert_eq!(sm.update_seq(), seq, "RAM state covers the whole window");
        assert_eq!(
            probe_machine(ctx, &sm),
            0,
            "a reboot with the full window staged must expose nothing"
        );
        // Retire token 0 alone: exactly batch 1 becomes durable — the
        // sealed-but-unflushed batches behind it stay invisible.
        sm.flush_staged(ctx, 0);
        assert_eq!(
            probe_machine(ctx, &sm),
            batch_end[0],
            "flushing token 0 must make exactly its batch durable"
        );
        // Retire the rest in order: the whole window is durable.
        sm.flush_staged(ctx, 1);
        sm.flush_staged(ctx, 2);
        assert_eq!(
            probe_machine(ctx, &sm),
            seq,
            "in-order staged flushes must retire the whole window"
        );
        true
    });
    sim.run_for(Duration::from_secs(120));
    assert_eq!(
        out.take(),
        Some(true),
        "pipelined staging run did not finish"
    );
}

/// Crash inside a guarded *staged* flush while a later sealed batch
/// waits behind it in the window: boot finds the `recovering` guard
/// with a non-zero epoch and salvages the durable prefix — at least
/// the pre-window base, never anything from the batch that was still
/// queued behind the crash.
#[test]
fn crash_mid_staged_flush_salvages_prefix_and_hides_queued_batches() {
    let mut sim = Simulation::new(0x91F1);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0x91F1);
    let params = DirParams {
        flush_window: 4,
        ..DirParams::default()
    };
    // Real Wren IV timing so the staged flush spans simulated time we
    // can crash inside of.
    let col = dir_column(&sim, &net, 0, DiskParams::wren_iv(), params.clone());
    let sm = Arc::clone(&col.sm);
    let sm2 = Arc::clone(&col.sm);
    let port = ServiceConfig::new(3, 0).public_port;
    // Seed through the *staged* path with a multi-object batch: its
    // guarded completion stamps a non-zero epoch, exactly as the
    // pipelined driver would have by the time real traffic flows.
    let seeded = sim.spawn("seed", move |ctx| {
        sm.boot(ctx);
        let ops = [
            DirOp::Create {
                columns: vec!["owner".into()],
                check: 0xC1 | 1,
            }
            .encode(),
            DirOp::Append {
                object: 1,
                name: "a".into(),
                cap: Capability::owner(port, 1, 0xC1 | 1),
                col_rights: vec![Rights::ALL],
            }
            .encode(),
            DirOp::Create {
                columns: vec!["owner".into()],
                check: 0xC2 | 1,
            }
            .encode(),
            DirOp::Append {
                object: 2,
                name: "x".into(),
                cap: Capability::owner(port, 2, 0xC2 | 1),
                col_rights: vec![Rights::ALL],
            }
            .encode(),
        ];
        for (i, op) in ops.iter().enumerate() {
            let _ = sm.apply(ctx, 1 + i as u64, op);
        }
        sm.seal_batch(ctx, 0);
        sm.flush_staged(ctx, 0);
        sm.update_seq()
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(seeded.take(), Some(4), "staged seed flush finished");

    // Two more batches sealed into the window; the flusher dies inside
    // the guarded flush of token 1 while token 2 waits behind it.
    sim.spawn_on(col.node, "mutator", move |ctx| {
        let mid = [
            DirOp::Append {
                object: 1,
                name: "mid1".into(),
                cap: Capability::owner(port, 1, 0xC1 | 1),
                col_rights: vec![Rights::ALL],
            }
            .encode(),
            DirOp::Append {
                object: 2,
                name: "mid2".into(),
                cap: Capability::owner(port, 2, 0xC2 | 1),
                col_rights: vec![Rights::ALL],
            }
            .encode(),
        ];
        for (i, op) in mid.iter().enumerate() {
            let _ = sm2.apply(ctx, 5 + i as u64, op);
        }
        sm2.seal_batch(ctx, 1);
        let late = DirOp::Append {
            object: 1,
            name: "late".into(),
            cap: Capability::owner(port, 1, 0xC1 | 1),
            col_rights: vec![Rights::ALL],
        }
        .encode();
        let _ = sm2.apply(ctx, 7, &late);
        sm2.seal_batch(ctx, 2);
        sm2.flush_staged(ctx, 1); // dies mid-way when the node crashes
    });
    // The guard write lands (~41 ms in), the batch does not complete.
    sim.run_for(Duration::from_millis(80));
    sim.crash_node(col.node);
    sim.run_for(Duration::from_millis(50));

    // Reboot over the surviving platters.
    sim.revive_node(col.node);
    let disk = DiskServer::start(&sim, col.node, col.vdisk.clone(), DiskParams::instant());
    let partition = RawPartition::new(disk, 0, TABLE_BLOCKS);
    let cfg = ServiceConfig::new(3, 0);
    let cpu = Resource::new(sim.handle(), "probe-cpu");
    let rpc = RpcNode::start(&sim, col.node, net.attach());
    let bullet = BulletClient::new(RpcClient::new(&rpc), cfg.bullet_port(0));
    let probe = Arc::new(DirectoryStateMachine::standalone(
        cfg,
        params,
        bullet,
        partition.clone(),
        None,
        None,
        cpu,
    ));
    let recovered = sim.spawn("reboot", move |ctx| {
        use amoeba_dirsvc::dir::CommitBlock;
        let commit = CommitBlock::read(&partition, ctx, 3).expect("commit block readable");
        assert!(
            commit.recovering,
            "crash mid staged flush must leave the recovering guard set"
        );
        assert!(
            commit.epoch > 0,
            "a staged flush guard keeps the (non-zero) epoch"
        );
        probe.boot(ctx);
        probe.update_seq()
    });
    sim.run_for(Duration::from_secs(20));
    let salvaged = recovered.take().expect("reboot probe finished");
    assert!(
        salvaged >= 4,
        "salvage must reach the durable pre-window base (got {salvaged})"
    );
    assert!(
        salvaged < 7,
        "the batch queued behind the crashed flush was never staged to \
         disk and must stay invisible (got {salvaged})"
    );
}

/// Crash in the middle of a *multi-object* batched flush: the commit
/// block's `recovering` guard must make the replica's state worthless
/// at next boot, so recovery copies a consistent state from a peer
/// instead of serving a hole.
#[test]
fn crash_mid_multi_object_flush_voids_local_state() {
    let mut sim = Simulation::new(0xC4A5);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0xC4A5);
    // Real Wren IV timing so the flush spans simulated time we can
    // crash inside of.
    let col = dir_column(&sim, &net, 0, DiskParams::wren_iv(), DirParams::default());
    let sm = Arc::clone(&col.sm);
    let sm2 = Arc::clone(&col.sm);
    // Seed two directories, each with a row, and flush: a consistent
    // durable base.
    let seeded = sim.spawn("seed", move |ctx| {
        for (i, op) in dir_ops_batch1().iter().enumerate() {
            let _ = sm.apply(ctx, 1 + i as u64, op);
        }
        sm.flush(ctx);
        sm.update_seq()
    });
    sim.run_for(Duration::from_secs(30));
    let base_seq = seeded.take().expect("seeding finished");
    assert!(base_seq > 0);

    // A multi-object batch (touches dir 1 and dir 2), then crash the
    // machine mid-flush.
    let port = ServiceConfig::new(3, 0).public_port;
    sim.spawn_on(col.node, "mutator", move |ctx| {
        let ops = [
            DirOp::Append {
                object: 1,
                name: "mid1".into(),
                cap: Capability::owner(port, 1, 0xC1 | 1),
                col_rights: vec![Rights::ALL],
            }
            .encode(),
            DirOp::Append {
                object: 2,
                name: "mid2".into(),
                cap: Capability::owner(port, 2, 0xC2 | 1),
                col_rights: vec![Rights::ALL, Rights::NONE],
            }
            .encode(),
        ];
        for (i, op) in ops.iter().enumerate() {
            let _ = sm2.apply(ctx, 100 + i as u64, op);
        }
        sm2.flush(ctx); // dies mid-way when the node crashes
    });
    // One Wren IV access is ~41 ms; the guarded flush issues several.
    // Crash right after the guard write lands but before the batch
    // completes.
    sim.run_for(Duration::from_millis(80));
    sim.crash_node(col.node);
    sim.run_for(Duration::from_millis(50));

    // Reboot the column: a fresh disk server over the surviving
    // platters, and a fresh machine booting from them.
    sim.revive_node(col.node);
    let disk = DiskServer::start(&sim, col.node, col.vdisk.clone(), DiskParams::wren_iv());
    let partition = RawPartition::new(disk, 0, TABLE_BLOCKS);
    let recovered = sim.spawn("reboot", move |ctx| {
        use amoeba_dirsvc::dir::CommitBlock;
        let commit = CommitBlock::read(&partition, ctx, 3).expect("commit block readable");
        commit.recovering
    });
    sim.run_for(Duration::from_secs(10));
    assert_eq!(
        recovered.take(),
        Some(true),
        "crash mid multi-object flush must leave the recovering guard set \
         (state worthless, forcing state transfer from a peer)"
    );
}

// ---------------------------------------------------------------------
// Whole-cluster crash during batched apply.
// ---------------------------------------------------------------------

/// Hammer the group service with concurrent updates (so the driver
/// applies real batches), crash a replica mid-stream, recover it, and
/// prove that every *acknowledged* update survived on every replica —
/// group commit never exposes a partially applied batch after
/// recovery.
#[test]
fn crash_during_batched_apply_loses_no_acknowledged_update() {
    crash_during_apply_scenario(1, 0x0DD5, false);
}

/// The same cluster crash with the two-stage commit pipeline engaged:
/// the replica dies with up to four sealed batches in flight between
/// the event loop and the flusher, and recovery must still surface
/// every acknowledged append on every replica.
#[test]
fn crash_during_pipelined_apply_loses_no_acknowledged_update() {
    crash_during_apply_scenario(4, 0x0DD6, false);
}

/// The same cluster crash with the group log on: commits are journal
/// appends, the table writeback races the crash in the background
/// checkpointer, and the restarted replica must replay its journal —
/// still, no acknowledged append may be lost anywhere.
#[test]
fn crash_during_journaled_apply_loses_no_acknowledged_update() {
    crash_during_apply_scenario(4, 0x0DD7, true);
}

fn crash_during_apply_scenario(flush_window: usize, seed: u64, journal: bool) {
    let mut sim = Simulation::new(seed);
    let mut params = ClusterParams::paper(Variant::Group);
    params.dir.flush_window = flush_window;
    params.dir.journal = journal;
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c = client.clone();
    let roots = sim.spawn("setup", move |ctx| {
        let mk = |ctx: &Ctx| loop {
            match c.create_dir(ctx, &["owner"]) {
                Ok(cap) => return cap,
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        };
        let r1 = mk(ctx);
        let r2 = mk(ctx);
        (r1, r2)
    });
    sim.run_for(Duration::from_secs(20));
    let (root1, root2) = roots.take().expect("service formed");

    // Concurrent writers against two directories → multi-object apply
    // batches on every replica.
    let acked: Arc<Mutex<Vec<(Capability, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut writers = Vec::new();
    for w in 0..4u64 {
        let (wc, _) = cluster.client(&sim);
        let acked = Arc::clone(&acked);
        let root = if w % 2 == 0 { root1 } else { root2 };
        writers.push(sim.spawn(&format!("writer-{w}"), move |ctx| {
            let mut ok = 0u32;
            for k in 0..12 {
                let name = format!("w{w}-{k}");
                let mut appended = false;
                for _ in 0..8 {
                    match wc.append_row(ctx, root, &name, root, vec![Rights::ALL]) {
                        Ok(()) => {
                            appended = true;
                            break;
                        }
                        Err(_) => ctx.sleep(Duration::from_millis(50)),
                    }
                }
                if appended {
                    acked.lock().unwrap().push((root, name));
                    ok += 1;
                }
            }
            ok
        }));
    }
    // Let the burst get going, then crash replica 1 mid-stream.
    sim.run_for(Duration::from_millis(1500));
    cluster.crash_server(&sim, 1);
    sim.run_for(Duration::from_secs(25));
    for w in writers {
        assert!(w.take().unwrap_or(0) > 0, "writers made no progress");
    }

    // Recover the crashed replica.
    cluster.restart_server(&sim, 1);
    sim.run_for(Duration::from_secs(40));
    assert!(cluster.group_server(1).is_normal(), "replica 1 recovered");

    // Every acknowledged append is visible, and all replicas agree on
    // the logical version — no holes, no partial batches.
    let acked_list = acked.lock().unwrap().clone();
    assert!(!acked_list.is_empty());
    let (rc, _) = cluster.client(&sim);
    let check = sim.spawn("check", move |ctx| {
        for (root, name) in &acked_list {
            let hit = loop {
                match rc.lookup(ctx, *root, name) {
                    Ok(h) => break h,
                    Err(_) => ctx.sleep(Duration::from_millis(100)),
                }
            };
            assert!(hit.is_some(), "acknowledged append {name} lost");
        }
        true
    });
    sim.run_for(Duration::from_secs(60));
    assert_eq!(check.take(), Some(true));
    let s0 = cluster.group_server(0).update_seq();
    let s1 = cluster.group_server(1).update_seq();
    let s2 = cluster.group_server(2).update_seq();
    assert_eq!(s0, s1, "recovered replica diverged");
    assert_eq!(s0, s2, "replicas diverged");
}

/// The commit-block epoch distinguishes the two reasons the
/// `recovering` guard can be found set at boot. Crash inside a guarded
/// *flush* (epoch > 0): every op of the batch was globally committed,
/// so the durable per-object prefix is salvaged — `update_seq` claims
/// the highest stored seqno instead of zero, and if every replica died
/// in the same flush window the service resumes from the best prefix
/// rather than losing everything. Crash inside a recovery *copy*
/// (epoch forced to 0 by `begin_copy`): the state may mix two
/// replicas' histories and stays worthless, exactly as before.
#[test]
fn crash_mid_flush_salvages_prefix_but_mid_copy_stays_worthless() {
    let mut sim = Simulation::new(0xE70C);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0xE70C);
    let col = dir_column(&sim, &net, 0, DiskParams::wren_iv(), DirParams::default());
    let sm = Arc::clone(&col.sm);
    let sm2 = Arc::clone(&col.sm);
    // Seed two directories, each with rows, through a guarded
    // multi-object flush: a consistent durable base.
    let seeded = sim.spawn("seed", move |ctx| {
        for (i, op) in dir_ops_batch1().iter().enumerate() {
            let _ = sm.apply(ctx, 1 + i as u64, op);
        }
        sm.flush(ctx);
        sm.update_seq()
    });
    sim.run_for(Duration::from_secs(30));
    let base_seq = seeded.take().expect("seeding finished");
    assert!(base_seq > 0);

    // A multi-object batch, then crash the machine mid-flush (same
    // timing as crash_mid_multi_object_flush_voids_local_state: the
    // guard write lands, the batch does not complete).
    let port = ServiceConfig::new(3, 0).public_port;
    sim.spawn_on(col.node, "mutator", move |ctx| {
        let ops = [
            DirOp::Append {
                object: 1,
                name: "mid1".into(),
                cap: Capability::owner(port, 1, 0xC1 | 1),
                col_rights: vec![Rights::ALL],
            }
            .encode(),
            DirOp::Append {
                object: 2,
                name: "mid2".into(),
                cap: Capability::owner(port, 2, 0xC2 | 1),
                col_rights: vec![Rights::ALL, Rights::NONE],
            }
            .encode(),
        ];
        for (i, op) in ops.iter().enumerate() {
            let _ = sm2.apply(ctx, 100 + i as u64, op);
        }
        sm2.flush(ctx); // dies mid-way when the node crashes
    });
    sim.run_for(Duration::from_millis(80));
    sim.crash_node(col.node);
    sim.run_for(Duration::from_millis(50));

    // Reboot over the surviving platters.
    sim.revive_node(col.node);
    let disk = DiskServer::start(&sim, col.node, col.vdisk.clone(), DiskParams::instant());
    let partition = RawPartition::new(disk, 0, TABLE_BLOCKS);
    let cfg = ServiceConfig::new(3, 0);
    let cpu = Resource::new(sim.handle(), "probe-cpu");
    let rpc = RpcNode::start(&sim, col.node, net.attach());
    let bullet = BulletClient::new(RpcClient::new(&rpc), cfg.bullet_port(0));
    let probe = Arc::new(DirectoryStateMachine::standalone(
        cfg.clone(),
        DirParams::default(),
        bullet.clone(),
        partition.clone(),
        None,
        None,
        cpu.clone(),
    ));
    let p1 = Arc::clone(&probe);
    let part2 = partition.clone();
    let salvaged = sim.spawn("probe-flush-crash", move |ctx| {
        use amoeba_dirsvc::dir::CommitBlock;
        let commit = CommitBlock::read(&part2, ctx, 3).expect("commit block readable");
        assert!(commit.recovering, "the flush guard must be on disk");
        assert!(commit.epoch > 0, "a flush guard keeps the epoch");
        p1.boot(ctx);
        p1.update_seq()
    });
    sim.run_for(Duration::from_secs(20));
    let salvaged_seq = salvaged.take().expect("salvage probe finished");
    // Batch 1's final op fails deterministically (consumes a logical
    // seq, stores nothing), so the durable pre-batch prefix claims
    // base_seq − 1 — which the salvage must reach instead of zero.
    assert!(
        salvaged_seq >= base_seq - 1 && salvaged_seq > 0,
        "crash mid-flush must salvage the pre-batch prefix \
         (salvaged {salvaged_seq}, durable base {})",
        base_seq - 1
    );

    // Now simulate a crash mid recovery copy over the same storage:
    // begin_copy zeroes the epoch; a machine booting from that state
    // must claim nothing.
    let p2 = Arc::new(DirectoryStateMachine::standalone(
        cfg,
        DirParams::default(),
        bullet,
        partition,
        None,
        None,
        cpu,
    ));
    let worthless = sim.spawn("probe-copy-crash", move |ctx| {
        probe.begin_copy(ctx); // writes recovering=true, epoch=0
        p2.boot(ctx);
        p2.update_seq()
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(
        worthless.take(),
        Some(0),
        "crash mid recovery copy must stay worthless (§3 rule)"
    );
}

// ---------------------------------------------------------------------
// Group-log crash matrix: the journaled commit path must lose no acked
// write across power cuts, torn tails, checkpoints, and full journals.
// ---------------------------------------------------------------------

/// Journal region carved between the metadata table and the Bullet
/// store: `[TABLE_BLOCKS, TABLE_BLOCKS + JOURNAL_BLOCKS)`.
const JOURNAL_BLOCKS: u64 = 64;

fn journaled_params() -> DirParams {
    DirParams {
        journal: true,
        ..DirParams::default()
    }
}

/// Like [`dir_column`], but with the group log on: a journal region is
/// carved out of the platter and the Bullet store starts past it —
/// the same layout the cluster builder produces.
fn dir_column_journaled(
    sim: &Simulation,
    net: &Network,
    idx: usize,
    disk_params: DiskParams,
    dir_params: DirParams,
    journal_blocks: u64,
) -> DirColumn {
    let cfg = ServiceConfig::new(3, idx);
    let node = sim.add_node(&format!("jcol-{idx}"));
    let rpc = RpcNode::start(sim, node, net.attach());
    let vdisk = VDisk::new(2048, 4096);
    let disk = DiskServer::start(sim, node, vdisk.clone(), disk_params);
    let partition = RawPartition::new(disk.clone(), 0, TABLE_BLOCKS);
    let journal = Journal::disk(RawPartition::new(
        disk.clone(),
        TABLE_BLOCKS,
        journal_blocks,
    ));
    let base = TABLE_BLOCKS + journal_blocks;
    let store = BulletStore::new(2048 - base, 4096, 0xB0 + idx as u64);
    start_bullet_server(sim, node, &rpc, cfg.bullet_port(idx), disk, store, base, 2);
    let bullet = BulletClient::new(RpcClient::new(&rpc), cfg.bullet_port(idx));
    let cpu = Resource::new(sim.handle(), &format!("jcpu-{idx}"));
    DirColumn {
        sm: Arc::new(DirectoryStateMachine::standalone(
            cfg,
            dir_params,
            bullet,
            partition,
            None,
            Some(journal),
            cpu,
        )),
        node,
        vdisk,
    }
}

/// Rebuilds a journaled probe machine cold over a (possibly revived)
/// column's platter — fresh disk server, fresh journal handle with a
/// cold cursor — exactly what a production restart does.
fn journaled_probe(
    sim: &Simulation,
    net: &Network,
    col: &DirColumn,
    journal_blocks: u64,
) -> (Arc<DirectoryStateMachine>, RawPartition) {
    let disk = DiskServer::start(sim, col.node, col.vdisk.clone(), DiskParams::instant());
    let partition = RawPartition::new(disk.clone(), 0, TABLE_BLOCKS);
    let journal = Journal::disk(RawPartition::new(
        disk.clone(),
        TABLE_BLOCKS,
        journal_blocks,
    ));
    let jpart = RawPartition::new(disk, TABLE_BLOCKS, journal_blocks);
    let cfg = ServiceConfig::new(3, 0);
    let rpc = RpcNode::start(sim, col.node, net.attach());
    let bullet = BulletClient::new(RpcClient::new(&rpc), cfg.bullet_port(0));
    let cpu = Resource::new(sim.handle(), "jprobe-cpu");
    let probe = Arc::new(DirectoryStateMachine::standalone(
        cfg,
        journaled_params(),
        bullet,
        partition,
        None,
        Some(journal),
        cpu,
    ));
    (probe, jpart)
}

/// Power-cut right after a journaled group commit: the table and Bullet
/// store were never written (the checkpointer never ran), yet boot must
/// replay the journal record and reproduce the committed state.
#[test]
fn journaled_commit_survives_crash_and_reboot() {
    let mut sim = Simulation::new(0x10A1);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0x10A1);
    let col = dir_column_journaled(
        &sim,
        &net,
        0,
        DiskParams::wren_iv(),
        journaled_params(),
        JOURNAL_BLOCKS,
    );
    let sm = Arc::clone(&col.sm);
    let committed = sim.spawn("seed", move |ctx| {
        for (i, op) in dir_ops_batch1().iter().enumerate() {
            let _ = sm.apply(ctx, 1 + i as u64, op);
        }
        // Journal on: this appends ONE sequential record and returns
        // with the commit durable — no table or Bullet writes.
        sm.flush(ctx);
        let (cur, snap) = sm.snapshot(ctx);
        (cur, snap)
    });
    sim.run_for(Duration::from_secs(30));
    let (cur, snap) = committed.take().expect("journaled commit finished");
    assert!(cur > 0);

    // Power-cut the machine: RAM dies, platters keep their bits.
    sim.crash_node(col.node);
    sim.run_for(Duration::from_millis(50));
    sim.revive_node(col.node);

    let (probe, _) = journaled_probe(&sim, &net, &col, JOURNAL_BLOCKS);
    let p = Arc::clone(&probe);
    let rebooted = sim.spawn("reboot", move |ctx| {
        p.boot(ctx);
        let (rcur, rsnap) = p.snapshot(ctx);
        (p.update_seq(), rcur, rsnap)
    });
    sim.run_for(Duration::from_secs(20));
    let (seq, _rcur, rsnap) = rebooted.take().expect("reboot finished");
    // Batch 1's final op fails deterministically (stores nothing), so
    // the replayed claim is the highest *stored* seqno — one short of
    // the logical cursor, same arithmetic as the salvage tests.
    assert!(
        seq >= cur - 1 && seq > 0,
        "journal replay must reach the acked batch (got {seq}, acked {cur})"
    );
    // The snapshot header's first word is the cursor claim, whose
    // salvage arithmetic (logical 7 vs highest-stored 6) is asserted
    // above; everything after it must be byte-identical.
    assert_eq!(
        &rsnap[8..],
        &snap[8..],
        "replayed state must be byte-identical to the acked state"
    );
}

/// A checkpoint drains the dirty set into real table/Bullet blocks and
/// advances the journal's tail; records appended after it replay on top
/// of the checkpointed table. Two independent boots over the same
/// platter must agree — replay is idempotent (acts are absolute
/// states), so re-running it changes nothing.
#[test]
fn checkpoint_drains_journal_and_replay_is_idempotent() {
    let mut sim = Simulation::new(0x10A2);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0x10A2);
    let col = dir_column_journaled(
        &sim,
        &net,
        0,
        DiskParams::instant(),
        journaled_params(),
        JOURNAL_BLOCKS,
    );
    let sm = Arc::clone(&col.sm);
    let live = sim.spawn("seed", move |ctx| {
        let mut seq = 0u64;
        for op in dir_ops_batch1() {
            seq += 1;
            let _ = sm.apply(ctx, seq, &op);
        }
        sm.flush(ctx); // record 1
                       // Drain it into long-term form; the journal tail advances.
        sm.checkpoint(ctx);
        for op in dir_ops_batch2() {
            seq += 1;
            let _ = sm.apply(ctx, seq, &op);
        }
        sm.flush(ctx); // record 2 — journaled, NOT checkpointed
        sm.snapshot(ctx)
    });
    sim.run_for(Duration::from_secs(30));
    let (_cur, snap) = live.take().expect("seed finished");

    // Boot twice over the same platter (boot does not consume the
    // journal): salvage the checkpointed table, replay record 2.
    let p1 = Arc::new(col.sm.reopen_for_test());
    let p2 = Arc::new(col.sm.reopen_for_test());
    let booted = sim.spawn("reboots", move |ctx| {
        p1.boot(ctx);
        let (_, s1) = p1.snapshot(ctx);
        p2.boot(ctx);
        let (_, s2) = p2.snapshot(ctx);
        (s1, s2)
    });
    sim.run_for(Duration::from_secs(30));
    let (s1, s2) = booted.take().expect("reboot probes finished");
    // Modulo the cursor-claim word (logical vs highest-stored seqno —
    // the salvage arithmetic), the state must be byte-identical.
    assert_eq!(
        &s1[8..],
        &snap[8..],
        "checkpointed table + journal replay must reproduce the acked state"
    );
    assert_eq!(s2, s1, "journal replay must be idempotent across boots");
}

/// A torn record at the journal's tail (the crash hit mid-append, so it
/// was never acked) must truncate cleanly: boot keeps every record
/// before the tear and loses only the unacked suffix.
#[test]
fn torn_journal_tail_truncates_to_acked_prefix() {
    let mut sim = Simulation::new(0x10A3);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0x10A3);
    let col = dir_column_journaled(
        &sim,
        &net,
        0,
        DiskParams::instant(),
        journaled_params(),
        JOURNAL_BLOCKS,
    );
    let sm = Arc::clone(&col.sm);
    let live = sim.spawn("seed", move |ctx| {
        let mut seq = 0u64;
        for op in dir_ops_batch1() {
            seq += 1;
            let _ = sm.apply(ctx, seq, &op);
        }
        sm.flush(ctx); // record 1 (acked)
        let mid = sm.snapshot(ctx);
        for op in dir_ops_batch2() {
            seq += 1;
            let _ = sm.apply(ctx, seq, &op);
        }
        sm.flush(ctx); // record 2 (the append the crash will tear)
        mid
    });
    sim.run_for(Duration::from_secs(30));
    let (_mid_cur, mid_snap) = live.take().expect("seed finished");

    sim.crash_node(col.node);
    sim.run_for(Duration::from_millis(50));
    sim.revive_node(col.node);

    // Emulate the tear: smash record 2's first frame (the frame header
    // carries its seq at [4..12)), as if the head crashed mid-write.
    let (probe, jpart) = journaled_probe(&sim, &net, &col, JOURNAL_BLOCKS);
    let p = Arc::clone(&probe);
    let rebooted = sim.spawn("tear-and-reboot", move |ctx| {
        let mut torn = false;
        for b in 1..jpart.len() {
            let blk = jpart.read(ctx, b);
            if blk.len() >= 12
                && blk[0..4] == 0x414A_524Eu32.to_le_bytes()
                && u64::from_le_bytes(blk[4..12].try_into().unwrap()) == 2
            {
                jpart.write(ctx, b, vec![0u8; blk.len()]);
                torn = true;
                break;
            }
        }
        assert!(torn, "record 2 must be on the platter to tear");
        p.boot(ctx);
        p.snapshot(ctx)
    });
    sim.run_for(Duration::from_secs(20));
    let (_rcur, rsnap) = rebooted.take().expect("reboot finished");
    // Modulo the cursor-claim word (logical vs highest-stored seqno),
    // the state must equal the batch-1-only snapshot.
    assert_eq!(
        &rsnap[8..],
        &mid_snap[8..],
        "a torn tail must truncate to exactly the acked prefix"
    );
}

/// A journal too small for the workload: `JournalFull` backpressures by
/// running the checkpoint inline (the failed batch's acts are already
/// in the dirty set, so the drain persists them — no append retry).
/// Every acked commit must survive a reboot regardless.
#[test]
fn full_journal_backpressure_keeps_commits_durable() {
    let mut sim = Simulation::new(0x10A4);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 0x10A4);
    // Superblock + 2 data blocks: a couple of records fill it.
    let col = dir_column_journaled(&sim, &net, 0, DiskParams::instant(), journaled_params(), 3);
    let port = ServiceConfig::new(3, 0).public_port;
    let sm = Arc::clone(&col.sm);
    let live = sim.spawn("seed", move |ctx| {
        let mut seq = 1u64;
        let _ = sm.apply(
            ctx,
            seq,
            &DirOp::Create {
                columns: vec!["owner".into()],
                check: 0xC1 | 1,
            }
            .encode(),
        );
        sm.flush(ctx);
        // Many one-op commits: far more bytes than the journal holds,
        // so several appends hit JournalFull and checkpoint inline.
        for k in 0..24 {
            seq += 1;
            let _ = sm.apply(
                ctx,
                seq,
                &DirOp::Append {
                    object: 1,
                    name: format!("j{k}"),
                    cap: Capability::owner(port, 1, 0xC1 | 1),
                    col_rights: vec![Rights::ALL],
                }
                .encode(),
            );
            sm.flush(ctx);
        }
        sm.snapshot(ctx)
    });
    sim.run_for(Duration::from_secs(60));
    let (cur, snap) = live.take().expect("seed finished");
    assert_eq!(cur, 25, "every commit must have been acked");

    let p = Arc::new(col.sm.reopen_for_test());
    let pp = Arc::clone(&p);
    let rebooted = sim.spawn("reboot", move |ctx| {
        pp.boot(ctx);
        (pp.update_seq(), pp.snapshot(ctx))
    });
    sim.run_for(Duration::from_secs(30));
    let (seq, (_rcur, rsnap)) = rebooted.take().expect("reboot finished");
    assert_eq!(seq, cur, "no acked commit may be lost to backpressure");
    assert_eq!(rsnap, snap, "rebooted state must match the acked state");
}

//! One-copy serializability: random operation sequences executed against
//! the replicated service must match the sequential in-memory model.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::model::DirModel;
use amoeba_dirsvc::dir::{Capability, DirClientError, DirError, DirOp, Rights};
use amoeba_dirsvc::sim::Simulation;
use amoeba_testkit::Gen;

/// A client-visible operation in the generated workload.
#[derive(Debug, Clone)]
enum WorkloadOp {
    Create,
    /// Append `name` to the directory created by the `k`-th create.
    Append {
        dir: usize,
        name: String,
    },
    DeleteRow {
        dir: usize,
        name: String,
    },
    Chmod {
        dir: usize,
        name: String,
    },
    DeleteDir {
        dir: usize,
    },
    Lookup {
        dir: usize,
        name: String,
    },
}

/// Draws one weighted workload operation (weights as in the original
/// proptest strategy: 1 create, 4 append, 3 delete-row, 2 chmod,
/// 1 delete-dir, 4 lookup).
fn gen_op(g: &mut Gen) -> WorkloadOp {
    const NAMES: [&str; 4] = ["a", "b", "c", "d"];
    let dir = g.below(4);
    let name = NAMES[g.below(4)].to_owned();
    match g.below(15) {
        0 => WorkloadOp::Create,
        1..=4 => WorkloadOp::Append { dir, name },
        5..=7 => WorkloadOp::DeleteRow { dir, name },
        8..=9 => WorkloadOp::Chmod { dir, name },
        10 => WorkloadOp::DeleteDir { dir },
        _ => WorkloadOp::Lookup { dir, name },
    }
}

#[test]
fn replicated_service_matches_sequential_model() {
    // Only a few cases: each spins up a whole simulated cluster.
    amoeba_testkit::check("replicated service matches model", 8, |g: &mut Gen| {
        let n = 1 + g.below(24);
        let ops: Vec<WorkloadOp> = (0..n).map(|_| gen_op(g)).collect();
        let seed = g.u64() % 1000;
        run_case(ops, seed);
    });
}

fn run_case(ops: Vec<WorkloadOp>, seed: u64) {
    let mut sim = Simulation::new(seed);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let out = sim.spawn("workload", move |ctx| {
        // Wait for formation.
        let mut created: Vec<Option<Capability>> = Vec::new();
        let mut model = DirModel::new();
        loop {
            match client.create_dir(ctx, &["owner"]) {
                Ok(c) => {
                    let expected = model.apply(&DirOp::Create {
                        columns: vec!["owner".into()],
                        check: 0,
                    });
                    assert_eq!(expected.unwrap().unwrap(), c.object);
                    created.push(Some(c));
                    break;
                }
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        }
        let mut failures = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                WorkloadOp::Create => {
                    let got = client.create_dir(ctx, &["owner"]);
                    let expected = model.apply(&DirOp::Create {
                        columns: vec!["owner".into()],
                        check: 0,
                    });
                    match (expected, &got) {
                        (Ok(Some(obj)), Ok(cap)) if cap.object == obj => {
                            created.push(Some(*cap));
                        }
                        other => failures.push(format!("op {i} Create mismatch: {other:?}")),
                    }
                }
                WorkloadOp::Append { dir, name } => {
                    let target = created.get(*dir).copied().flatten();
                    let Some(cap) = target else { continue };
                    let got = client.append_row(ctx, cap, name, cap, vec![Rights::ALL]);
                    let expected = model.apply(&DirOp::Append {
                        object: cap.object,
                        name: name.clone(),
                        cap,
                        col_rights: vec![Rights::ALL],
                    });
                    check(&mut failures, i, "Append", expected, got);
                }
                WorkloadOp::DeleteRow { dir, name } => {
                    let Some(cap) = created.get(*dir).copied().flatten() else {
                        continue;
                    };
                    let got = client.delete_row(ctx, cap, name);
                    let expected = model.apply(&DirOp::DeleteRow {
                        object: cap.object,
                        name: name.clone(),
                    });
                    check(&mut failures, i, "DeleteRow", expected, got);
                }
                WorkloadOp::Chmod { dir, name } => {
                    let Some(cap) = created.get(*dir).copied().flatten() else {
                        continue;
                    };
                    let got = client.chmod_row(ctx, cap, name, vec![Rights::MODIFY]);
                    let expected = model.apply(&DirOp::Chmod {
                        object: cap.object,
                        name: name.clone(),
                        col_rights: vec![Rights::MODIFY],
                    });
                    check(&mut failures, i, "Chmod", expected, got);
                }
                WorkloadOp::DeleteDir { dir } => {
                    let Some(cap) = created.get(*dir).copied().flatten() else {
                        continue;
                    };
                    let got = client.delete_dir(ctx, cap);
                    let expected = model.apply(&DirOp::Delete { object: cap.object });
                    if got.is_ok() {
                        created[*dir] = None;
                    }
                    check(&mut failures, i, "DeleteDir", expected, got);
                }
                WorkloadOp::Lookup { dir, name } => {
                    let Some(cap) = created.get(*dir).copied().flatten() else {
                        continue;
                    };
                    let got = client.lookup(ctx, cap, name);
                    let expected_present = model
                        .dir(cap.object)
                        .map(|d| d.find(name).is_some())
                        .unwrap_or(false);
                    match got {
                        Ok(found) => {
                            if found.is_some() != expected_present {
                                failures.push(format!(
                                    "op {i} Lookup({name}): service {} model {}",
                                    found.is_some(),
                                    expected_present
                                ));
                            }
                        }
                        Err(e) => failures.push(format!("op {i} Lookup error: {e}")),
                    }
                }
            }
        }
        failures
    });
    sim.run_for(Duration::from_secs(120));
    let failures = out.take().expect("workload finished");
    assert!(failures.is_empty(), "divergences: {failures:?}");
}

fn check(
    failures: &mut Vec<String>,
    i: usize,
    what: &str,
    expected: Result<Option<u64>, DirError>,
    got: Result<(), DirClientError>,
) {
    let matches = match (&expected, &got) {
        (Ok(None), Ok(())) => true,
        (Err(e), Err(DirClientError::Service(s))) => e == s,
        _ => false,
    };
    if !matches {
        failures.push(format!(
            "op {i} {what}: model {expected:?} vs service {got:?}"
        ));
    }
}

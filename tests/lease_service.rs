//! The replicated lease service: exclusive TTL grants over logical
//! time, ordered by the group; renewal, expiry-by-contention, and
//! crash/rejoin via peer snapshots (fifth `amoeba-rsm` consumer).

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::LeaseError;
use amoeba_dirsvc::sim::Simulation;

fn lease_cluster(seed: u64) -> (Simulation, Cluster) {
    let mut sim = Simulation::new(seed);
    let mut params = ClusterParams::paper(Variant::Group);
    params.lease_service = true;
    params.seed = seed;
    let cluster = Cluster::start(&sim, params);
    sim.run_for(Duration::from_secs(5)); // let the groups form
    let _ = &mut sim;
    (sim, cluster)
}

#[test]
fn grant_renew_release_and_query() {
    let (mut sim, mut cluster) = lease_cluster(311);
    let (client, _) = cluster.lease_client(&sim);
    let out = sim.spawn("app", move |ctx| {
        // Grant.
        let e1 = loop {
            match client.grant(ctx, "mig:a", 7, 10) {
                Ok(Some(e)) => break e,
                Ok(None) => panic!("fresh lease must grant"),
                Err(_) => ctx.sleep(Duration::from_millis(200)),
            }
        };
        assert_eq!(client.query(ctx, "mig:a").unwrap(), Some((7, e1)));
        // Renewal by the same owner extends the expiry.
        let e2 = client.grant(ctx, "mig:a", 7, 10).unwrap().expect("renew");
        assert!(e2 > e1, "renewal must push the expiry out");
        // A different owner is fenced out while the lease is live.
        assert_eq!(client.grant(ctx, "mig:a", 8, 10).unwrap(), None);
        // Release frees it; a foreign release reports false.
        assert!(!client.release(ctx, "mig:a", 8).unwrap());
        assert!(client.release(ctx, "mig:a", 7).unwrap());
        assert_eq!(client.query(ctx, "mig:a").unwrap(), None);
        // Now the other owner can take it.
        assert!(client.grant(ctx, "mig:a", 8, 10).unwrap().is_some());
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn dead_holder_expires_under_contention() {
    // The holder vanishes without releasing. Logical time only moves
    // with applied ops, so the contender's own retries age the grant
    // out: after `ttl` ordered operations the takeover must succeed.
    let (mut sim, mut cluster) = lease_cluster(313);
    let (client, _) = cluster.lease_client(&sim);
    let out = sim.spawn("app", move |ctx| {
        client
            .grant(ctx, "mig:hot", 1, 5)
            .unwrap()
            .expect("holder grants, then dies silently");
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match client.grant(ctx, "mig:hot", 2, 5).unwrap() {
                Some(_) => break,
                None => ctx.sleep(Duration::from_millis(50)),
            }
            assert!(attempts < 50, "contender must eventually take over");
        }
        // ttl = 5 ticks; each failed grant ticks the clock once, so the
        // takeover needs strictly more than one attempt...
        assert!(attempts > 1, "an unexpired lease must fence at least once");
        attempts
    });
    sim.run_for(Duration::from_secs(60));
    let attempts = out.take().expect("takeover completed");
    // ...and at most ttl + 1 of them (5 failed grants tick clock past
    // the expiry, the 6th wins).
    assert!(
        (2..=6).contains(&attempts),
        "takeover after ~ttl contended attempts, got {attempts}"
    );
}

#[test]
fn racing_grants_have_exactly_one_winner() {
    // Grants are ordered by the group's sequencer: of N racers for one
    // fresh lease, exactly one sees Granted, everyone else Busy.
    let (mut sim, mut cluster) = lease_cluster(317);
    let mut outs = Vec::new();
    for c in 0..4u64 {
        let (client, _) = cluster.lease_client(&sim);
        outs.push(sim.spawn(&format!("racer{c}"), move |ctx| loop {
            match client.grant(ctx, "mig:contended", c + 1, 1_000) {
                Ok(won) => return won.is_some(),
                Err(LeaseError::NoMajority) => ctx.sleep(Duration::from_millis(100)),
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        }));
    }
    sim.run_for(Duration::from_secs(60));
    let wins = outs
        .iter()
        .map(|o| o.take().expect("racer done"))
        .filter(|w| *w)
        .count();
    assert_eq!(wins, 1, "exactly one racer may hold the lease");
}

#[test]
fn crashed_replica_rejoins_via_peer_snapshot() {
    // The lease table is volatile: a rebooted replica recovers purely
    // from a peer's snapshot, and grants survive a single-replica
    // crash + rejoin.
    let (mut sim, mut cluster) = lease_cluster(331);
    let (client, _) = cluster.lease_client(&sim);
    let c2 = client.clone();
    let setup = sim.spawn("setup", move |ctx| {
        loop {
            match c2.grant(ctx, "mig:durable", 42, 1_000) {
                Ok(Some(_)) => break,
                _ => ctx.sleep(Duration::from_millis(200)),
            }
        }
        true
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(setup.take(), Some(true));

    cluster.crash_server(&sim, 2);
    sim.run_for(Duration::from_secs(5));
    cluster.restart_server(&sim, 2);
    sim.run_for(Duration::from_secs(20));

    // The rejoined replica serves and knows the grant (read through the
    // service, then directly off the rejoined machine's table).
    let probe = sim.spawn("probe", move |ctx| {
        client.query(ctx, "mig:durable").unwrap().map(|(o, _)| o)
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(probe.take(), Some(Some(42)));
    assert!(cluster.lease_server(2).is_normal(), "replica 2 rejoined");
    assert_eq!(
        cluster
            .lease_server(2)
            .machine()
            .holder("mig:durable")
            .map(|(o, _)| o),
        Some(42),
        "the rejoined replica's own table holds the grant"
    );
}

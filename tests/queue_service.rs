//! The replicated FIFO queue service in the cluster sim: the fourth
//! service on the `amoeba-rsm` driver, running its own group over the
//! shard-0 columns' kernels — here deliberately alongside a *sharded*
//! directory service, so one `GroupPeer` per machine carries several
//! groups at once.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{QueueError, Rights};
use amoeba_dirsvc::sim::Simulation;

fn queue_cluster(seed: u64, shards: usize) -> (Simulation, Cluster) {
    let sim = Simulation::new(seed);
    let mut params = ClusterParams::sharded(Variant::Group, shards);
    params.queue_service = true;
    params.seed = seed;
    let cluster = Cluster::start(&sim, params);
    (sim, cluster)
}

#[test]
fn fifo_semantics_end_to_end() {
    let (mut sim, mut cluster) = queue_cluster(301, 1);
    let (client, _) = cluster.queue_client(&sim);
    let out = sim.spawn("app", move |ctx| {
        // Retry until the queue group has formed.
        loop {
            match client.enqueue(ctx, "jobs", b"a".to_vec()) {
                Ok(()) => break,
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        }
        client.enqueue(ctx, "jobs", b"b".to_vec()).unwrap();
        client.enqueue(ctx, "jobs", b"c".to_vec()).unwrap();
        // Peek does not consume; dequeues come back in order.
        assert_eq!(client.peek(ctx, "jobs").unwrap(), Some(b"a".to_vec()));
        assert_eq!(client.dequeue(ctx, "jobs").unwrap(), Some(b"a".to_vec()));
        assert_eq!(client.dequeue(ctx, "jobs").unwrap(), Some(b"b".to_vec()));
        assert_eq!(client.dequeue(ctx, "jobs").unwrap(), Some(b"c".to_vec()));
        assert_eq!(client.dequeue(ctx, "jobs").unwrap(), None);
        // Queues are independent.
        client.enqueue(ctx, "other", b"z".to_vec()).unwrap();
        assert_eq!(client.peek(ctx, "jobs").unwrap(), None);
        assert_eq!(client.peek(ctx, "other").unwrap(), Some(b"z".to_vec()));
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn concurrent_consumers_get_each_element_exactly_once() {
    let (mut sim, mut cluster) = queue_cluster(307, 1);
    let (producer, _) = cluster.queue_client(&sim);
    let fill = sim.spawn("producer", move |ctx| {
        let mut ok = 0u32;
        for i in 0..20u8 {
            for _ in 0..50 {
                if producer.enqueue(ctx, "work", vec![i]).is_ok() {
                    ok += 1;
                    break;
                }
                ctx.sleep(Duration::from_millis(100));
            }
        }
        ok
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(fill.take(), Some(20));
    // Three consumers on separate machines race to drain; the group's
    // total order hands each element to exactly one of them.
    let mut outs = Vec::new();
    for c in 0..3 {
        let (consumer, _) = cluster.queue_client(&sim);
        outs.push(sim.spawn(&format!("consumer{c}"), move |ctx| {
            let mut got = Vec::new();
            loop {
                match consumer.dequeue(ctx, "work") {
                    Ok(Some(item)) => got.push(item[0]),
                    Ok(None) => return got,
                    Err(_) => ctx.sleep(Duration::from_millis(50)),
                }
            }
        }));
    }
    sim.run_for(Duration::from_secs(30));
    let mut all: Vec<u8> = outs
        .iter()
        .flat_map(|o| o.take().expect("consumer drained"))
        .collect();
    all.sort_unstable();
    assert_eq!(all, (0..20).collect::<Vec<u8>>(), "exactly-once handout");
}

#[test]
fn queue_survives_replica_crash_and_rejoin() {
    let (mut sim, mut cluster) = queue_cluster(311, 1);
    let (client, _) = cluster.queue_client(&sim);
    let c2 = client.clone();
    let pre = sim.spawn("pre", move |ctx| {
        for _ in 0..100 {
            if c2.enqueue(ctx, "q", b"before".to_vec()).is_ok() {
                return true;
            }
            ctx.sleep(Duration::from_millis(100));
        }
        false
    });
    sim.run_for(Duration::from_secs(15));
    assert_eq!(pre.take(), Some(true));

    cluster.crash_server(&sim, 1);
    let c3 = client.clone();
    let during = sim.spawn("during", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        // A volatile machine keeps serving through the surviving
        // majority.
        c3.enqueue(ctx, "q", b"during".to_vec()).is_ok()
            && c3.peek(ctx, "q") == Ok(Some(b"before".to_vec()))
    });
    sim.run_for(Duration::from_secs(15));
    assert_eq!(during.take(), Some(true));

    cluster.restart_server(&sim, 1);
    sim.run_for(Duration::from_secs(20));
    assert!(
        cluster.queue_server(1).is_normal(),
        "rebooted queue replica rejoined"
    );
    // The rebooted replica recovered the whole queue from a peer's
    // snapshot (it has no disk of its own).
    assert_eq!(cluster.queue_server(1).machine().len("q"), 2);
    assert_eq!(
        cluster.queue_server(1).machine().head("q"),
        Some(b"before".to_vec())
    );
}

#[test]
fn queue_and_sharded_directory_share_machines() {
    // Several groups per GroupPeer: the shard-0 machines carry the
    // shard-0 directory group AND the queue group; the shard-1
    // machines carry shard 1's. Everything serves concurrently.
    let (mut sim, mut cluster) = queue_cluster(313, 2);
    assert_eq!(cluster.columns.len(), 6);
    let (dir_client, _) = cluster.client(&sim);
    let (q_client, _) = cluster.queue_client(&sim);
    let out = sim.spawn("app", move |ctx| {
        let root = loop {
            match dir_client.create_dir(ctx, &["owner"]) {
                Ok(c) => break c,
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        };
        loop {
            match q_client.enqueue(ctx, "mixed", b"1".to_vec()) {
                Ok(()) => break,
                Err(QueueError::NoMajority) | Err(QueueError::Rpc(_)) => {
                    ctx.sleep(Duration::from_millis(100));
                }
                Err(e) => panic!("queue error: {e}"),
            }
        }
        dir_client
            .append_row(ctx, root, "row", root, vec![Rights::ALL])
            .unwrap();
        let r1 = dir_client.lookup(ctx, root, "row").unwrap().is_some();
        let r2 = q_client.dequeue(ctx, "mixed").unwrap() == Some(b"1".to_vec());
        r1 && r2
    });
    sim.run_for(Duration::from_secs(40));
    assert_eq!(out.take(), Some(true));
}

//! Network-partition behaviour: the paper's accessible-copies majority
//! rule (§3.1) and post-heal convergence.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{Capability, DirClient, Rights};
use amoeba_dirsvc::sim::{Ctx, Simulation};

fn ready_root(ctx: &Ctx, client: &DirClient) -> Capability {
    loop {
        match client.create_dir(ctx, &["owner"]) {
            Ok(c) => return c,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

#[test]
fn majority_side_serves_minority_side_refuses() {
    let mut sim = Simulation::new(61);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let setup = sim.spawn("setup", move |ctx| ready_root(ctx, &c2));
    sim.run_for(Duration::from_secs(15));
    let root = setup.take().expect("formed");

    // Server 2 alone on one side; the client stays with the majority.
    cluster.isolate_server(2);
    let c3 = client.clone();
    let out = sim.spawn("during", move |ctx| {
        ctx.sleep(Duration::from_secs(2));
        let write_ok = c3
            .append_row(ctx, root, "partitioned-write", root, vec![Rights::ALL])
            .is_ok();
        let read_ok = c3.lookup(ctx, root, "partitioned-write").unwrap().is_some();
        (write_ok, read_ok)
    });
    sim.run_for(Duration::from_secs(15));
    assert_eq!(out.take(), Some((true, true)));
    // The isolated server must NOT be serving (its group lost majority).
    assert!(
        !cluster.group_server(2).is_normal(),
        "isolated server must leave normal operation"
    );
}

#[test]
fn paper_motivating_case_deleted_directory_stays_deleted() {
    // §3.1's rationale for refusing reads without a majority: delete a
    // directory while one server is partitioned away; after healing, that
    // server must never answer a read with the deleted directory.
    let mut sim = Simulation::new(67);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let setup = sim.spawn("setup", move |ctx| {
        let root = ready_root(ctx, &c2);
        let doomed = c2.create_dir(ctx, &["owner"]).unwrap();
        c2.append_row(ctx, root, "foo", doomed, vec![Rights::ALL])
            .unwrap();
        (root, doomed)
    });
    sim.run_for(Duration::from_secs(15));
    let (root, doomed) = setup.take().expect("setup done");

    cluster.isolate_server(0);
    let c3 = client.clone();
    let during = sim.spawn("during", move |ctx| {
        ctx.sleep(Duration::from_secs(2));
        // Delete the directory on the majority side.
        c3.delete_dir(ctx, doomed).unwrap();
        c3.delete_row(ctx, root, "foo").unwrap();
        true
    });
    sim.run_for(Duration::from_secs(15));
    assert_eq!(during.take(), Some(true));

    cluster.heal();
    sim.run_for(Duration::from_secs(15));
    // Server 0 rejoined and caught up.
    assert!(cluster.group_server(0).is_normal());
    let c4 = client.clone();
    let after = sim.spawn("after", move |ctx| {
        // Hammer lookups so every server answers at least once.
        for _ in 0..20 {
            if c4.lookup(ctx, root, "foo").unwrap().is_some() {
                return false; // resurrection!
            }
            let gone = c4.list(ctx, doomed);
            if gone.is_ok() {
                return false;
            }
        }
        true
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(after.take(), Some(true), "deleted state must stay deleted");
}

#[test]
fn three_way_partition_stops_everything_then_recovers() {
    let mut sim = Simulation::new(71);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let setup = sim.spawn("setup", move |ctx| ready_root(ctx, &c2));
    sim.run_for(Duration::from_secs(15));
    let root = setup.take().expect("formed");

    // Every server on its own island (clients with nobody).
    let hosts: Vec<_> = cluster.columns.iter().map(|c| c.host).collect();
    cluster
        .net
        .set_partition(&[&[hosts[0]], &[hosts[1]], &[hosts[2]]]);
    let c3 = client.clone();
    let during = sim.spawn("during", move |ctx| {
        ctx.sleep(Duration::from_secs(3));
        c3.lookup(ctx, root, "x").is_err()
    });
    sim.run_for(Duration::from_secs(25));
    assert_eq!(during.take(), Some(true), "no island may serve");

    cluster.heal();
    sim.run_for(Duration::from_secs(30));
    let c4 = client.clone();
    let after = sim.spawn("after", move |ctx| {
        for _ in 0..100 {
            if c4
                .append_row(ctx, root, "healed", root, vec![Rights::ALL])
                .is_ok()
            {
                return true;
            }
            ctx.sleep(Duration::from_millis(200));
        }
        false
    });
    sim.run_for(Duration::from_secs(40));
    assert_eq!(after.take(), Some(true), "service must re-form after heal");
}

//! The group directory service over a routed two-segment internetwork:
//! the sequencer (column 0) on `net-a`, the other replicas on `net-b`,
//! every packet between them store-and-forwarded by a router. The
//! group conformance and crash/rejoin suites must hold unchanged, the
//! replicated services must stay reachable across segments, and the
//! per-segment occupancy accounting must add up.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{Capability, DirClient, DirClientError, DirError, Rights};
use amoeba_dirsvc::flip::SegmentId;
use amoeba_dirsvc::sim::{Ctx, Simulation};

fn ready_root(ctx: &Ctx, client: &DirClient, columns: &[&str]) -> Capability {
    loop {
        match client.create_dir(ctx, columns) {
            Ok(c) => return c,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

fn routed_cluster(seed: u64) -> (Simulation, Cluster, DirClient, Capability) {
    let mut sim = Simulation::new(seed);
    let mut params = ClusterParams::routed(Variant::Group);
    params.seed = seed;
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let out = sim.spawn("form", move |ctx| ready_root(ctx, &c2, &["owner"]));
    sim.run_for(Duration::from_secs(30));
    let root = out.take().expect("routed service formed");
    (sim, cluster, client, root)
}

#[test]
fn columns_really_live_on_different_segments() {
    let mut sim = Simulation::new(61);
    let cluster = Cluster::start(&sim, ClusterParams::routed(Variant::Group));
    let net = cluster.net.clone();
    assert_eq!(net.segment_of(cluster.columns[0].host), Some(SegmentId(0)));
    assert_eq!(net.segment_of(cluster.columns[1].host), Some(SegmentId(1)));
    assert_eq!(net.segment_of(cluster.columns[2].host), Some(SegmentId(0)));
    assert_eq!(net.router_addrs().len(), 1);
    sim.run_for(Duration::from_millis(1));
}

#[test]
fn fig2_operations_work_over_routed_topology() {
    // The full Fig. 2 conformance pass, sequencer and a replica a
    // router hop apart.
    let (mut sim, cluster, client, _) = routed_cluster(63);
    let out = sim.spawn("app", move |ctx| {
        let root = ready_root(ctx, &client, &["owner", "other"]);
        client
            .append_row(ctx, root, "a", root, vec![Rights::ALL, Rights::NONE])
            .unwrap();
        assert_eq!(
            client.append_row(ctx, root, "a", root, vec![Rights::ALL, Rights::NONE]),
            Err(DirClientError::Service(DirError::DuplicateName))
        );
        let listing = client.list(ctx, root).unwrap();
        assert_eq!(listing.rows.len(), 1);
        client
            .chmod_row(ctx, root, "a", vec![Rights::MODIFY, Rights::column(1)])
            .unwrap();
        let caps = client
            .lookup_set(ctx, vec![(root, "a".into()), (root, "ghost".into())])
            .unwrap();
        assert!(caps[0].is_some() && caps[1].is_none());
        let other = client.create_dir(ctx, &["owner"]).unwrap();
        client
            .replace_set(ctx, vec![(root, "a".into(), other)])
            .unwrap();
        client.delete_row(ctx, root, "a").unwrap();
        client.delete_dir(ctx, other).unwrap();
        true
    });
    sim.run_for(Duration::from_secs(60));
    assert_eq!(out.take(), Some(true));
    // The replication traffic really crossed the router.
    let st = cluster.net.stats();
    assert!(
        st.packets_forwarded > 0,
        "a split deployment must forward packets"
    );
}

#[test]
fn total_order_holds_across_segments() {
    // Racing appends of the same name from clients on net-a, arbitrated
    // by a sequencer whose peers are on net-b: exactly one winner per
    // round, exactly as on the flat LAN.
    let (mut sim, mut cluster, _, root) = routed_cluster(67);
    let mut outs = Vec::new();
    for c in 0..4 {
        let (client, _) = cluster.client(&sim);
        outs.push(sim.spawn(&format!("racer{c}"), move |ctx| {
            let mut wins = 0u32;
            for round in 0..10 {
                let name = format!("contended{round}");
                match client.append_row(ctx, root, &name, root, vec![Rights::ALL]) {
                    Ok(()) => wins += 1,
                    Err(DirClientError::Service(DirError::DuplicateName)) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            wins
        }));
    }
    sim.run_for(Duration::from_secs(90));
    let total: u32 = outs.iter().map(|o| o.take().expect("racer done")).sum();
    assert_eq!(total, 10, "each round must have exactly one winner");
}

#[test]
fn replicas_converge_across_the_router() {
    let (mut sim, cluster, client, root) = routed_cluster(71);
    let out = sim.spawn("app", move |ctx| {
        for i in 0..10 {
            client
                .append_row(ctx, root, &format!("e{i}"), root, vec![Rights::ALL])
                .unwrap();
        }
        client.delete_row(ctx, root, "e3").unwrap();
        true
    });
    sim.run_for(Duration::from_secs(60));
    assert_eq!(out.take(), Some(true));
    let s0 = cluster.group_server(0).update_seq();
    let s1 = cluster.group_server(1).update_seq();
    let s2 = cluster.group_server(2).update_seq();
    assert_eq!(s0, s1, "replica versions diverged across segments");
    assert_eq!(s1, s2, "replica versions diverged across segments");
}

#[test]
fn crash_and_rejoin_of_the_remote_replica() {
    // Crash the net-b replica (a router hop from the sequencer), write
    // through the surviving majority, and let it recover across the
    // router: the Fig. 6 recovery protocol must work store-and-forward.
    let (mut sim, mut cluster, client, root) = routed_cluster(73);
    let c2 = client.clone();
    let pre = sim.spawn("pre", move |ctx| {
        c2.append_row(ctx, root, "before", root, vec![Rights::ALL])
            .is_ok()
    });
    sim.run_for(Duration::from_secs(5));
    assert_eq!(pre.take(), Some(true));

    cluster.crash_server(&sim, 1); // the lone net-b replica
    let c3 = client.clone();
    let during = sim.spawn("during", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        let r1 = c3.lookup(ctx, root, "before").unwrap().is_some();
        let r2 = c3
            .append_row(ctx, root, "during", root, vec![Rights::ALL])
            .is_ok();
        (r1, r2)
    });
    sim.run_for(Duration::from_secs(15));
    assert_eq!(during.take(), Some((true, true)));

    cluster.restart_server(&sim, 1);
    sim.run_for(Duration::from_secs(20));
    assert!(
        cluster.group_server(1).is_normal(),
        "remote replica rejoined"
    );
    assert_eq!(
        cluster.group_server(1).update_seq(),
        cluster.group_server(0).update_seq(),
        "recovered replica caught up across the router"
    );
}

#[test]
fn offline_updates_reach_the_crashed_sequencer_after_recovery() {
    // The flat suite's recovery-catches-up scenario with the *sequencer*
    // (column 0, on net-a) as the crash victim, so the whole recovery
    // copy crosses the router.
    let (mut sim, mut cluster, client, root) = routed_cluster(79);
    cluster.crash_server(&sim, 0);
    let c2 = client.clone();
    let w = sim.spawn("w", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        let mut ok = 0;
        for i in 0..5 {
            for _ in 0..20 {
                if c2
                    .append_row(ctx, root, &format!("offline{i}"), root, vec![Rights::ALL])
                    .is_ok()
                {
                    ok += 1;
                    break;
                }
                ctx.sleep(Duration::from_millis(250));
            }
        }
        ok
    });
    sim.run_for(Duration::from_secs(40));
    assert_eq!(w.take(), Some(5));
    cluster.restart_server(&sim, 0);
    sim.run_for(Duration::from_secs(30));
    assert!(cluster.group_server(0).is_normal());
    assert_eq!(
        cluster.group_server(0).update_seq(),
        cluster.group_server(1).update_seq(),
        "recovered sequencer must hold the offline-period updates"
    );
}

#[test]
fn registry_resolves_service_names_across_segments() {
    // The replicated port-name registry (third amoeba-rsm consumer)
    // spread over both segments: a client on net-a registers the
    // directory service's public port under a name, a second client
    // resolves it and uses the resolved port for a real lookup — the
    // locate for which crosses the router via the expanding ring.
    let mut sim = Simulation::new(83);
    let mut params = ClusterParams::routed(Variant::Group);
    params.registry_service = true;
    params.lock_service = true;
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let setup = sim.spawn("form", move |ctx| ready_root(ctx, &c2, &["owner"]));
    sim.run_for(Duration::from_secs(30));
    let root = setup.take().expect("routed service formed");

    let (reg, _) = cluster.registry_client(&sim);
    let dir_port = amoeba_dirsvc::dir::ServiceConfig::new(3, 0).public_port;
    let out = sim.spawn("registrar", move |ctx| {
        let mut ok = false;
        for _ in 0..50 {
            match reg.register(ctx, "svc/dir", dir_port) {
                Ok(()) => {
                    ok = true;
                    break;
                }
                Err(_) => ctx.sleep(Duration::from_millis(200)),
            }
        }
        assert!(ok, "registry registration must succeed");
        // Duplicate binding to the same port is idempotent; a different
        // port conflicts.
        assert!(reg.register(ctx, "svc/dir", dir_port).is_ok());
        assert!(matches!(
            reg.register(ctx, "svc/dir", amoeba_dirsvc::flip::Port::from_raw(0xBAD)),
            Err(amoeba_dirsvc::dir::RegistryError::Conflict(_))
        ));
        reg.lookup(ctx, "svc/dir").unwrap()
    });
    sim.run_for(Duration::from_secs(30));
    let resolved = out.take().expect("lookup returned");
    assert_eq!(resolved, Some(dir_port), "name must resolve to the port");

    // Use the resolved port from a fresh machine: end-to-end
    // name → port → locate → routed RPC.
    let (c3, _) = cluster.client(&sim);
    let check = sim.spawn("resolved-lookup", move |ctx| {
        c3.append_row(ctx, root, "via-registry", root, vec![Rights::ALL])
            .is_ok()
            && c3.lookup(ctx, root, "via-registry").unwrap().is_some()
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(check.take(), Some(true));
    // All three registry replicas converged on the binding.
    for i in 0..3 {
        assert_eq!(
            cluster.registry_server(i).machine().bound_port("svc/dir"),
            Some(dir_port),
            "replica {i} must hold the binding"
        );
    }
    // And the lock service co-exists on the same kernels, across the
    // same router.
    let (lock, _) = cluster.lock_client(&sim);
    let locked = sim.spawn("lock", move |ctx| {
        lock.acquire(ctx, "inter/lock", 9).is_ok() && lock.query(ctx, "inter/lock") == Ok(Some(9))
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(locked.take(), Some(true));
}

#[test]
fn per_segment_accounting_adds_up_and_router_carries_load() {
    let (mut sim, mut cluster, _, root) = routed_cluster(89);
    let (client, _) = cluster.client(&sim);
    let out = sim.spawn("load", move |ctx| {
        let mut ok = 0u32;
        for i in 0..20 {
            if client
                .append_row(ctx, root, &format!("n{i}"), root, vec![Rights::ALL])
                .is_ok()
            {
                ok += 1;
            }
        }
        ok
    });
    sim.run_for(Duration::from_secs(60));
    assert!(out.take().unwrap_or(0) >= 18, "load mostly succeeded");
    let st = cluster.net.stats();
    assert_eq!(st.segments.len(), 2);
    assert_eq!(st.segments[0].name, "net-a");
    assert_eq!(st.segments[1].name, "net-b");
    assert!(
        st.segments[0].wire_busy_nanos > 0 && st.segments[1].wire_busy_nanos > 0,
        "both wires must have carried traffic"
    );
    assert_eq!(
        st.wire_busy_nanos,
        st.segments[0].wire_busy_nanos + st.segments[1].wire_busy_nanos,
        "total wire busy must equal the per-segment sum"
    );
    assert!(
        st.packets_forwarded > 0,
        "the router carried the replication traffic"
    );
    assert_eq!(
        st.segments[0].frames + st.segments[1].frames,
        st.packets_sent + st.packets_forwarded,
        "every frame is an origin send or a forward"
    );
}

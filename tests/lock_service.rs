//! The replicated lock/registry service in the cluster sim: a second
//! service on the same `amoeba-rsm` driver, sharing the directory
//! columns' machines and kernels while forming its own group — with
//! zero group-protocol code of its own.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::LockError;
use amoeba_dirsvc::sim::Simulation;

fn lock_cluster(seed: u64) -> (Simulation, Cluster) {
    let sim = Simulation::new(seed);
    let mut params = ClusterParams::paper(Variant::Group);
    params.lock_service = true;
    let cluster = Cluster::start(&sim, params);
    (sim, cluster)
}

#[test]
fn lock_semantics_end_to_end() {
    let (mut sim, mut cluster) = lock_cluster(101);
    let (client, _) = cluster.lock_client(&sim);
    let out = sim.spawn("app", move |ctx| {
        // Retry until the lock group has formed.
        loop {
            match client.acquire(ctx, "build/artifact", 7) {
                Ok(()) => break,
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        }
        // Re-acquire by the same owner is idempotent.
        client.acquire(ctx, "build/artifact", 7).unwrap();
        // A different owner is refused and told who holds it.
        assert_eq!(
            client.acquire(ctx, "build/artifact", 8),
            Err(LockError::Busy(7))
        );
        // Query behind the read barrier sees the holder.
        assert_eq!(client.query(ctx, "build/artifact").unwrap(), Some(7));
        assert_eq!(client.query(ctx, "other").unwrap(), None);
        // Release by a non-holder is refused; by the holder succeeds.
        assert_eq!(
            client.release(ctx, "build/artifact", 8),
            Err(LockError::NotHeld)
        );
        client.release(ctx, "build/artifact", 7).unwrap();
        assert_eq!(client.query(ctx, "build/artifact").unwrap(), None);
        // Now owner 8 can take it.
        client.acquire(ctx, "build/artifact", 8).unwrap();
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true));
}

/// Majority loss with a stayed-up survivor: the group re-forms as a
/// **new instance** whose sequence numbers restart, the survivor is
/// the state-transfer source, and — the regression this pins — its
/// snapshot cursor must be re-aligned to the new instance, or the
/// fetching replicas would skip the new instance's first operations
/// and silently diverge.
#[test]
fn new_instance_after_majority_loss_does_not_skip_operations() {
    let (mut sim, mut cluster) = lock_cluster(107);
    let (client, _) = cluster.lock_client(&sim);
    let c = client.clone();
    // Drive the applied cursor well past anything a fresh instance
    // will reach with its first few slots.
    let out = sim.spawn("grow", move |ctx| {
        let mut done = 0;
        for k in 0..25u64 {
            let name = format!("pre-{k}");
            for _ in 0..20 {
                match c.acquire(ctx, &name, k) {
                    Ok(()) => {
                        done += 1;
                        break;
                    }
                    Err(_) => ctx.sleep(Duration::from_millis(100)),
                }
            }
        }
        done
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(25));

    // Kill the majority; replica 0 stays up (most current, holds the
    // whole table) and falls back to recovery. Restart the peers
    // *staggered*: replica 1 re-forms a new instance with 0, and only
    // then does replica 2 rejoin — so replica 2 fetches its snapshot
    // from a source already serving in the new instance, the case
    // where an un-aligned cursor is installed verbatim.
    cluster.crash_server(&sim, 1);
    cluster.crash_server(&sim, 2);
    sim.run_for(Duration::from_secs(5));
    cluster.restart_server(&sim, 1);
    sim.run_for(Duration::from_secs(60));
    assert!(cluster.lock_server(0).is_normal(), "survivor not serving");
    assert!(cluster.lock_server(1).is_normal(), "replica 1 not serving");
    cluster.restart_server(&sim, 2);
    sim.run_for(Duration::from_secs(60));
    for i in 0..3 {
        assert!(
            cluster.lock_server(i).is_normal(),
            "lock replica {i} did not re-enter service"
        );
    }

    // Operations in the NEW instance (small sequence numbers) must
    // apply on every replica — including the two that installed the
    // survivor's snapshot.
    let c2 = client.clone();
    let out = sim.spawn("post", move |ctx| {
        for k in 0..5u64 {
            let name = format!("post-{k}");
            let mut ok = false;
            for _ in 0..30 {
                match c2.acquire(ctx, &name, 100 + k) {
                    Ok(()) => {
                        ok = true;
                        break;
                    }
                    Err(_) => ctx.sleep(Duration::from_millis(100)),
                }
            }
            assert!(ok, "post-recovery acquire {k} failed");
        }
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true));
    sim.run_for(Duration::from_secs(5)); // let the order drain everywhere
    for i in 0..3 {
        let m = cluster.lock_server(i).machine();
        for k in 0..5u64 {
            assert_eq!(
                m.holder(&format!("post-{k}")),
                Some(100 + k),
                "replica {i} skipped a new-instance operation"
            );
        }
        assert_eq!(m.held_count(), 30, "replica {i} lock table diverged");
    }
}

#[test]
fn lock_state_survives_crash_and_rejoin_via_state_transfer() {
    let (mut sim, mut cluster) = lock_cluster(103);
    let (client, _) = cluster.lock_client(&sim);
    let c2 = client.clone();
    let out = sim.spawn("setup", move |ctx| {
        loop {
            match c2.acquire(ctx, "a", 1) {
                Ok(()) => break,
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        }
        c2.acquire(ctx, "b", 2).unwrap();
        true
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(out.take(), Some(true));

    // Crash a replica: the survivors (a majority) keep serving, and
    // the lock table — pure RAM state — survives through replication.
    cluster.crash_server(&sim, 2);
    sim.run_for(Duration::from_secs(3));
    let c3 = client.clone();
    let out = sim.spawn("during-crash", move |ctx| {
        let mut held = None;
        for _ in 0..100 {
            match c3.query(ctx, "a") {
                Ok(h) => {
                    held = h;
                    break;
                }
                Err(_) => ctx.sleep(Duration::from_millis(100)),
            }
        }
        assert_eq!(held, Some(1), "lock table lost with a minority crash");
        c3.acquire(ctx, "c", 3).unwrap();
        true
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(out.take(), Some(true));

    // Reboot the crashed column: its lock replica has nothing durable
    // and must recover the whole table from a peer's snapshot.
    cluster.restart_server(&sim, 2);
    let deadline = Duration::from_secs(40);
    sim.run_for(deadline);
    let rejoined = cluster.lock_server(2);
    assert!(rejoined.is_normal(), "lock replica 2 did not rejoin");
    let m = rejoined.machine();
    assert_eq!(m.holder("a"), Some(1));
    assert_eq!(m.holder("b"), Some(2));
    assert_eq!(m.holder("c"), Some(3));
    assert_eq!(m.held_count(), 3);
}

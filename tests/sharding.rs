//! The sharded directory service: per-shard total order, cross-shard
//! create/delete convergence under crashes, and segment-local placement
//! on a routed star topology.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{
    Capability, DirClient, DirClientError, DirError, Rights, ServiceConfig, ShardMap,
};
use amoeba_dirsvc::flip::SegmentId;
use amoeba_dirsvc::sim::{Ctx, Simulation};

fn ready_root(ctx: &Ctx, client: &DirClient, columns: &[&str]) -> Capability {
    loop {
        match client.create_dir(ctx, columns) {
            Ok(c) => return c,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

fn sharded_cluster(shards: usize, seed: u64) -> (Simulation, Cluster, DirClient, Capability) {
    let mut sim = Simulation::new(seed);
    let mut params = ClusterParams::sharded(Variant::Group, shards);
    params.seed = seed;
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    // The client's round-robin starts at shard 0, so the first create
    // is the shard-0 root.
    let out = sim.spawn("form", move |ctx| ready_root(ctx, &c2, &["owner"]));
    sim.run_for(Duration::from_secs(40));
    let root = out.take().expect("sharded service formed");
    (sim, cluster, client, root)
}

/// A row name whose [`ShardMap::child_shard`] hash lands on `want`.
fn name_on_shard(map: &ShardMap, parent: &Capability, want: usize, tag: &str) -> String {
    (0..256)
        .map(|i| format!("{tag}{i}"))
        .find(|n| map.child_shard(parent, n) == want)
        .expect("some name hashes to every shard")
}

#[test]
fn single_shard_stays_behavior_identical() {
    // shards = 1 must keep the classic port and the classic protocol —
    // the configuration every pre-sharding test runs.
    assert_eq!(
        ShardMap::new(1).public_port(0),
        ServiceConfig::new(3, 0).public_port
    );
    let (mut sim, cluster, client, root) = sharded_cluster(1, 211);
    assert_eq!(cluster.columns.len(), 3, "one shard = three columns");
    let out = sim.spawn("app", move |ctx| {
        assert_eq!(
            root.port,
            ServiceConfig::new(3, 0).public_port,
            "single-shard capabilities carry the classic port"
        );
        client
            .append_row(ctx, root, "a", root, vec![Rights::ALL])
            .unwrap();
        client.lookup(ctx, root, "a").unwrap().is_some()
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn shards_form_independent_groups_and_serve() {
    let (mut sim, cluster, client, root0) = sharded_cluster(2, 223);
    assert_eq!(cluster.columns.len(), 6, "two shards = six columns");
    let map = ShardMap::new(2);
    let out = sim.spawn("app", move |ctx| {
        // Round-robin placement: the second root lands on shard 1.
        let root1 = ready_root(ctx, &client, &["owner"]);
        assert_eq!(map.shard_of_cap(&root0), Some(0));
        assert_eq!(map.shard_of_cap(&root1), Some(1));
        // Both shards serve reads and writes independently.
        for (i, root) in [root0, root1].into_iter().enumerate() {
            client
                .append_row(ctx, root, "x", root, vec![Rights::ALL])
                .unwrap();
            assert!(
                client.lookup(ctx, root, "x").unwrap().is_some(),
                "shard {i} lookup"
            );
        }
        // A cross-shard LookupSet splits and merges in request order.
        let caps = client
            .lookup_set(
                ctx,
                vec![
                    (root1, "x".into()),
                    (root0, "ghost".into()),
                    (root0, "x".into()),
                ],
            )
            .unwrap();
        assert!(caps[0].is_some() && caps[1].is_none() && caps[2].is_some());
        true
    });
    sim.run_for(Duration::from_secs(40));
    assert_eq!(out.take(), Some(true));
    // Each shard's replicas converged within the shard, and each shard
    // ordered its own updates (independent update counters).
    for shard in 0..2 {
        let s: Vec<u64> = (0..3)
            .map(|i| cluster.shard_server(shard, i).update_seq())
            .collect();
        assert!(
            s[0] == s[1] && s[1] == s[2],
            "shard {shard} diverged: {s:?}"
        );
        assert!(s[0] >= 2, "shard {shard} ordered its root + append");
    }
    // Shard-scoped replica stats: each shard's driver counted its own
    // applies, not the other's.
    for shard in 0..2 {
        let st = cluster.shard_server(shard, 0).replica_stats();
        assert!(st.applied >= 2, "shard {shard} stats: {st:?}");
        assert!(st.batches >= 1, "shard {shard} batches: {st:?}");
    }
}

#[test]
fn per_shard_total_order_with_racing_writers() {
    // Racing appends of one contended name per shard: the shard's
    // sequencer arbitrates exactly one winner per round, per shard.
    let (mut sim, mut cluster, client, root0) = sharded_cluster(2, 227);
    let c2 = client.clone();
    let setup = sim.spawn("root1", move |ctx| ready_root(ctx, &c2, &["owner"]));
    sim.run_for(Duration::from_secs(10));
    let root1 = setup.take().expect("shard-1 root");
    let mut outs = Vec::new();
    for c in 0..4 {
        let (client, _) = cluster.client(&sim);
        outs.push(sim.spawn(&format!("racer{c}"), move |ctx| {
            let mut wins = 0u32;
            for round in 0..8 {
                for root in [root0, root1] {
                    let name = format!("contended{round}");
                    match client.append_row(ctx, root, &name, root, vec![Rights::ALL]) {
                        Ok(()) => wins += 1,
                        Err(DirClientError::Service(DirError::DuplicateName)) => {}
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
            wins
        }));
    }
    sim.run_for(Duration::from_secs(120));
    let total: u32 = outs.iter().map(|o| o.take().expect("racer done")).sum();
    assert_eq!(
        total, 16,
        "each of 8 rounds × 2 shards must have exactly one winner"
    );
}

#[test]
fn cross_shard_create_in_links_parent_and_child() {
    let (mut sim, _cluster, client, root) = sharded_cluster(2, 229);
    let map = ShardMap::new(2);
    let name = name_on_shard(&map, &root, 1, "kid");
    let n2 = name.clone();
    let out = sim.spawn("app", move |ctx| {
        let child = client
            .create_in(ctx, root, &n2, &["owner"], vec![Rights::ALL])
            .unwrap();
        assert_eq!(
            map.shard_of_cap(&child),
            Some(1),
            "the child lives on its hash shard"
        );
        // The link is visible in the parent, and the child is a real,
        // usable directory on the other shard.
        let resolved = client.lookup(ctx, root, &n2).unwrap().expect("row exists");
        assert_eq!(resolved.object, child.object);
        assert_eq!(resolved.port, child.port);
        client
            .append_row(ctx, child, "inner", child, vec![Rights::ALL])
            .unwrap();
        // create_in is idempotent end to end: a repeat returns the same
        // directory instead of creating a second one.
        let again = client
            .create_in(ctx, root, &n2, &["owner"], vec![Rights::ALL])
            .unwrap();
        assert_eq!(again, child, "repeat converges on the same child");
        // A name already linked to *another* service directory (e.g.
        // the completion record was lost to a total-shard disaster, or
        // a different holder linked first): create_in converges on the
        // existing directory instead of failing DuplicateName forever.
        let other = client.create_dir(ctx, &["owner"]).unwrap();
        client
            .append_row(ctx, root, "taken", other, vec![Rights::ALL])
            .unwrap();
        let converged = client
            .create_in(ctx, root, "taken", &["owner"], vec![Rights::ALL])
            .unwrap();
        assert_eq!(converged.object, other.object, "ensure-exists semantics");
        assert_eq!(converged.port, other.port);
        // ...but a row holding a foreign capability is a true conflict.
        let foreign = Capability {
            port: amoeba_dirsvc::flip::Port::from_raw(0xF0F0),
            ..root
        };
        client
            .append_row(ctx, root, "foreign", foreign, vec![Rights::ALL])
            .unwrap();
        assert_eq!(
            client.create_in(ctx, root, "foreign", &["owner"], vec![Rights::ALL]),
            Err(DirClientError::Service(DirError::DuplicateName))
        );
        // And the mirror two-step removes both row and directory.
        client.delete_from(ctx, root, &n2).unwrap();
        assert!(client.lookup(ctx, root, &n2).unwrap().is_none());
        assert_eq!(
            client.list(ctx, child),
            Err(DirClientError::Service(DirError::BadCapability)),
            "the child directory is gone from its shard"
        );
        true
    });
    sim.run_for(Duration::from_secs(60));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn cross_shard_create_converges_after_parent_shard_crash_mid_operation() {
    // Kill the parent shard's majority — its sequencer among the
    // victims — so create_in completes step one (the keyed create on
    // the child shard) and fails on step two (the link). The retry
    // after recovery must converge on the *same* child directory via
    // the completion record, not create a second one.
    let (mut sim, mut cluster, client, root) = sharded_cluster(2, 233);
    let map = ShardMap::new(2);
    let name = name_on_shard(&map, &root, 1, "orphan");
    let i0 = cluster.column_index(0, 0); // shard 0's sequencer
    let i1 = cluster.column_index(0, 1);
    cluster.crash_server(&sim, i0);
    cluster.crash_server(&sim, i1);
    let c2 = client.clone();
    let n2 = name.clone();
    let partial = sim.spawn("partial", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        // Step one lands on the healthy child shard; step two cannot.
        c2.create_in(ctx, root, &n2, &["owner"], vec![Rights::ALL])
    });
    sim.run_for(Duration::from_secs(25));
    let err = partial.take().expect("partial attempt returned");
    assert!(err.is_err(), "the link step must fail without a majority");

    cluster.restart_server(&sim, i0);
    cluster.restart_server(&sim, i1);
    sim.run_for(Duration::from_secs(30));
    let c3 = client.clone();
    let n3 = name.clone();
    let retry = sim.spawn("retry", move |ctx| {
        let mut child = None;
        for _ in 0..100 {
            match c3.create_in(ctx, root, &n3, &["owner"], vec![Rights::ALL]) {
                Ok(c) => {
                    child = Some(c);
                    break;
                }
                Err(_) => ctx.sleep(Duration::from_millis(250)),
            }
        }
        let child = child.expect("retry after recovery succeeds");
        // The completion record resolved the retry to the directory
        // created before the crash; a further repeat agrees.
        let again = c3
            .create_in(ctx, root, &n3, &["owner"], vec![Rights::ALL])
            .unwrap();
        assert_eq!(again, child);
        let resolved = c3.lookup(ctx, root, &n3).unwrap().expect("row linked");
        assert_eq!(resolved.object, child.object);
        child
    });
    sim.run_for(Duration::from_secs(60));
    let child = retry.take().expect("retry completed");
    assert_eq!(ShardMap::new(2).shard_of_cap(&child), Some(1));
}

#[test]
fn cross_shard_delete_converges_after_child_deleted_but_row_dangling() {
    // The mirror crash: delete_from removes the child directory on its
    // shard, then the parent shard dies before the unlink. The row
    // dangles (visible, pointing at a dead directory) — the documented
    // intermediate state — and a retry after recovery converges: the
    // child delete replays as success, the row goes away.
    let (mut sim, mut cluster, client, root) = sharded_cluster(2, 239);
    let map = ShardMap::new(2);
    let name = name_on_shard(&map, &root, 1, "dang");
    let c2 = client.clone();
    let n2 = name.clone();
    let setup = sim.spawn("setup", move |ctx| {
        c2.create_in(ctx, root, &n2, &["owner"], vec![Rights::ALL])
            .unwrap()
    });
    sim.run_for(Duration::from_secs(20));
    let child = setup.take().expect("cross-shard child created");

    // Emulate the mid-operation crash at its exact interleaving: the
    // child delete (step one, on the healthy shard 1) has landed...
    let c3 = client.clone();
    let n3 = name.clone();
    let step_one = sim.spawn("step-one", move |ctx| {
        c3.delete_dir(ctx, child).unwrap();
        // ...leaving the parent's row dangling, pointing at a dead
        // directory — the documented visible intermediate state.
        let gone = matches!(
            c3.list(ctx, child),
            Err(DirClientError::Service(DirError::BadCapability))
        );
        let dangling = c3.lookup(ctx, root, &n3).unwrap().is_some();
        (gone, dangling)
    });
    sim.run_for(Duration::from_secs(15));
    let (child_gone, row_dangling) = step_one.take().expect("step one drove");
    assert!(child_gone, "the child delete landed");
    assert!(row_dangling, "the row dangles until the unlink");

    // ...and the parent shard (sequencer included) dies before the
    // unlink: a full delete_from now fails at the parent.
    let i0 = cluster.column_index(0, 0);
    let i1 = cluster.column_index(0, 1);
    cluster.crash_server(&sim, i0);
    cluster.crash_server(&sim, i1);
    let c3b = client.clone();
    let n3b = name.clone();
    let partial = sim.spawn("partial", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        c3b.delete_from(ctx, root, &n3b).is_err()
    });
    sim.run_for(Duration::from_secs(25));
    assert_eq!(
        partial.take(),
        Some(true),
        "the unlink must fail without a parent-shard majority"
    );

    cluster.restart_server(&sim, i0);
    cluster.restart_server(&sim, i1);
    sim.run_for(Duration::from_secs(30));
    let c4 = client.clone();
    let n4 = name.clone();
    let retry = sim.spawn("retry", move |ctx| {
        for _ in 0..100 {
            match c4.delete_from(ctx, root, &n4) {
                Ok(()) => break,
                Err(_) => ctx.sleep(Duration::from_millis(250)),
            }
        }
        c4.lookup(ctx, root, &n4).unwrap().is_none()
    });
    sim.run_for(Duration::from_secs(60));
    assert_eq!(
        retry.take(),
        Some(true),
        "retry converges: dangling row unlinked"
    );
}

#[test]
fn shard_star_placement_keeps_reads_segment_local() {
    // Two shards, each on its own segment of a star, clients with
    // shard 0 on net-s0: reads of shard-0 directories must never cross
    // the hub router — and with multicast pruning, neither does the
    // other shard's replication traffic.
    let mut sim = Simulation::new(241);
    let mut params = ClusterParams::sharded_routed(Variant::Group, 2);
    params.seed = 241;
    let mut cluster = Cluster::start(&sim, params);
    // Placement really is per-shard.
    for i in 0..3 {
        assert_eq!(
            cluster.net.segment_of(cluster.columns[i].host),
            Some(SegmentId(0)),
            "shard 0 column {i}"
        );
        assert_eq!(
            cluster.net.segment_of(cluster.columns[3 + i].host),
            Some(SegmentId(1)),
            "shard 1 column {i}"
        );
    }
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let setup = sim.spawn("form", move |ctx| {
        let root0 = ready_root(ctx, &c2, &["owner"]);
        c2.append_row(ctx, root0, "target", root0, vec![Rights::ALL])
            .unwrap();
        root0
    });
    sim.run_for(Duration::from_secs(40));
    let root0 = setup.take().expect("shard-0 root formed");
    // Let formation traffic settle, then measure a read-only window.
    sim.run_for(Duration::from_secs(5));
    let before = cluster.net.stats();
    let reads = sim.spawn("reads", move |ctx| {
        let mut ok = 0;
        for _ in 0..50 {
            if client.lookup(ctx, root0, "target").unwrap().is_some() {
                ok += 1;
            }
        }
        ok
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(reads.take(), Some(50));
    let d = cluster.net.stats().since(&before);
    assert_eq!(
        d.packets_forwarded, 0,
        "shard-local reads (and pruned shard traffic) never cross the hub"
    );
    assert!(
        d.segments[0].frames > 0,
        "the read traffic is on the client's segment"
    );
    // The per-segment accounting identity must survive pruning: every
    // frame on any wire is still an origin send or a forward — pruning
    // removes forwards and their frames together, never one without
    // the other.
    let st = cluster.net.stats();
    assert!(st.mcast_pruned > 0, "formation traffic was pruned");
    assert_eq!(
        st.segments.iter().map(|s| s.frames).sum::<u64>(),
        st.packets_sent + st.packets_forwarded,
        "frames = sent + forwarded, with pruning enabled"
    );
}

//! NVRAM-variant behaviour: crash persistence, annihilation, background
//! flushing (paper §4.1).

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{Capability, DirClient, Rights};
use amoeba_dirsvc::sim::{Ctx, Simulation};

fn ready_root(ctx: &Ctx, client: &DirClient) -> Capability {
    loop {
        match client.create_dir(ctx, &["owner"]) {
            Ok(c) => return c,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

#[test]
fn nvram_service_serves_all_operations() {
    let mut sim = Simulation::new(81);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::GroupNvram));
    let (client, _) = cluster.client(&sim);
    let out = sim.spawn("app", move |ctx| {
        let root = ready_root(ctx, &client);
        client
            .append_row(ctx, root, "a", root, vec![Rights::ALL])
            .unwrap();
        let hit = client.lookup(ctx, root, "a").unwrap();
        client.delete_row(ctx, root, "a").unwrap();
        let gone = client.lookup(ctx, root, "a").unwrap();
        (hit.is_some(), gone.is_none())
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some((true, true)));
}

#[test]
fn append_delete_pairs_annihilate_without_disk_writes() {
    let mut sim = Simulation::new(83);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::GroupNvram));
    let (client, _) = cluster.client(&sim);
    let disks: Vec<_> = cluster.columns.iter().map(|c| c.vdisk.clone()).collect();
    let nvrams: Vec<_> = cluster.columns.iter().map(|c| c.nvram.clone()).collect();
    let out = sim.spawn("app", move |ctx| {
        let root = ready_root(ctx, &client);
        ctx.sleep(Duration::from_millis(800)); // flush the root create
        let before: u64 = disks.iter().map(|d| d.stats().writes).sum();
        for i in 0..10 {
            let name = format!("tmp{i}");
            client
                .append_row(ctx, root, &name, root, vec![Rights::ALL])
                .unwrap();
            client.delete_row(ctx, root, &name).unwrap();
        }
        let after: u64 = disks.iter().map(|d| d.stats().writes).sum();
        let annihilated: u64 = nvrams.iter().map(|n| n.stats().annihilated).sum();
        (after - before, annihilated)
    });
    sim.run_for(Duration::from_secs(60));
    let (disk_writes, annihilated) = out.take().expect("workload finished");
    assert!(
        annihilated >= 3 * 10,
        "each replica must annihilate each pair (saw {annihilated})"
    );
    assert!(
        disk_writes <= 6,
        "annihilated pairs must not reach the disk (saw {disk_writes} writes)"
    );
}

#[test]
fn updates_survive_crash_via_nvram_replay() {
    // Commit to NVRAM only, crash a server before any flush, restart:
    // the update must still be there (NVRAM is battery-backed).
    let mut sim = Simulation::new(89);
    let mut params = ClusterParams::paper(Variant::GroupNvram);
    // Keep the flusher lazy so the update is only in NVRAM at crash time.
    params.dir.nvram_idle_flush = Duration::from_secs(300);
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let setup = sim.spawn("setup", move |ctx| {
        let root = ready_root(ctx, &c2);
        c2.append_row(ctx, root, "persist-me", root, vec![Rights::ALL])
            .unwrap();
        root
    });
    sim.run_for(Duration::from_secs(20));
    let root = setup.take().expect("written");

    // Crash ALL servers (so recovery must come from local state), then
    // restart them.
    for i in 0..3 {
        cluster.crash_server(&sim, i);
    }
    sim.run_for(Duration::from_secs(2));
    for i in 0..3 {
        cluster.restart_server(&sim, i);
    }
    sim.run_for(Duration::from_secs(30));
    let c3 = client.clone();
    let check = sim.spawn("check", move |ctx| {
        for _ in 0..100 {
            match c3.lookup(ctx, root, "persist-me") {
                Ok(Some(_)) => return true,
                Ok(None) => return false,
                Err(_) => ctx.sleep(Duration::from_millis(200)),
            }
        }
        false
    });
    sim.run_for(Duration::from_secs(40));
    assert_eq!(
        check.take(),
        Some(true),
        "an NVRAM-committed update must survive a full-cluster crash"
    );
}

#[test]
fn updates_eventually_reach_the_disk() {
    let mut sim = Simulation::new(97);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::GroupNvram));
    let (client, _) = cluster.client(&sim);
    let disks: Vec<_> = cluster.columns.iter().map(|c| c.vdisk.clone()).collect();
    let out = sim.spawn("app", move |ctx| {
        let root = ready_root(ctx, &client);
        client
            .append_row(ctx, root, "durable", root, vec![Rights::ALL])
            .unwrap();
        let before: u64 = disks.iter().map(|d| d.stats().writes).sum();
        // Idle: the background flusher must apply the log to disk.
        ctx.sleep(Duration::from_secs(2));
        let after: u64 = disks.iter().map(|d| d.stats().writes).sum();
        after > before || before > 0
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true), "idle flusher must write to disk");
}

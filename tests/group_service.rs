//! End-to-end behaviour of the group directory service: the Fig. 2
//! operations, read-your-writes across servers, and replica consistency.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{Capability, DirClient, DirClientError, DirError, Rights};
use amoeba_dirsvc::sim::{Ctx, Simulation};

fn ready_root(ctx: &Ctx, client: &DirClient, columns: &[&str]) -> Capability {
    loop {
        match client.create_dir(ctx, columns) {
            Ok(c) => return c,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

#[test]
fn all_fig2_operations_work_end_to_end() {
    let mut sim = Simulation::new(21);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let out = sim.spawn("app", move |ctx| {
        let root = ready_root(ctx, &client, &["owner", "other"]);
        // Append row.
        client
            .append_row(ctx, root, "a", root, vec![Rights::ALL, Rights::NONE])
            .unwrap();
        // Duplicate append fails.
        assert_eq!(
            client.append_row(ctx, root, "a", root, vec![Rights::ALL, Rights::NONE]),
            Err(DirClientError::Service(DirError::DuplicateName))
        );
        // List.
        let listing = client.list(ctx, root).unwrap();
        assert_eq!(listing.columns, vec!["owner", "other"]);
        assert_eq!(listing.rows.len(), 1);
        // Chmod.
        client
            .chmod_row(ctx, root, "a", vec![Rights::MODIFY, Rights::column(1)])
            .unwrap();
        // Lookup set (one present, one absent).
        let caps = client
            .lookup_set(ctx, vec![(root, "a".into()), (root, "ghost".into())])
            .unwrap();
        assert!(caps[0].is_some());
        assert!(caps[1].is_none());
        // Replace set.
        let other = client.create_dir(ctx, &["owner"]).unwrap();
        client
            .replace_set(ctx, vec![(root, "a".into(), other)])
            .unwrap();
        let got = client.lookup(ctx, root, "a").unwrap().unwrap();
        assert_eq!(got.object, other.object);
        // Delete row, delete dir.
        client.delete_row(ctx, root, "a").unwrap();
        assert_eq!(
            client.delete_row(ctx, root, "a"),
            Err(DirClientError::Service(DirError::NoSuchName))
        );
        client.delete_dir(ctx, other).unwrap();
        // The deleted directory's capability no longer works.
        assert_eq!(
            client.list(ctx, other),
            Err(DirClientError::Service(DirError::BadCapability))
        );
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn read_your_writes_across_different_servers() {
    // Fig. 5's read path: a client deleting a directory then reading it
    // back — possibly at a *different* server — must see the deletion.
    let mut sim = Simulation::new(23);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let out = sim.spawn("app", move |ctx| {
        let root = ready_root(ctx, &client, &["owner"]);
        // Many cycles: each append is immediately followed by a lookup;
        // the NOTHERE server-selection spreads these over all 3 servers,
        // so stale reads would be caught.
        for i in 0..30 {
            let name = format!("n{i}");
            client
                .append_row(ctx, root, &name, root, vec![Rights::ALL])
                .unwrap();
            let hit = client.lookup(ctx, root, &name).unwrap();
            assert!(hit.is_some(), "read-your-write violated at {i}");
            client.delete_row(ctx, root, &name).unwrap();
            let gone = client.lookup(ctx, root, &name).unwrap();
            assert!(gone.is_none(), "read-your-delete violated at {i}");
        }
        true
    });
    sim.run_for(Duration::from_secs(60));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn replicas_converge_to_identical_state() {
    let mut sim = Simulation::new(29);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let out = sim.spawn("app", move |ctx| {
        let root = ready_root(ctx, &client, &["owner"]);
        for i in 0..10 {
            client
                .append_row(ctx, root, &format!("e{i}"), root, vec![Rights::ALL])
                .unwrap();
        }
        client.delete_row(ctx, root, "e3").unwrap();
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true));
    let s0 = cluster.group_server(0).update_seq();
    let s1 = cluster.group_server(1).update_seq();
    let s2 = cluster.group_server(2).update_seq();
    assert_eq!(s0, s1, "replica versions diverged");
    assert_eq!(s1, s2, "replica versions diverged");
    assert!(s0 >= 12, "expected at least 12 updates, saw {s0}");
}

#[test]
fn concurrent_clients_get_serializable_outcomes() {
    // Two clients race appends of the same name: exactly one must win
    // (one-copy serializability of the total order).
    let mut sim = Simulation::new(31);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (setup_client, _) = cluster.client(&sim);
    let setup = sim.spawn("setup", move |ctx| {
        ready_root(ctx, &setup_client, &["owner"])
    });
    sim.run_for(Duration::from_secs(10));
    let root = setup.take().expect("root ready");

    let mut outs = Vec::new();
    for c in 0..4 {
        let (client, _) = cluster.client(&sim);
        outs.push(sim.spawn(&format!("racer{c}"), move |ctx| {
            let mut wins = 0u32;
            for round in 0..10 {
                let name = format!("contended{round}");
                match client.append_row(ctx, root, &name, root, vec![Rights::ALL]) {
                    Ok(()) => wins += 1,
                    Err(DirClientError::Service(DirError::DuplicateName)) => {}
                    Err(e) => panic!("unexpected error: {e}"),
                }
            }
            wins
        }));
    }
    sim.run_for(Duration::from_secs(60));
    let total: u32 = outs.iter().map(|o| o.take().expect("racer done")).sum();
    assert_eq!(total, 10, "each round must have exactly one winner");
}

#[test]
fn path_resolution_and_create_all() {
    let mut sim = Simulation::new(37);
    let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    let (client, _) = cluster.client(&sim);
    let out = sim.spawn("app", move |ctx| {
        let root = ready_root(ctx, &client, &["owner"]);
        let leaf =
            amoeba_dirsvc::dir::path::create_all(ctx, &client, root, "/usr/local/bin", &["owner"])
                .unwrap();
        client
            .append_row(ctx, leaf, "tool", leaf, vec![Rights::ALL])
            .unwrap();
        let resolved =
            amoeba_dirsvc::dir::path::resolve(ctx, &client, root, "usr/local/bin/tool").unwrap();
        assert_eq!(resolved.object, leaf.object);
        // Missing component errors cleanly.
        let missing = amoeba_dirsvc::dir::path::resolve(ctx, &client, root, "usr/nope");
        assert_eq!(missing, Err(DirClientError::Service(DirError::NoSuchName)));
        true
    });
    sim.run_for(Duration::from_secs(60));
    assert_eq!(out.take(), Some(true));
}

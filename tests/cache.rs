//! The lease-fenced client-side directory cache: local hits and their
//! counters, the revoke-before-ack write fence under an invalidation
//! storm, cache-off behavioral equivalence, writes surviving a crashed
//! lease holder, and session monotonicity under replica faults.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, Variant};
use amoeba_dirsvc::dir::{
    CacheParams, Capability, DirClient, DirClientError, DirReply, DirRequest, Rights,
};
use amoeba_dirsvc::sim::{Ctx, Simulation};
use amoeba_testkit::Gen;

fn ready_root(ctx: &Ctx, client: &DirClient, columns: &[&str]) -> Capability {
    loop {
        match client.create_dir(ctx, columns) {
            Ok(c) => return c,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

/// A formed cluster with the client cache enabled on every machine.
fn cached_cluster(shards: usize, seed: u64) -> (Simulation, Cluster, DirClient, Capability) {
    let mut sim = Simulation::new(seed);
    let mut params = if shards > 1 {
        ClusterParams::sharded(Variant::Group, shards)
    } else {
        ClusterParams::paper(Variant::Group)
    };
    params.seed = seed;
    params.dir_cache = Some(CacheParams::default());
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let out = sim.spawn("form", move |ctx| ready_root(ctx, &c2, &["owner"]));
    sim.run_for(Duration::from_secs(40));
    let root = out.take().expect("cached service formed");
    (sim, cluster, client, root)
}

#[test]
fn repeat_lookups_are_served_locally_and_counted() {
    let (mut sim, mut cluster, writer, root) = cached_cluster(1, 501);
    let (reader, _) = cluster.client(&sim);
    let out = sim.spawn("app", move |ctx| {
        writer
            .append_row(ctx, root, "x", root, vec![Rights::ALL])
            .unwrap();
        // First lookup misses: it fetches the rows plus a read lease.
        assert!(reader.lookup(ctx, root, "x").unwrap().is_some());
        let s = reader.cache_stats().expect("cache is on");
        assert_eq!((s.misses, s.hits), (1, 0));
        // While the lease is live, lookups — including definitive
        // absences — are answered from the snapshot.
        assert!(reader.lookup(ctx, root, "x").unwrap().is_some());
        assert!(reader.lookup(ctx, root, "absent").unwrap().is_none());
        let s = reader.cache_stats().expect("cache is on");
        assert_eq!((s.misses, s.hits), (1, 2));
        // A local hit moves no packets: it costs zero simulated time.
        let t0 = ctx.now();
        assert!(reader.lookup(ctx, root, "x").unwrap().is_some());
        assert_eq!(ctx.now(), t0, "a cached hit must not touch the network");
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn cache_off_and_cache_on_give_identical_outcomes() {
    // The same deterministic script against two deployments differing
    // only in `dir_cache`: every observable outcome must match.
    fn script(shards: usize, cached: bool, seed: u64) -> Vec<String> {
        let mut sim = Simulation::new(seed);
        let mut params = ClusterParams::sharded(Variant::Group, shards);
        params.seed = seed;
        if cached {
            params.dir_cache = Some(CacheParams::default());
        }
        let mut cluster = Cluster::start(&sim, params);
        let (client, _) = cluster.client(&sim);
        let out = sim.spawn("script", move |ctx| {
            let root = ready_root(ctx, &client, &["owner"]);
            let other = ready_root(ctx, &client, &["owner"]);
            let mut log = Vec::new();
            // Object numbers are allocation-order-dependent (the cached
            // deployment schedules differently), so record each result
            // relative to the two known directories instead.
            let mut note = |tag: &str, r: Result<Option<Capability>, DirClientError>| {
                let shown = r.map(|o| {
                    o.map(|c| {
                        if (c.port, c.object) == (root.port, root.object) {
                            "root"
                        } else if (c.port, c.object) == (other.port, other.object) {
                            "other"
                        } else {
                            "unknown"
                        }
                    })
                });
                log.push(format!("{tag}={shown:?}"));
            };
            client
                .append_row(ctx, root, "a", other, vec![Rights::ALL])
                .unwrap();
            note("a", client.lookup(ctx, root, "a"));
            note("z", client.lookup(ctx, root, "z"));
            // A write through the same client: the cached snapshot it
            // just installed must not survive the acknowledged delete.
            client.delete_row(ctx, root, "a").unwrap();
            note("a-after-delete", client.lookup(ctx, root, "a"));
            client
                .append_row(ctx, other, "b", root, vec![Rights::ALL])
                .unwrap();
            note("b", client.lookup(ctx, other, "b"));
            note("cross", client.lookup(ctx, other, "a"));
            client.delete_dir(ctx, other).unwrap();
            log.push(format!(
                "deleted-dir={:?}",
                client.lookup(ctx, other, "b").is_err()
            ));
            log
        });
        sim.run_for(Duration::from_secs(60));
        out.take().expect("script completed")
    }
    let off = script(2, false, 509);
    let on = script(2, true, 509);
    assert_eq!(off, on, "the cache must be behavior-invisible");
}

#[test]
fn write_burst_revokes_every_outstanding_lease_before_ack() {
    // The invalidation storm: N readers all hold a live lease on one
    // directory; a write lands. The ack must imply every lease was
    // revoked — each reader's *very next* lookup, issued the instant it
    // observes the ack, sees the new row instead of its dead snapshot.
    let (mut sim, mut cluster, writer, root) = cached_cluster(2, 505);
    const N: usize = 6;
    let acked = Arc::new(AtomicU64::new(0));
    let mut outs = Vec::new();
    let mut readers = Vec::new();
    for i in 0..N {
        let (reader, _) = cluster.client(&sim);
        readers.push(reader.clone());
        let acked = Arc::clone(&acked);
        outs.push(sim.spawn(&format!("reader-{i}"), move |ctx| {
            // Keep the lease live (lazy renewal) until the write acks.
            while acked.load(Ordering::Relaxed) == 0 {
                let _ = reader.lookup(ctx, root, "seed");
                ctx.sleep(Duration::from_millis(50));
            }
            reader.lookup(ctx, root, "burst").unwrap().is_some()
        }));
    }
    let a2 = Arc::clone(&acked);
    let wrote = sim.spawn("writer", move |ctx| {
        writer
            .append_row(ctx, root, "seed", root, vec![Rights::ALL])
            .unwrap();
        ctx.sleep(Duration::from_secs(2)); // every reader is warm
        writer
            .append_row(ctx, root, "burst", root, vec![Rights::ALL])
            .unwrap();
        a2.store(1, Ordering::Relaxed);
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(wrote.take(), Some(true));
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(
            out.take(),
            Some(true),
            "reader {i} must see the acknowledged write, not its dead snapshot"
        );
    }
    for (i, reader) in readers.iter().enumerate() {
        let s = reader.cache_stats().expect("cache is on");
        assert!(
            s.invalidations >= 1,
            "reader {i}'s lease must have been revoked by callback, stats: {s:?}"
        );
    }
}

#[test]
fn a_crashed_lease_holder_cannot_block_writes_past_its_ttl() {
    // A lease whose holder never answers the invalidation callback (the
    // holder machine crashed): the write must still complete — after
    // outwaiting the lease deadline — rather than stall forever.
    let (mut sim, mut cluster, writer, root) = cached_cluster(1, 507);
    let (_, rpc, _) = cluster.client_machine(&sim);
    let out = sim.spawn("app", move |ctx| {
        writer
            .append_row(ctx, root, "x", root, vec![Rights::ALL])
            .unwrap();
        // Grant a read lease to a callback port nobody answers on.
        let req = DirRequest::FetchDir {
            cap: root,
            owner: 0xDEAD,
            cb_port: amoeba_dirsvc::flip::Port::from_name("crashed-holder").as_raw(),
            ttl_us: 400_000,
        };
        let bytes = rpc.trans(ctx, root.port, req.encode()).expect("transport");
        let reply = DirReply::decode(&bytes).expect("well-formed reply");
        assert!(
            matches!(reply, DirReply::Snapshot { .. }),
            "lease granted: {reply:?}"
        );
        let t0 = ctx.now();
        writer
            .append_row(ctx, root, "y", root, vec![Rights::ALL])
            .unwrap();
        let waited = ctx.now() - t0;
        assert!(
            waited >= Duration::from_millis(150),
            "the write must outwait the unreachable holder, waited {waited:?}"
        );
        assert!(
            waited < Duration::from_secs(5),
            "the wait is bounded by the lease TTL, waited {waited:?}"
        );
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(out.take(), Some(true));
}

#[test]
fn cached_reads_are_session_monotonic_under_replica_faults() {
    // Property: once a write is acknowledged, a cached reader can never
    // again observe the pre-write state — across lease expiries,
    // renewals, and a replica crash + restart at a random round.
    amoeba_testkit::check("cached reads are session-monotonic", 4, |g: &mut Gen| {
        let seed = 601 + g.below(997) as u64;
        let (mut sim, mut cluster, writer, root) = cached_cluster(1, seed);
        let (reader, _) = cluster.client(&sim);
        let rounds = 3 + g.below(3);
        let crash_round = g.below(rounds);
        let crash_col = g.below(3);
        let mut crashed = None;
        for r in 0..rounds {
            if r == crash_round {
                let i = cluster.column_index(0, crash_col);
                cluster.crash_server(&sim, i);
                crashed = Some(i);
            }
            let w2 = writer.clone();
            let r2 = reader.clone();
            let round = sim.spawn(&format!("round-{r}"), move |ctx| {
                let name = format!("r{r}");
                loop {
                    match w2.append_row(ctx, root, &name, root, vec![Rights::ALL]) {
                        Ok(()) => break,
                        Err(DirClientError::Service(_)) => panic!("append {name} rejected"),
                        Err(_) => ctx.sleep(Duration::from_millis(100)),
                    }
                }
                // Every acknowledged name so far must be visible NOW —
                // a stale snapshot would report recent ones absent.
                for k in (0..=r).rev() {
                    let name = format!("r{k}");
                    loop {
                        match r2.lookup(ctx, root, &name) {
                            Ok(Some(_)) => break,
                            Ok(None) => panic!("acked row {name} invisible to cached reader"),
                            Err(_) => ctx.sleep(Duration::from_millis(100)),
                        }
                    }
                }
                true
            });
            sim.run_for(Duration::from_secs(20));
            assert_eq!(round.take(), Some(true), "round {r} timed out");
            if r == crash_round {
                if let Some(i) = crashed.take() {
                    cluster.restart_server(&sim, i);
                    sim.run_for(Duration::from_secs(10));
                }
            }
        }
    });
}

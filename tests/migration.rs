//! Online shard migration: the copy + tombstone two-step, capability
//! forwarding, the crash matrix (source majority, target majority,
//! coordinator, and old-capability access racing a migration), and the
//! load-driven rebalancer end to end.

use std::time::Duration;

use amoeba_dirsvc::dir::cluster::{Cluster, ClusterParams, RebalancerParams, Variant};
use amoeba_dirsvc::dir::{
    Capability, DirClient, DirClientError, DirError, DirReply, DirRequest, Rights, ShardMap,
};
use amoeba_dirsvc::rpc::RpcClient;
use amoeba_dirsvc::sim::{Ctx, Simulation};

fn ready_root(ctx: &Ctx, client: &DirClient, columns: &[&str]) -> Capability {
    loop {
        match client.create_dir(ctx, columns) {
            Ok(c) => return c,
            Err(_) => ctx.sleep(Duration::from_millis(100)),
        }
    }
}

/// A formed two-ish-shard cluster plus a root directory. Returns the
/// root's actual home shard (`src`) and the migration target
/// (`dst = (src + 1) % shards`): formation-time create retries advance
/// the client's round-robin, so the root's placement is seed-dependent.
fn sharded_cluster(
    shards: usize,
    seed: u64,
) -> (Simulation, Cluster, DirClient, Capability, usize, usize) {
    let mut sim = Simulation::new(seed);
    let mut params = ClusterParams::sharded(Variant::Group, shards);
    params.seed = seed;
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let out = sim.spawn("form", move |ctx| ready_root(ctx, &c2, &["owner"]));
    sim.run_for(Duration::from_secs(40));
    let root = out.take().expect("sharded service formed");
    let src = ShardMap::new(shards)
        .shard_of_cap(&root)
        .expect("root is ours");
    let dst = (src + 1) % shards.max(1);
    (sim, cluster, client, root, src, dst)
}

/// Raw request/reply against one shard port (bypassing the typed
/// client's chase loop — for staging exact crash interleavings).
fn raw(ctx: &Ctx, rpc: &RpcClient, port: amoeba_dirsvc::flip::Port, req: &DirRequest) -> DirReply {
    let bytes = rpc.trans(ctx, port, req.encode()).expect("transport");
    DirReply::decode(&bytes).expect("well-formed reply")
}

#[test]
fn migrate_moves_directory_and_old_capabilities_forward() {
    let (mut sim, mut cluster, client, root, src, dst) = sharded_cluster(2, 401);
    let map = ShardMap::new(2);
    // A second, completely fresh client machine: its relocation cache is
    // empty, so it must learn the move through the forwarding stub.
    let (fresh, _) = cluster.client(&sim);
    let out = sim.spawn("app", move |ctx| {
        client
            .append_row(ctx, root, "keep", root, vec![Rights::ALL])
            .unwrap();
        let moved = client.migrate(ctx, root, dst).unwrap();
        assert_eq!(map.shard_of_cap(&moved), Some(dst), "moved to the target");
        assert_eq!(moved.check, root.check, "migration preserves the raw check");

        // The ORIGINAL capability still works end to end via forwarding:
        // reads, writes, and a repeat migrate (no-op: already there).
        let listing = fresh.list(ctx, root).unwrap();
        assert_eq!(listing.rows.len(), 1, "contents travelled");
        assert_eq!(listing.rows[0].0, "keep");
        fresh
            .append_row(ctx, root, "after", root, vec![Rights::ALL])
            .unwrap();
        assert!(fresh.lookup(ctx, root, "after").unwrap().is_some());
        let again = fresh.migrate(ctx, root, dst).unwrap();
        assert_eq!(
            (again.port, again.object),
            (moved.port, moved.object),
            "repeat migrate converges on the same home"
        );

        // The translated capability works directly, without forwarding.
        let direct = Capability {
            port: moved.port,
            object: moved.object,
            ..root
        };
        assert!(fresh.lookup(ctx, direct, "keep").unwrap().is_some());

        // Chains: migrate back to the source shard — a third client
        // would now chase two hops from the original capability.
        let back = fresh.migrate(ctx, root, src).unwrap();
        assert_eq!(map.shard_of_cap(&back), Some(src));
        assert!(fresh.lookup(ctx, root, "after").unwrap().is_some());
        true
    });
    sim.run_for(Duration::from_secs(90));
    assert_eq!(out.take(), Some(true));
    // Both hops' sources hold forwarding stubs.
    assert!(cluster.shard_server(src, 0).stub_count() >= 1);
    assert!(cluster.shard_server(dst, 0).stub_count() >= 1);
}

#[test]
fn migrate_is_refused_on_unsharded_routes() {
    let (mut sim, _cluster, client, root, _, _) = sharded_cluster(1, 403);
    let out = sim.spawn("app", move |ctx| client.migrate(ctx, root, 0));
    sim.run_for(Duration::from_secs(20));
    assert_eq!(
        out.take(),
        Some(Err(DirClientError::Service(DirError::Malformed))),
        "single-shard deployments have nowhere to migrate"
    );
}

#[test]
fn source_majority_crash_mid_migration_retry_converges() {
    // The dark copy lands on the target, then the source shard's
    // majority (sequencer included) dies before the stub installs. The
    // directory must still be served (by the recovered source), and a
    // retried migration must converge onto the *same* dark copy via
    // the migration key.
    let (mut sim, mut cluster, client, root, src, dst) = sharded_cluster(2, 409);
    let map = ShardMap::new(2);
    let (_, rpc, _) = cluster.client_machine(&sim);
    let r2 = rpc.clone();
    let stage = sim.spawn("stage", move |ctx| {
        // Step 0 + 1 by hand: export, install the dark copy on the target.
        let (check, columns, rows) =
            match raw(ctx, &r2, root.port, &DirRequest::ExportDir { cap: root }) {
                DirReply::Export {
                    check,
                    columns,
                    rows,
                    ..
                } => (check, columns, rows),
                other => panic!("export failed: {other:?}"),
            };
        let key = ShardMap::migration_key(&root, ShardMap::new(2).public_port(dst));
        match raw(
            ctx,
            &r2,
            ShardMap::new(2).public_port(dst),
            &DirRequest::InstallDir {
                columns,
                rows,
                check,
                key,
            },
        ) {
            DirReply::Cap(c) => c,
            other => panic!("install failed: {other:?}"),
        }
    });
    sim.run_for(Duration::from_secs(20));
    let dark = stage.take().expect("dark copy installed");

    // Source majority dies before step 2; the full migrate now fails.
    let i0 = cluster.column_index(src, 0);
    let i1 = cluster.column_index(src, 1);
    cluster.crash_server(&sim, i0);
    cluster.crash_server(&sim, i1);
    let c2 = client.clone();
    let partial = sim.spawn("partial", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        c2.migrate(ctx, root, dst).is_err()
    });
    sim.run_for(Duration::from_secs(25));
    assert_eq!(
        partial.take(),
        Some(true),
        "migration cannot complete without a source majority"
    );

    cluster.restart_server(&sim, i0);
    cluster.restart_server(&sim, i1);
    sim.run_for(Duration::from_secs(30));
    let retry = sim.spawn("retry", move |ctx| {
        let moved = loop {
            match client.migrate(ctx, root, dst) {
                Ok(c) => break c,
                Err(_) => ctx.sleep(Duration::from_millis(250)),
            }
        };
        // Old capability forwards; the namespace has exactly one home.
        assert!(client.list(ctx, root).is_ok());
        moved
    });
    sim.run_for(Duration::from_secs(60));
    let moved = retry.take().expect("retry converged");
    assert_eq!(map.shard_of_cap(&moved), Some(dst));
    assert_eq!(
        (moved.port, moved.object),
        (dark.port, dark.object),
        "the retry converged onto the pre-crash dark copy, not a second one"
    );
}

#[test]
fn target_majority_crash_mid_install_retry_converges() {
    // The target shard's majority dies while the copy is being
    // installed: step 1 fails, the source is untouched and keeps
    // serving. After the target recovers, the retry completes and the
    // old capability forwards.
    let (mut sim, mut cluster, client, root, _src, dst) = sharded_cluster(2, 419);
    let map = ShardMap::new(2);
    let j0 = cluster.column_index(dst, 0);
    let j1 = cluster.column_index(dst, 1);
    cluster.crash_server(&sim, j0);
    cluster.crash_server(&sim, j1);
    let c2 = client.clone();
    let partial = sim.spawn("partial", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        let failed = c2.migrate(ctx, root, dst).is_err();
        // The source still serves the directory (migration is not
        // destructive until the stub lands).
        let alive = c2.list(ctx, root).is_ok();
        (failed, alive)
    });
    sim.run_for(Duration::from_secs(25));
    let (failed, alive) = partial.take().expect("partial attempt returned");
    assert!(failed, "step one must fail without a target majority");
    assert!(alive, "the source keeps serving through the failure");

    cluster.restart_server(&sim, j0);
    cluster.restart_server(&sim, j1);
    sim.run_for(Duration::from_secs(30));
    let retry = sim.spawn("retry", move |ctx| {
        let moved = loop {
            match client.migrate(ctx, root, dst) {
                Ok(c) => break c,
                Err(_) => ctx.sleep(Duration::from_millis(250)),
            }
        };
        assert!(client.lookup(ctx, root, "nope").unwrap().is_none());
        moved
    });
    sim.run_for(Duration::from_secs(60));
    let moved = retry.take().expect("retry converged");
    assert_eq!(map.shard_of_cap(&moved), Some(dst));
}

#[test]
fn coordinator_crash_between_steps_converges() {
    // A coordinator exports, installs the dark copy — and dies. The
    // directory keeps its source home (no stub, nothing lost); a NEW
    // coordinator's migration converges on the abandoned dark copy via
    // the deterministic migration key instead of leaking a second.
    let (mut sim, mut cluster, client, root, _src, dst) = sharded_cluster(2, 421);
    let (_, rpc, _) = cluster.client_machine(&sim);
    let target_port = ShardMap::new(2).public_port(dst);
    let stage = sim.spawn("doomed-coordinator", move |ctx| {
        let (check, columns, rows) =
            match raw(ctx, &rpc, root.port, &DirRequest::ExportDir { cap: root }) {
                DirReply::Export {
                    check,
                    columns,
                    rows,
                    ..
                } => (check, columns, rows),
                other => panic!("export failed: {other:?}"),
            };
        let key = ShardMap::migration_key(&root, target_port);
        match raw(
            ctx,
            &rpc,
            target_port,
            &DirRequest::InstallDir {
                columns,
                rows,
                check,
                key,
            },
        ) {
            DirReply::Cap(c) => c,
            other => panic!("install failed: {other:?}"),
        }
        // ...and the coordinator dies here: no InstallStub ever sent.
    });
    sim.run_for(Duration::from_secs(20));
    let dark = stage.take().expect("dark copy installed");

    // The directory is wholly unaffected: still served at the source.
    let c2 = client.clone();
    let check_src = sim.spawn("still-home", move |ctx| {
        c2.append_row(ctx, root, "mid", root, vec![Rights::ALL])
            .unwrap();
        c2.lookup(ctx, root, "mid").unwrap().is_some()
    });
    sim.run_for(Duration::from_secs(20));
    assert_eq!(check_src.take(), Some(true));

    // A fresh coordinator finishes the job; its step 1 upserts the SAME
    // dark copy (key-deduplicated) with the newer contents.
    let (coordinator, _) = cluster.client(&sim);
    let finish = sim.spawn("second-coordinator", move |ctx| {
        let moved = coordinator.migrate(ctx, root, dst).unwrap();
        // The mid-flight append travelled with the re-copy.
        let found = coordinator.lookup(ctx, root, "mid").unwrap().is_some();
        (moved, found)
    });
    sim.run_for(Duration::from_secs(40));
    let (moved, found) = finish.take().expect("second coordinator done");
    assert_eq!(
        (moved.port, moved.object),
        (dark.port, dark.object),
        "the second coordinator reused the abandoned dark copy"
    );
    assert!(found, "the post-abandon append reached the final home");
}

#[test]
fn old_capability_access_racing_migration_lands_exactly_once() {
    // Writers hammer a directory through its original capability while
    // a migration runs. Every acknowledged append must be present
    // exactly once at the final home: ops ordered before the stub are
    // carried by the (re-)copy, ops ordered after it chase the stub —
    // an op never lands on both shards and never vanishes.
    let (mut sim, mut cluster, client, root, src, dst) = sharded_cluster(2, 431);
    let _ = client;
    const WRITERS: usize = 3;
    const EACH: usize = 8;
    let mut outs = Vec::new();
    for w in 0..WRITERS {
        let (wc, _) = cluster.client(&sim);
        outs.push(sim.spawn(&format!("writer{w}"), move |ctx| {
            let mut acked = Vec::new();
            for k in 0..EACH {
                let name = format!("w{w}-{k}");
                for _ in 0..20 {
                    match wc.append_row(ctx, root, &name, root, vec![Rights::ALL]) {
                        Ok(()) => {
                            acked.push(name.clone());
                            break;
                        }
                        Err(DirClientError::Service(DirError::DuplicateName)) => {
                            acked.push(name.clone());
                            break;
                        }
                        Err(_) => ctx.sleep(Duration::from_millis(40)),
                    }
                }
                ctx.sleep(Duration::from_millis(120));
            }
            acked
        }));
    }
    // The migration coordinator races the writers, retrying CAS losses.
    let (coordinator, _) = cluster.client(&sim);
    let mig = sim.spawn("coordinator", move |ctx| {
        ctx.sleep(Duration::from_millis(400));
        loop {
            match coordinator.migrate(ctx, root, dst) {
                Ok(c) => return c,
                Err(_) => ctx.sleep(Duration::from_millis(150)),
            }
        }
    });
    sim.run_for(Duration::from_secs(120));
    let moved = mig.take().expect("migration completed under write load");
    assert_eq!(ShardMap::new(2).shard_of_cap(&moved), Some(dst));
    let acked: Vec<String> = outs
        .iter()
        .flat_map(|o| o.take().expect("writer done"))
        .collect();
    assert_eq!(acked.len(), WRITERS * EACH, "every append was acknowledged");

    // A fresh client reads through the original capability: every
    // acknowledged row is there, exactly once, at one single home.
    let (fresh, _) = cluster.client(&sim);
    let names = acked.clone();
    let read = sim.spawn("audit", move |ctx| {
        let listing = fresh.list(ctx, root).unwrap();
        let mut got: Vec<String> = listing.rows.iter().map(|(n, _, _)| n.clone()).collect();
        got.sort();
        got.dedup();
        let mut want = names.clone();
        want.sort();
        assert_eq!(got, want, "acknowledged rows survive exactly once");
        true
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(read.take(), Some(true));
    assert_eq!(
        cluster.shard_server(src, 0).stub_count(),
        1,
        "the source holds exactly one forwarding stub"
    );
}

#[test]
fn cached_read_never_resurrects_a_tombstoned_home() {
    // Cache × migration crash matrix: a cached reader holds a live read
    // lease on the source shard when the directory migrates away. The
    // stub install is a write ordered through the source group, so it
    // must revoke that lease before the migration acknowledges — the
    // source-shard lease covers no read after `InstallStub`. The reader
    // then chases the forwarding stub like any client; once it has, the
    // source majority dies outright and the reader still sees every
    // post-migration row — a cached read can never resurrect the
    // tombstoned home.
    use amoeba_dirsvc::dir::CacheParams;
    let mut sim = Simulation::new(443);
    let mut params = ClusterParams::sharded(Variant::Group, 2);
    params.seed = 443;
    params.dir_cache = Some(CacheParams::default());
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    let formed = sim.spawn("form", move |ctx| ready_root(ctx, &c2, &["owner"]));
    sim.run_for(Duration::from_secs(40));
    let root = formed.take().expect("cached sharded service formed");
    let src = ShardMap::new(2).shard_of_cap(&root).expect("root is ours");
    let dst = (src + 1) % 2;

    // The reader warms its cache on the source home and keeps the lease
    // fresh through the migration window.
    let (reader, _) = cluster.client(&sim);
    let c2 = client.clone();
    let r2 = reader.clone();
    let warm = sim.spawn("warm-reader", move |ctx| {
        c2.append_row(ctx, root, "keep", root, vec![Rights::ALL])
            .unwrap();
        let mut served = 0u32;
        let until = ctx.now() + Duration::from_secs(8);
        while ctx.now() < until {
            if matches!(r2.lookup(ctx, root, "keep"), Ok(Some(_))) {
                served += 1;
            }
            ctx.sleep(Duration::from_millis(50));
        }
        served
    });
    // ...while a coordinator migrates the directory out from under it
    // and appends a row only the new home has.
    let (coordinator, _) = cluster.client(&sim);
    let mig = sim.spawn("coordinator", move |ctx| {
        ctx.sleep(Duration::from_secs(2));
        let moved = coordinator.migrate(ctx, root, dst).unwrap();
        coordinator
            .append_row(ctx, root, "after", root, vec![Rights::ALL])
            .unwrap();
        moved
    });
    sim.run_for(Duration::from_secs(20));
    let moved = mig.take().expect("migration completed under a live lease");
    assert_eq!(ShardMap::new(2).shard_of_cap(&moved), Some(dst));
    assert!(warm.take().expect("reader ran") > 0, "reader was warm");
    let s = reader.cache_stats().expect("cache is on");
    assert!(
        s.invalidations >= 1,
        "the stub install must revoke the reader's source lease, stats: {s:?}"
    );

    // The reader has chased the stub; now the tombstoned home dies.
    cluster.crash_server(&sim, cluster.column_index(src, 0));
    cluster.crash_server(&sim, cluster.column_index(src, 1));
    let audit = sim.spawn("audit", move |ctx| {
        ctx.sleep(Duration::from_secs(1));
        // Both the pre-migration row and the post-migration row are
        // served — from the new home, through the learned route, with
        // the old home dead. A stale source snapshot would miss
        // "after"; a resurrected tombstone would miss both.
        let keep = matches!(reader.lookup(ctx, root, "keep"), Ok(Some(_)));
        let after = matches!(reader.lookup(ctx, root, "after"), Ok(Some(_)));
        (keep, after)
    });
    sim.run_for(Duration::from_secs(20));
    let (keep, after) = audit.take().expect("audit ran");
    assert!(keep, "pre-migration contents served at the new home");
    assert!(
        after,
        "post-migration append visible — the dead source's lease covers nothing"
    );
}

#[test]
fn rebalancer_moves_hot_directories_off_a_skewed_shard() {
    // Every writer's directory starts on shard 0 (a deliberately skewed
    // placement); the lease-fenced rebalancer must notice the skew and
    // migrate directories toward shard 1 without any redeploy — and the
    // writers, holding the old capabilities, never notice beyond a
    // forwarding hop.
    let mut sim = Simulation::new(433);
    let mut params = ClusterParams::sharded(Variant::Group, 2);
    params.seed = 433;
    params.lease_service = true;
    params.rebalancer = Some(RebalancerParams {
        interval: Duration::from_secs(1),
        skew_ratio: 2.0,
        min_hot_ops: 5,
        moves_per_round: 1,
        lease_ttl: 64,
    });
    let mut cluster = Cluster::start(&sim, params);
    let (client, _) = cluster.client(&sim);
    let c2 = client.clone();
    // Create directories until two live on shard 0.
    let setup = sim.spawn("setup", move |ctx| {
        let map = ShardMap::new(2);
        let mut on0 = Vec::new();
        while on0.len() < 2 {
            let cap = ready_root(ctx, &c2, &["owner"]);
            if map.shard_of_cap(&cap) == Some(0) {
                on0.push(cap);
            }
        }
        on0
    });
    sim.run_for(Duration::from_secs(40));
    let dirs = setup.take().expect("skewed placement created");

    let mut outs = Vec::new();
    for (w, dir) in dirs.iter().enumerate() {
        let (wc, _) = cluster.client(&sim);
        let dir = *dir;
        outs.push(sim.spawn(&format!("hot-writer{w}"), move |ctx| {
            let mut ok = 0u32;
            for k in 0..60 {
                let name = format!("h{w}-{k}");
                for _ in 0..10 {
                    match wc.append_row(ctx, dir, &name, dir, vec![Rights::ALL]) {
                        Ok(()) | Err(DirClientError::Service(DirError::DuplicateName)) => {
                            ok += 1;
                            break;
                        }
                        Err(_) => ctx.sleep(Duration::from_millis(50)),
                    }
                }
                ctx.sleep(Duration::from_millis(80));
            }
            ok
        }));
    }
    sim.run_for(Duration::from_secs(120));
    let total: u32 = outs.iter().map(|o| o.take().expect("writer done")).sum();
    assert_eq!(
        total, 120,
        "all writes acknowledged through the rebalancing"
    );
    assert!(
        cluster.shard_server(0, 0).stub_count() >= 1,
        "the rebalancer migrated at least one hot directory off shard 0"
    );
    // Whatever moved is fully served at its new home, via the old caps.
    let (fresh, _) = cluster.client(&sim);
    let dirs2 = dirs.clone();
    let audit = sim.spawn("audit", move |ctx| {
        dirs2.iter().all(|d| {
            fresh
                .list(ctx, *d)
                .map(|l| l.rows.len() == 60)
                .unwrap_or(false)
        })
    });
    sim.run_for(Duration::from_secs(30));
    assert_eq!(audit.take(), Some(true));
}

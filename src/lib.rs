//! # amoeba-dirsvc — umbrella crate
//!
//! A full reproduction of *"Using Group Communication to Implement a
//! Fault-Tolerant Directory Service"* (Kaashoek, Tanenbaum & Verstoep,
//! ICDCS 1993), including every substrate the paper runs on, built from
//! scratch in Rust over a deterministic discrete-event simulator.
//!
//! This crate re-exports the workspace members under stable names and
//! hosts the repository-level examples and integration tests. Start with
//! [`dir::cluster::Cluster`] and the `examples/` directory.
//!
//! | Layer | Crate |
//! |---|---|
//! | Deterministic simulator | [`sim`] |
//! | FLIP network | [`flip`] |
//! | Amoeba RPC (`trans`) | [`rpc`] |
//! | Group communication | [`group`] |
//! | Replicated-state-machine driver | [`rsm`] |
//! | Disks + NVRAM | [`disk`] |
//! | Bullet file server | [`bullet`] |
//! | The directory service | [`dir`] |

pub use amoeba_bullet as bullet;
pub use amoeba_dir_core as dir;
pub use amoeba_disk as disk;
pub use amoeba_flip as flip;
pub use amoeba_group as group;
pub use amoeba_rpc as rpc;
pub use amoeba_rsm as rsm;
pub use amoeba_sim as sim;

//! # amoeba-bullet — the Bullet immutable-file server
//!
//! A reproduction of Amoeba's Bullet file server (van Renesse et al.,
//! ICDCS '89) as the directory service's storage backend (paper Fig. 3):
//! whole-file, immutable semantics — create / read / size / delete —
//! addressed by unguessable capabilities, with files laid out contiguously
//! so a create or uncached read costs one disk seek, plus a RAM cache
//! that dies with the machine.
//!
//! Each directory-service replica column runs one Bullet server over the
//! machine's [`amoeba_disk::DiskServer`]; the directory server stores each
//! directory's contents as one Bullet file and keeps only capabilities in
//! its object table.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cap;
mod msg;
mod server;
mod store;

pub use cap::FileCap;
pub use msg::{BulletErrorKind, BulletReply, BulletRequest};
pub use server::{start_bullet_server, BulletClient, BulletError};
pub use store::BulletStore;

//! The Bullet server process and its client stub.

use std::collections::HashMap;

use amoeba_disk::DiskServer;
use amoeba_flip::{Payload, Port};
use amoeba_rpc::{RpcClient, RpcError, RpcNode, RpcServer};
use amoeba_sim::{Ctx, NodeId, Spawn};

use crate::cap::FileCap;
use crate::msg::{BulletErrorKind, BulletReply, BulletRequest};
use crate::store::BulletStore;

/// Errors surfaced by [`BulletClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulletError {
    /// Unknown object or wrong check field.
    BadCapability,
    /// The server is out of space.
    NoSpace,
    /// Transport failure.
    Rpc(RpcError),
    /// The server sent something unintelligible.
    Protocol,
}

impl std::fmt::Display for BulletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BulletError::BadCapability => f.write_str("bad file capability"),
            BulletError::NoSpace => f.write_str("bullet server out of space"),
            BulletError::Rpc(e) => write!(f, "bullet transport: {e}"),
            BulletError::Protocol => f.write_str("malformed bullet reply"),
        }
    }
}

impl std::error::Error for BulletError {}

impl From<RpcError> for BulletError {
    fn from(e: RpcError) -> Self {
        BulletError::Rpc(e)
    }
}

/// Starts a Bullet server: `threads` server threads answering on
/// `service`, storing files through `disk` with layout state in `store`.
///
/// The RAM file cache lives inside the server processes and is lost on a
/// machine crash; `store` and the disk contents survive.
#[allow(clippy::too_many_arguments)] // deployment wiring, one call site per cluster
pub fn start_bullet_server(
    spawner: &impl Spawn,
    sim_node: NodeId,
    rpc: &RpcNode,
    service: Port,
    disk: DiskServer,
    store: BulletStore,
    base_block: u64,
    threads: usize,
) {
    let cache: std::sync::Arc<parking_lot::Mutex<HashMap<u64, Payload>>> =
        std::sync::Arc::new(parking_lot::Mutex::new(HashMap::new()));
    for t in 0..threads.max(1) {
        let srv = RpcServer::new(rpc, service);
        let disk = disk.clone();
        let store = store.clone();
        let cache = std::sync::Arc::clone(&cache);
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("bullet{t}@{}", rpc.addr()),
            Box::new(move |ctx| loop {
                let req = srv.getreq(ctx);
                let reply = match BulletRequest::decode(&req.data) {
                    Ok(r) => handle(ctx, &disk, &store, &cache, base_block, r),
                    Err(_) => BulletReply::Error {
                        kind: BulletErrorKind::BadCapability,
                    },
                };
                srv.putrep(&req, reply.encode());
            }),
        );
    }
}

fn handle(
    ctx: &Ctx,
    disk: &DiskServer,
    store: &BulletStore,
    cache: &parking_lot::Mutex<HashMap<u64, Payload>>,
    base_block: u64,
    req: BulletRequest,
) -> BulletReply {
    match req {
        BulletRequest::Create { data } => match store.allocate(data.len()) {
            Some((cap, start, nblocks)) => {
                // One contiguous write: inode + data in a single seek
                // (the Bullet design point). Each block is a zero-copy
                // slice of the request payload — the file contents
                // reach the platters without ever being byte-copied.
                let bs = store.block_size();
                let blocks: Vec<Payload> = (0..nblocks as usize)
                    .map(|i| {
                        let lo = i * bs;
                        let hi = ((i + 1) * bs).min(data.len());
                        if lo < data.len() {
                            data.slice(lo..hi)
                        } else {
                            Payload::empty()
                        }
                    })
                    .collect();
                disk.write_run(ctx, base_block + start, blocks);
                cache.lock().insert(cap.object, data);
                BulletReply::Created { cap }
            }
            None => BulletReply::Error {
                kind: BulletErrorKind::NoSpace,
            },
        },
        BulletRequest::Read { cap } => match store.lookup(cap) {
            Some(inode) => {
                if let Some(data) = cache.lock().get(&cap.object).cloned() {
                    return BulletReply::Data { data };
                }
                let bs = store.block_size();
                let nblocks = inode.len_bytes.max(1).div_ceil(bs) as u64;
                let blocks = disk.read_run(ctx, base_block + inode.start_block, nblocks);
                let mut data: Vec<u8> = blocks.into_iter().flatten().collect();
                data.truncate(inode.len_bytes);
                let data = Payload::from(data);
                cache.lock().insert(cap.object, data.clone());
                BulletReply::Data { data }
            }
            None => BulletReply::Error {
                kind: BulletErrorKind::BadCapability,
            },
        },
        BulletRequest::Size { cap } => match store.lookup(cap) {
            Some(inode) => BulletReply::Size {
                len: inode.len_bytes as u64,
            },
            None => BulletReply::Error {
                kind: BulletErrorKind::BadCapability,
            },
        },
        BulletRequest::Delete { cap } => {
            if store.remove(cap) {
                cache.lock().remove(&cap.object);
                BulletReply::Done
            } else {
                BulletReply::Error {
                    kind: BulletErrorKind::BadCapability,
                }
            }
        }
    }
}

/// Client stub for one Bullet service.
#[derive(Debug, Clone)]
pub struct BulletClient {
    rpc: RpcClient,
    service: Port,
}

impl BulletClient {
    /// Creates a stub talking to `service` through `rpc`.
    pub fn new(rpc: RpcClient, service: Port) -> Self {
        BulletClient { rpc, service }
    }

    fn call(&self, ctx: &Ctx, req: BulletRequest) -> Result<BulletReply, BulletError> {
        let bytes = self.rpc.trans(ctx, self.service, req.encode())?;
        BulletReply::decode(&bytes).map_err(|_| BulletError::Protocol)
    }

    /// Creates an immutable file. The contents are shared, not copied,
    /// on their way to the wire.
    ///
    /// # Errors
    ///
    /// [`BulletError::NoSpace`] if the server's file area is exhausted;
    /// transport errors if the server is unreachable.
    pub fn create(&self, ctx: &Ctx, data: impl Into<Payload>) -> Result<FileCap, BulletError> {
        match self.call(ctx, BulletRequest::Create { data: data.into() })? {
            BulletReply::Created { cap } => Ok(cap),
            BulletReply::Error { kind } => Err(kind.into()),
            _ => Err(BulletError::Protocol),
        }
    }

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// [`BulletError::BadCapability`] for unknown/forged capabilities.
    pub fn read(&self, ctx: &Ctx, cap: FileCap) -> Result<Payload, BulletError> {
        match self.call(ctx, BulletRequest::Read { cap })? {
            BulletReply::Data { data } => Ok(data),
            BulletReply::Error { kind } => Err(kind.into()),
            _ => Err(BulletError::Protocol),
        }
    }

    /// Returns the file's size in bytes.
    ///
    /// # Errors
    ///
    /// [`BulletError::BadCapability`] for unknown/forged capabilities.
    pub fn size(&self, ctx: &Ctx, cap: FileCap) -> Result<u64, BulletError> {
        match self.call(ctx, BulletRequest::Size { cap })? {
            BulletReply::Size { len } => Ok(len),
            BulletReply::Error { kind } => Err(kind.into()),
            _ => Err(BulletError::Protocol),
        }
    }

    /// Deletes the file.
    ///
    /// # Errors
    ///
    /// [`BulletError::BadCapability`] for unknown/forged capabilities.
    pub fn delete(&self, ctx: &Ctx, cap: FileCap) -> Result<(), BulletError> {
        match self.call(ctx, BulletRequest::Delete { cap })? {
            BulletReply::Done => Ok(()),
            BulletReply::Error { kind } => Err(kind.into()),
            _ => Err(BulletError::Protocol),
        }
    }
}

impl From<BulletErrorKind> for BulletError {
    fn from(k: BulletErrorKind) -> Self {
        match k {
            BulletErrorKind::BadCapability => BulletError::BadCapability,
            BulletErrorKind::NoSpace => BulletError::NoSpace,
        }
    }
}

//! Capabilities for Bullet files.

use std::fmt;

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};

/// A capability naming one immutable Bullet file.
///
/// Possession of a valid capability (object number plus unguessable check
/// field) is the only way to read or delete the file.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct FileCap {
    /// Object number at the issuing server.
    pub object: u64,
    /// Unguessable check field proving authority.
    pub check: u64,
}

impl FileCap {
    /// A sentinel capability that no server ever issues.
    pub const NULL: FileCap = FileCap {
        object: 0,
        check: 0,
    };

    /// Whether this is the null capability.
    pub fn is_null(&self) -> bool {
        *self == FileCap::NULL
    }

    /// Appends this capability to a wire buffer.
    pub fn write(&self, w: &mut WireWriter) {
        w.u64(self.object).u64(self.check);
    }

    /// Reads a capability from a wire buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation.
    pub fn read(r: &mut WireReader<'_>) -> Result<FileCap, DecodeError> {
        Ok(FileCap {
            object: r.u64("filecap object")?,
            check: r.u64("filecap check")?,
        })
    }
}

impl fmt::Debug for FileCap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file<{}:{:08x}>", self.object, self.check as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(FileCap::NULL.is_null());
        assert!(!FileCap {
            object: 1,
            check: 2
        }
        .is_null());
    }

    #[test]
    fn wire_round_trip() {
        let c = FileCap {
            object: 42,
            check: 0xDEAD_BEEF,
        };
        let mut w = WireWriter::new();
        c.write(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(FileCap::read(&mut r).unwrap(), c);
    }
}

//! Wire messages of the Bullet protocol.

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::Payload;

use crate::cap::FileCap;

/// A request to a Bullet server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulletRequest {
    /// Create an immutable file holding `data`; returns its capability.
    Create {
        /// File contents (shared, zero-copy).
        data: Payload,
    },
    /// Read the whole file.
    Read {
        /// Which file.
        cap: FileCap,
    },
    /// Size of the file in bytes.
    Size {
        /// Which file.
        cap: FileCap,
    },
    /// Delete the file.
    Delete {
        /// Which file.
        cap: FileCap,
    },
}

/// A Bullet server's reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulletReply {
    /// File created.
    Created {
        /// Capability of the new file.
        cap: FileCap,
    },
    /// File contents.
    Data {
        /// The bytes (shared with the wire buffer they arrived in).
        data: Payload,
    },
    /// File size.
    Size {
        /// Bytes.
        len: u64,
    },
    /// Operation done (delete).
    Done,
    /// Bad capability or out of space.
    Error {
        /// What went wrong.
        kind: BulletErrorKind,
    },
}

/// Failure classes a Bullet server reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BulletErrorKind {
    /// Unknown object or wrong check field.
    BadCapability,
    /// No room for the file.
    NoSpace,
}

const RQ_CREATE: u8 = 1;
const RQ_READ: u8 = 2;
const RQ_SIZE: u8 = 3;
const RQ_DELETE: u8 = 4;

const RP_CREATED: u8 = 1;
const RP_DATA: u8 = 2;
const RP_SIZE: u8 = 3;
const RP_DONE: u8 = 4;
const RP_ERROR: u8 = 5;

const CAP_LEN: usize = 8 + 8;

impl BulletRequest {
    /// Exact encoded size, used as the writer's single-allocation hint.
    fn encoded_len(&self) -> usize {
        match self {
            BulletRequest::Create { data } => 1 + 4 + data.len(),
            BulletRequest::Read { .. }
            | BulletRequest::Size { .. }
            | BulletRequest::Delete { .. } => 1 + CAP_LEN,
        }
    }

    /// Encodes into a shared buffer in a single allocation.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        match self {
            BulletRequest::Create { data } => {
                w.u8(RQ_CREATE).bytes(data);
            }
            BulletRequest::Read { cap } => {
                w.u8(RQ_READ);
                cap.write(&mut w);
            }
            BulletRequest::Size { cap } => {
                w.u8(RQ_SIZE);
                cap.write(&mut w);
            }
            BulletRequest::Delete { cap } => {
                w.u8(RQ_DELETE);
                cap.write(&mut w);
            }
        }
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish_payload()
    }

    /// Decodes from a shared wire buffer; file contents come back as a
    /// zero-copy slice of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &Payload) -> Result<Self, DecodeError> {
        let mut r = WireReader::of(buf);
        let req = match r.u8("bullet req tag")? {
            RQ_CREATE => BulletRequest::Create {
                data: r.payload("create data")?,
            },
            RQ_READ => BulletRequest::Read {
                cap: FileCap::read(&mut r)?,
            },
            RQ_SIZE => BulletRequest::Size {
                cap: FileCap::read(&mut r)?,
            },
            RQ_DELETE => BulletRequest::Delete {
                cap: FileCap::read(&mut r)?,
            },
            _ => return Err(DecodeError::new("bullet req tag")),
        };
        r.expect_end("bullet req trailing")?;
        Ok(req)
    }
}

impl BulletReply {
    /// Exact encoded size, used as the writer's single-allocation hint.
    fn encoded_len(&self) -> usize {
        match self {
            BulletReply::Created { .. } => 1 + CAP_LEN,
            BulletReply::Data { data } => 1 + 4 + data.len(),
            BulletReply::Size { .. } => 1 + 8,
            BulletReply::Done => 1,
            BulletReply::Error { .. } => 1 + 1,
        }
    }

    /// Encodes into a shared buffer in a single allocation.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        match self {
            BulletReply::Created { cap } => {
                w.u8(RP_CREATED);
                cap.write(&mut w);
            }
            BulletReply::Data { data } => {
                w.u8(RP_DATA).bytes(data);
            }
            BulletReply::Size { len } => {
                w.u8(RP_SIZE).u64(*len);
            }
            BulletReply::Done => {
                w.u8(RP_DONE);
            }
            BulletReply::Error { kind } => {
                w.u8(RP_ERROR).u8(match kind {
                    BulletErrorKind::BadCapability => 1,
                    BulletErrorKind::NoSpace => 2,
                });
            }
        }
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish_payload()
    }

    /// Decodes from a shared wire buffer; file contents come back as a
    /// zero-copy slice of `buf`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &Payload) -> Result<Self, DecodeError> {
        let mut r = WireReader::of(buf);
        let rep = match r.u8("bullet rep tag")? {
            RP_CREATED => BulletReply::Created {
                cap: FileCap::read(&mut r)?,
            },
            RP_DATA => BulletReply::Data {
                data: r.payload("rep data")?,
            },
            RP_SIZE => BulletReply::Size {
                len: r.u64("rep size")?,
            },
            RP_DONE => BulletReply::Done,
            RP_ERROR => BulletReply::Error {
                kind: match r.u8("error kind")? {
                    1 => BulletErrorKind::BadCapability,
                    2 => BulletErrorKind::NoSpace,
                    _ => return Err(DecodeError::new("error kind")),
                },
            },
            _ => return Err(DecodeError::new("bullet rep tag")),
        };
        r.expect_end("bullet rep trailing")?;
        Ok(rep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_testkit::{check, Gen};

    #[test]
    fn requests_round_trip() {
        let cap = FileCap {
            object: 9,
            check: 0xAB,
        };
        for req in [
            BulletRequest::Create {
                data: vec![1, 2].into(),
            },
            BulletRequest::Read { cap },
            BulletRequest::Size { cap },
            BulletRequest::Delete { cap },
        ] {
            assert_eq!(BulletRequest::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn replies_round_trip() {
        let cap = FileCap {
            object: 9,
            check: 0xAB,
        };
        for rep in [
            BulletReply::Created { cap },
            BulletReply::Data {
                data: vec![3].into(),
            },
            BulletReply::Size { len: 77 },
            BulletReply::Done,
            BulletReply::Error {
                kind: BulletErrorKind::BadCapability,
            },
            BulletReply::Error {
                kind: BulletErrorKind::NoSpace,
            },
        ] {
            assert_eq!(BulletReply::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn prop_decode_never_panics() {
        check("bullet decode never panics", 256, |g: &mut Gen| {
            let data: Payload = g.bytes(64).into();
            let _ = BulletRequest::decode(&data);
            let _ = BulletReply::decode(&data);
        });
    }
}

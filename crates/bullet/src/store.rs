//! The on-disk state of one Bullet server: inode table and allocation.
//!
//! Crash-persistent (like the platters it abstracts). The real Bullet
//! server lays every file out contiguously and rebuilds its table by
//! scanning the disk at boot; we persist the table alongside the blocks
//! and charge the same disk traffic at the server layer.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::cap::FileCap;

#[derive(Debug, Clone)]
pub(crate) struct Inode {
    pub start_block: u64,
    pub len_bytes: usize,
    pub check: u64,
}

struct StoreInner {
    inodes: HashMap<u64, Inode>,
    next_object: u64,
    next_block: u64,
    nblocks: u64,
    block_size: usize,
    check_seed: u64,
    check_counter: u64,
}

/// The persistent metadata + allocation state of one Bullet server.
#[derive(Clone)]
pub struct BulletStore {
    inner: Arc<Mutex<StoreInner>>,
}

impl std::fmt::Debug for BulletStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let i = self.inner.lock();
        write!(f, "BulletStore({} files)", i.inodes.len())
    }
}

fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BulletStore {
    /// Creates an empty store managing `nblocks` blocks of file area.
    pub fn new(nblocks: u64, block_size: usize, check_seed: u64) -> Self {
        BulletStore {
            inner: Arc::new(Mutex::new(StoreInner {
                inodes: HashMap::new(),
                next_object: 1,
                next_block: 0,
                nblocks,
                block_size,
                check_seed,
                check_counter: 0,
            })),
        }
    }

    /// Allocates an inode for a file of `len_bytes`, returning its
    /// capability and the starting block, or `None` if the disk is full.
    ///
    /// Allocation is bump-pointer (files are immutable and the simulation
    /// workloads recycle the disk long before it fills; deletions simply
    /// free the inode, as in log-structured allocation before cleaning).
    pub(crate) fn allocate(&self, len_bytes: usize) -> Option<(FileCap, u64, u64)> {
        let mut i = self.inner.lock();
        let nblocks = (len_bytes.max(1)).div_ceil(i.block_size) as u64;
        if i.next_block + nblocks > i.nblocks {
            // Wrap around: a trivial cleaner that reuses the start of the
            // area. Fine for simulation workloads whose live set is small.
            i.next_block = 0;
            if nblocks > i.nblocks {
                return None;
            }
        }
        let start = i.next_block;
        i.next_block += nblocks;
        let object = i.next_object;
        i.next_object += 1;
        i.check_counter += 1;
        let check = mix(i.check_seed ^ i.check_counter.wrapping_mul(0xA5A5_A5A5));
        let check = if check == 0 { 1 } else { check };
        i.inodes.insert(
            object,
            Inode {
                start_block: start,
                len_bytes,
                check,
            },
        );
        Some((FileCap { object, check }, start, nblocks))
    }

    /// Looks up and validates a capability.
    pub(crate) fn lookup(&self, cap: FileCap) -> Option<Inode> {
        let i = self.inner.lock();
        let inode = i.inodes.get(&cap.object)?;
        if inode.check == cap.check {
            Some(inode.clone())
        } else {
            None
        }
    }

    /// Deletes the file if the capability is valid.
    pub(crate) fn remove(&self, cap: FileCap) -> bool {
        let mut i = self.inner.lock();
        match i.inodes.get(&cap.object) {
            Some(inode) if inode.check == cap.check => {
                i.inodes.remove(&cap.object);
                true
            }
            _ => false,
        }
    }

    /// Number of live files.
    pub fn file_count(&self) -> usize {
        self.inner.lock().inodes.len()
    }

    /// Block size used for layout.
    pub fn block_size(&self) -> usize {
        self.inner.lock().block_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_lookup_remove_cycle() {
        let s = BulletStore::new(100, 512, 7);
        let (cap, start, nblocks) = s.allocate(1000).unwrap();
        assert_eq!(nblocks, 2);
        assert_eq!(start, 0);
        let inode = s.lookup(cap).unwrap();
        assert_eq!(inode.len_bytes, 1000);
        assert!(s.remove(cap));
        assert!(s.lookup(cap).is_none());
        assert!(!s.remove(cap));
    }

    #[test]
    fn wrong_check_rejected() {
        let s = BulletStore::new(100, 512, 7);
        let (cap, _, _) = s.allocate(10).unwrap();
        let forged = FileCap {
            object: cap.object,
            check: cap.check ^ 1,
        };
        assert!(s.lookup(forged).is_none());
        assert!(!s.remove(forged));
    }

    #[test]
    fn checks_are_unique_per_file() {
        let s = BulletStore::new(1000, 512, 7);
        let a = s.allocate(1).unwrap().0;
        let b = s.allocate(1).unwrap().0;
        assert_ne!(a.check, b.check);
        assert_ne!(a.object, b.object);
    }

    #[test]
    fn zero_length_file_takes_one_block() {
        let s = BulletStore::new(10, 512, 7);
        let (_, _, nblocks) = s.allocate(0).unwrap();
        assert_eq!(nblocks, 1);
    }

    #[test]
    fn allocation_wraps_when_area_exhausted() {
        let s = BulletStore::new(4, 512, 7);
        let _ = s.allocate(512 * 3).unwrap(); // blocks 0..3
        let (_, start, _) = s.allocate(512 * 2).unwrap(); // wraps to 0
        assert_eq!(start, 0);
    }

    #[test]
    fn file_larger_than_area_fails() {
        let s = BulletStore::new(2, 512, 7);
        assert!(s.allocate(512 * 3).is_none());
    }
}

//! End-to-end Bullet server behaviour over RPC and the simulated disk.

use std::time::Duration;

use amoeba_bullet::{start_bullet_server, BulletClient, BulletError, BulletStore};
use amoeba_disk::{DiskParams, DiskServer, VDisk};
use amoeba_flip::{NetParams, Network, Port};
use amoeba_rpc::{RpcClient, RpcNode};
use amoeba_sim::Simulation;

struct Rig {
    sim: Simulation,
    client: BulletClient,
    disk: VDisk,
}

fn rig() -> Rig {
    let sim = Simulation::new(3);
    let net = Network::new(sim.handle(), NetParams::lan_10mbps(), 9);
    let service = Port::from_name("bullet.test");

    let srv_node = sim.add_node("bullet-machine");
    let srv_stack = net.attach();
    let srv_rpc = RpcNode::start(&sim, srv_node, srv_stack);
    let disk = VDisk::new(4096, 4096);
    let disk_srv = DiskServer::start(&sim, srv_node, disk.clone(), DiskParams::wren_iv());
    let store = BulletStore::new(4096, 4096, 42);
    start_bullet_server(&sim, srv_node, &srv_rpc, service, disk_srv, store, 0, 2);

    let cli_node = sim.add_node("client-machine");
    let cli_stack = net.attach();
    let cli_rpc = RpcNode::start(&sim, cli_node, cli_stack);
    let client = BulletClient::new(RpcClient::new(&cli_rpc), service);
    Rig { sim, client, disk }
}

#[test]
fn create_read_delete_cycle() {
    let Rig {
        mut sim, client, ..
    } = rig();
    let out = sim.spawn("app", move |ctx| {
        let cap = client.create(ctx, b"hello bullet".to_vec()).unwrap();
        let data = client.read(ctx, cap).unwrap();
        let size = client.size(ctx, cap).unwrap();
        client.delete(ctx, cap).unwrap();
        let gone = client.read(ctx, cap);
        (data, size, gone)
    });
    sim.run_for(Duration::from_secs(5));
    let (data, size, gone) = out.take().unwrap();
    assert_eq!(data, b"hello bullet");
    assert_eq!(size, 12);
    assert_eq!(gone, Err(BulletError::BadCapability));
}

#[test]
fn create_costs_one_disk_write_run() {
    let Rig {
        mut sim,
        client,
        disk,
    } = rig();
    let before = disk.stats();
    let out = sim.spawn("app", move |ctx| {
        let t0 = ctx.now();
        let cap = client.create(ctx, vec![7u8; 100]).unwrap();
        let create_time = ctx.now() - t0;
        (cap, create_time)
    });
    sim.run_for(Duration::from_secs(5));
    let (_cap, create_time) = out.take().unwrap();
    let after = disk.stats();
    assert_eq!(after.since(&before).writes, 1, "one contiguous write");
    // RPC (~2 ms) + one disk access (~41 ms).
    assert!(
        create_time >= Duration::from_millis(38) && create_time <= Duration::from_millis(55),
        "create took {create_time:?}"
    );
}

#[test]
fn cached_read_does_no_disk_io() {
    let Rig {
        mut sim,
        client,
        disk,
    } = rig();
    let disk2 = disk.clone();
    let out = sim.spawn("app", move |ctx| {
        let cap = client.create(ctx, vec![1u8; 64]).unwrap();
        let before = disk2.stats();
        let t0 = ctx.now();
        let data = client.read(ctx, cap).unwrap();
        let read_time = ctx.now() - t0;
        let after = disk2.stats();
        (data.len(), after.since(&before).reads, read_time)
    });
    sim.run_for(Duration::from_secs(5));
    let (len, reads, read_time) = out.take().unwrap();
    assert_eq!(len, 64);
    assert_eq!(reads, 0, "served from RAM cache");
    assert!(
        read_time < Duration::from_millis(5),
        "cached read {read_time:?}"
    );
}

#[test]
fn forged_capability_is_rejected() {
    let Rig {
        mut sim, client, ..
    } = rig();
    let out = sim.spawn("app", move |ctx| {
        let cap = client.create(ctx, vec![1]).unwrap();
        let forged = amoeba_bullet::FileCap {
            object: cap.object,
            check: cap.check.wrapping_add(1),
        };
        (
            client.read(ctx, forged),
            client.delete(ctx, forged),
            client.read(ctx, cap).is_ok(),
        )
    });
    sim.run_for(Duration::from_secs(5));
    let (read, del, orig_ok) = out.take().unwrap();
    assert_eq!(read, Err(BulletError::BadCapability));
    assert_eq!(del, Err(BulletError::BadCapability));
    assert!(orig_ok);
}

#[test]
fn files_are_immutable_and_independent() {
    let Rig {
        mut sim, client, ..
    } = rig();
    let out = sim.spawn("app", move |ctx| {
        let a = client.create(ctx, vec![1; 10]).unwrap();
        let b = client.create(ctx, vec![2; 20]).unwrap();
        client.delete(ctx, a).unwrap();
        client.read(ctx, b).unwrap()
    });
    sim.run_for(Duration::from_secs(5));
    assert_eq!(out.take(), Some(amoeba_flip::Payload::from(vec![2; 20])));
}

#[test]
fn large_file_round_trips_across_blocks() {
    let Rig {
        mut sim, client, ..
    } = rig();
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    let expected = payload.clone();
    let out = sim.spawn("app", move |ctx| {
        let cap = client.create(ctx, payload).unwrap();
        client.read(ctx, cap).unwrap()
    });
    sim.run_for(Duration::from_secs(5));
    assert_eq!(out.take(), Some(amoeba_flip::Payload::from(expected)));
}

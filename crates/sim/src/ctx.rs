//! The process-side API: everything a simulated process may do.

use std::cell::RefCell;
use std::panic::panic_any;
use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{Receiver, Sender};
use parking_lot::Mutex;

use crate::ids::{MailboxId, NodeId, ProcId};
use crate::kernel::{Kernel, KillToken, Resume, WakeReason, YieldKind, YieldMsg};
use crate::mailbox::{channel_impl, MailboxRx, MailboxTx};
use crate::process::ProcOutput;
use crate::rng::SimRng;
use crate::time::SimTime;

/// The execution context handed to every simulated process.
///
/// All blocking calls (`sleep`, `recv`, …) yield to the simulator kernel; no
/// real time passes. A `Ctx` is only usable from the process it was created
/// for and must never be sent elsewhere.
///
/// # Crash semantics
///
/// If this process's node is crashed, the next blocking or kernel-touching
/// call never returns: the process unwinds and is reaped by the kernel. Code
/// must therefore not hold locks across blocking calls.
pub struct Ctx {
    pid: ProcId,
    node: Option<NodeId>,
    name: String,
    shared: Arc<Mutex<Kernel>>,
    yield_tx: Sender<YieldMsg>,
    resume_rx: Receiver<Resume>,
    rng: RefCell<SimRng>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("name", &self.name)
            .field("node", &self.node)
            .finish()
    }
}

impl Ctx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        pid: ProcId,
        node: Option<NodeId>,
        name: String,
        shared: Arc<Mutex<Kernel>>,
        yield_tx: Sender<YieldMsg>,
        resume_rx: Receiver<Resume>,
        rng: SimRng,
    ) -> Self {
        Ctx {
            pid,
            node,
            name,
            shared,
            yield_tx,
            resume_rx,
            rng: RefCell::new(rng),
        }
    }

    /// This process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// The node this process runs on, if it was spawned on one.
    pub fn node(&self) -> Option<NodeId> {
        self.node
    }

    /// The name given at spawn time.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.check_alive();
        self.shared.lock().now
    }

    /// Runs `f` with this process's deterministic RNG.
    pub fn with_rng<T>(&self, f: impl FnOnce(&mut SimRng) -> T) -> T {
        f(&mut self.rng.borrow_mut())
    }

    /// Suspends this process for `d` of virtual time.
    pub fn sleep(&self, d: Duration) {
        let until = self.now() + d;
        self.sleep_until(until);
    }

    /// Suspends this process until the given instant (no-op if in the past).
    pub fn sleep_until(&self, until: SimTime) {
        self.check_alive();
        let reason = self.block(YieldKind::Sleep { until });
        debug_assert_eq!(reason, WakeReason::Slept);
    }

    /// Yields the CPU, letting all other work scheduled for the current
    /// instant run before this process continues.
    pub fn yield_now(&self) {
        let now = self.now();
        self.sleep_until(now);
    }

    /// Spawns a sibling process on the same node.
    pub fn spawn<F, R>(&self, name: &str, f: F) -> ProcOutput<R>
    where
        F: FnOnce(&Ctx) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.check_alive();
        crate::kernel::spawn_proc(&self.shared, name, self.node, f)
    }

    /// Spawns a process on an explicit node.
    ///
    /// # Panics
    ///
    /// Panics if the node is crashed.
    pub fn spawn_on<F, R>(&self, node: NodeId, name: &str, f: F) -> ProcOutput<R>
    where
        F: FnOnce(&Ctx) -> R + Send + 'static,
        R: Send + 'static,
    {
        self.check_alive();
        crate::kernel::spawn_proc(&self.shared, name, Some(node), f)
    }

    /// Creates a new typed mailbox; the receiver should be owned by exactly
    /// one process at a time.
    pub fn channel<T: Send + 'static>(&self) -> (MailboxTx<T>, MailboxRx<T>) {
        self.check_alive();
        channel_impl(&self.shared)
    }

    /// A cloneable handle for creating mailboxes and reading the clock.
    pub fn handle(&self) -> crate::handle::SimHandle {
        crate::handle::SimHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Crashes a node: every process on it is killed, its RAM state is lost.
    /// Persistent objects (simulated disks, NVRAM) survive.
    pub fn crash_node(&self, node: NodeId) {
        self.check_alive();
        self.shared.lock().crash_node(node);
        // If we crashed our own node, die right here.
        self.check_alive();
    }

    /// Reboots a crashed node so processes can be spawned on it again.
    pub fn revive_node(&self, node: NodeId) {
        self.check_alive();
        self.shared.lock().revive_node(node);
    }

    /// Whether a node is currently alive.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.check_alive();
        self.shared.lock().node_alive(node)
    }

    /// Appends a message to the simulation trace (if tracing is enabled).
    pub fn trace(&self, msg: impl Into<String>) {
        let mut k = self.shared.lock();
        let line = format!("[{}] {}", self.name, msg.into());
        k.trace_log(line);
    }

    // ------------------------------------------------------------------
    // Internal plumbing.
    // ------------------------------------------------------------------

    pub(crate) fn shared(&self) -> &Arc<Mutex<Kernel>> {
        &self.shared
    }

    pub(crate) fn yield_tx(&self) -> &Sender<YieldMsg> {
        &self.yield_tx
    }

    /// Blocks in the initial handshake; `None` means killed before start.
    pub(crate) fn wait_first(&self) -> Option<()> {
        match self.resume_rx.recv() {
            Ok(Resume::Go(_)) => Some(()),
            _ => None,
        }
    }

    /// Unwinds this thread because its node crashed.
    fn die(&self) -> ! {
        panic_any(KillToken)
    }

    /// Panics with [`KillToken`] if this process has been marked dead.
    pub(crate) fn check_alive(&self) {
        let dead = self
            .shared
            .lock()
            .procs
            .get(&self.pid)
            .map(|p| p.dead)
            .unwrap_or(true);
        if dead {
            self.die();
        }
    }

    /// Digest of this process's RNG state (for record/replay yields).
    pub(crate) fn rng_digest(&self) -> u64 {
        self.rng.borrow().digest()
    }

    /// Yields to the kernel and blocks until resumed.
    pub(crate) fn block(&self, kind: YieldKind) -> WakeReason {
        if self
            .yield_tx
            .send(YieldMsg {
                pid: self.pid,
                kind,
                rng_digest: self.rng_digest(),
            })
            .is_err()
        {
            // The simulation was dropped; unwind quietly.
            self.die();
        }
        match self.resume_rx.recv() {
            Ok(Resume::Go(reason)) => reason,
            _ => self.die(),
        }
    }

    /// Blocks until one of `boxes` is non-empty or `deadline` passes.
    /// The caller must have checked that all the boxes are currently empty.
    pub(crate) fn block_wait(
        &self,
        boxes: Vec<MailboxId>,
        deadline: Option<SimTime>,
    ) -> WakeReason {
        self.check_alive();
        self.block(YieldKind::Wait { boxes, deadline })
    }
}

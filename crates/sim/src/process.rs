//! Process spawning: each simulated process is an OS thread that only runs
//! while the kernel has explicitly resumed it.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use crossbeam_channel::unbounded;
use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::ids::{NodeId, ProcId};
use crate::kernel::{
    panic_message, BlockKind, EventKind, Kernel, KillToken, ProcRec, ProcState, Resume, YieldKind,
    YieldMsg,
};

/// Handle to a spawned process's eventual return value.
///
/// The value becomes available once the process body has returned and the
/// simulation has been stepped past that point; see [`ProcOutput::take`].
#[derive(Debug)]
pub struct ProcOutput<R> {
    pid: ProcId,
    cell: Arc<Mutex<Option<R>>>,
}

impl<R> ProcOutput<R> {
    /// The process's id.
    pub fn pid(&self) -> ProcId {
        self.pid
    }

    /// Takes the return value if the process has finished normally.
    ///
    /// Returns `None` while the process is still running, or if it was
    /// killed by a node crash, or if the value was already taken.
    pub fn take(&self) -> Option<R> {
        self.cell.lock().take()
    }

    /// Whether the return value is available (process finished normally and
    /// the value has not been taken yet).
    pub fn is_ready(&self) -> bool {
        self.cell.lock().is_some()
    }
}

impl<R> Clone for ProcOutput<R> {
    fn clone(&self) -> Self {
        ProcOutput {
            pid: self.pid,
            cell: Arc::clone(&self.cell),
        }
    }
}

pub(crate) fn spawn_impl<F, R>(
    shared: &Arc<Mutex<Kernel>>,
    name: &str,
    node: Option<NodeId>,
    f: F,
) -> ProcOutput<R>
where
    F: FnOnce(&Ctx) -> R + Send + 'static,
    R: Send + 'static,
{
    let (resume_tx, resume_rx) = unbounded::<Resume>();
    let cell: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));

    let (pid, yield_tx, rng, start_time) = {
        let mut k = shared.lock();
        let pid = k.alloc_pid();
        if let Some(n) = node {
            let nrec = k.nodes.get_mut(&n).expect("spawn_on unknown node");
            assert!(nrec.alive, "cannot spawn on crashed node {n}");
            nrec.procs.insert(pid);
        }
        let rng = k.proc_rng(pid);
        k.checkpoint(
            crate::record::StepTag::Spawn,
            pid.0,
            node.map(|n| n.0 as u64 + 1).unwrap_or(0),
            crate::record::fnv1a(name.as_bytes()),
        );
        (pid, k.yield_tx.clone(), rng, k.now)
    };

    let ctx = Ctx::new(
        pid,
        node,
        name.to_owned(),
        Arc::clone(shared),
        yield_tx.clone(),
        resume_rx,
        rng,
    );

    let cell_in = Arc::clone(&cell);
    let thread_name = format!("sim-{}-{}", name, pid);
    let join = std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            // Wait for the first activation (or an early kill).
            let go = matches!(ctx.wait_first(), Some(())); // None => killed before start
            let panic_msg = if go {
                match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                    Ok(val) => {
                        *cell_in.lock() = Some(val);
                        None
                    }
                    Err(payload) => {
                        if payload.is::<KillToken>() {
                            None
                        } else {
                            Some(panic_message(payload))
                        }
                    }
                }
            } else {
                None
            };
            // Final ack to the kernel; ignore send failure at teardown.
            let _ = ctx.yield_tx().send(YieldMsg {
                pid,
                kind: YieldKind::Exited { panic: panic_msg },
                rng_digest: ctx.rng_digest(),
            });
        })
        .expect("failed to spawn simulator thread");

    {
        let mut k = shared.lock();
        k.procs.insert(
            pid,
            ProcRec {
                name: name.to_owned(),
                node,
                resume_tx,
                join: Some(join),
                state: ProcState::Ready,
                block: BlockKind::None,
                gen: 0,
                wait_boxes: Vec::new(),
                dead: false,
            },
        );
        k.schedule(start_time, EventKind::Start(pid));
    }

    ProcOutput { pid, cell }
}

//! FIFO-fair exclusive resources: the CPU/device occupancy model.
//!
//! A [`Resource`] models something only one process can use at a time — a
//! machine's CPU, a SCSI bus — with FIFO queueing. This is what makes
//! servers *saturate* in the throughput experiments instead of overlapping
//! an unbounded number of "processing" sleeps.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::handle::SimHandle;
use crate::mailbox::MailboxTx;

struct ResourceState {
    busy: bool,
    waiters: VecDeque<MailboxTx<()>>,
    /// Total time the resource has been held, for utilization reporting.
    busy_nanos: u64,
}

/// An exclusive, FIFO-fair resource (e.g. one machine's CPU).
///
/// # Examples
///
/// ```
/// use amoeba_sim::{Resource, Simulation};
/// use std::time::Duration;
///
/// let mut sim = Simulation::new(1);
/// let cpu = Resource::new(sim.handle(), "cpu");
/// for i in 0..3 {
///     let cpu = cpu.clone();
///     sim.spawn(&format!("job{i}"), move |ctx| {
///         cpu.use_for(ctx, Duration::from_millis(10));
///     });
/// }
/// let stats = sim.run();
/// // Three 10 ms jobs on one CPU serialize: 30 ms total.
/// assert_eq!(stats.end_time.as_millis_f64(), 30.0);
/// ```
#[derive(Clone)]
pub struct Resource {
    name: String,
    handle: SimHandle,
    state: Arc<Mutex<ResourceState>>,
}

impl std::fmt::Debug for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.lock();
        f.debug_struct("Resource")
            .field("name", &self.name)
            .field("busy", &s.busy)
            .field("queue", &s.waiters.len())
            .finish()
    }
}

impl Resource {
    /// Creates an idle resource.
    pub fn new(handle: SimHandle, name: &str) -> Self {
        Resource {
            name: name.to_owned(),
            handle,
            state: Arc::new(Mutex::new(ResourceState {
                busy: false,
                waiters: VecDeque::new(),
                busy_nanos: 0,
            })),
        }
    }

    /// Acquires the resource, blocking FIFO behind current users.
    ///
    /// Prefer [`use_for`](Resource::use_for); if you call `acquire`
    /// directly you must guarantee a matching [`release`](Resource::release)
    /// even on early return (but crashes are fine **only** if the resource
    /// is recreated on restart, which is how machine reboots are modelled).
    pub fn acquire(&self, ctx: &Ctx) {
        let rx = {
            let mut s = self.state.lock();
            if !s.busy {
                s.busy = true;
                return;
            }
            let (tx, rx) = self.handle.channel::<()>();
            s.waiters.push_back(tx);
            rx
        };
        rx.recv(ctx); // hand-off: the releaser leaves `busy` set for us
    }

    /// Releases the resource, waking the next waiter if any.
    pub fn release(&self) {
        let mut s = self.state.lock();
        debug_assert!(s.busy, "release of idle resource {}", self.name);
        if let Some(w) = s.waiters.pop_front() {
            w.send(()); // stays busy; ownership transfers
        } else {
            s.busy = false;
        }
    }

    /// Occupies the resource for `d` of virtual time (acquire, hold,
    /// release). This is the CPU-charging primitive used by servers.
    pub fn use_for(&self, ctx: &Ctx, d: Duration) {
        self.acquire(ctx);
        ctx.sleep(d);
        self.state.lock().busy_nanos += d.as_nanos() as u64;
        self.release();
    }

    /// Whether the resource is currently held.
    pub fn is_busy(&self) -> bool {
        self.state.lock().busy
    }

    /// The number of processes queued behind the current holder.
    pub fn queue_len(&self) -> usize {
        self.state.lock().waiters.len()
    }

    /// Cumulative held time recorded by [`use_for`](Resource::use_for).
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.state.lock().busy_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulation;
    use crate::time::SimTime;
    use std::sync::Arc as StdArc;

    #[test]
    fn serializes_users_fifo() {
        let mut sim = Simulation::new(1);
        let r = Resource::new(sim.handle(), "cpu");
        let order = StdArc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let r = r.clone();
            let order = StdArc::clone(&order);
            sim.spawn(&format!("u{i}"), move |ctx| {
                // Stagger arrival so the queue order is well defined.
                ctx.sleep(Duration::from_micros(i));
                r.use_for(ctx, Duration::from_millis(5));
                order.lock().push((i, ctx.now()));
            });
        }
        sim.run();
        let order = order.lock();
        assert_eq!(
            order.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // Back-to-back occupancy: finishes at 5, 10, 15, 20 ms.
        assert_eq!(order[3].1, SimTime::from_millis(20));
    }

    #[test]
    fn idle_resource_is_immediate() {
        let mut sim = Simulation::new(1);
        let r = Resource::new(sim.handle(), "cpu");
        let out = sim.spawn("u", move |ctx| {
            r.use_for(ctx, Duration::from_millis(1));
            ctx.now()
        });
        sim.run();
        assert_eq!(out.take(), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn busy_time_accumulates() {
        let mut sim = Simulation::new(1);
        let r = Resource::new(sim.handle(), "cpu");
        let r2 = r.clone();
        sim.spawn("u", move |ctx| {
            r2.use_for(ctx, Duration::from_millis(3));
            r2.use_for(ctx, Duration::from_millis(4));
        });
        sim.run();
        assert_eq!(r.busy_time(), Duration::from_millis(7));
    }

    #[test]
    fn manual_acquire_release() {
        let mut sim = Simulation::new(1);
        let r = Resource::new(sim.handle(), "dev");
        let r1 = r.clone();
        let r2 = r.clone();
        sim.spawn("holder", move |ctx| {
            r1.acquire(ctx);
            ctx.sleep(Duration::from_millis(10));
            r1.release();
        });
        let out = sim.spawn("waiter", move |ctx| {
            ctx.sleep(Duration::from_millis(1));
            r2.acquire(ctx);
            let t = ctx.now();
            r2.release();
            t
        });
        sim.run();
        assert_eq!(out.take(), Some(SimTime::from_millis(10)));
    }
}

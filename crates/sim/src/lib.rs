//! # amoeba-sim — deterministic discrete-event simulation kernel
//!
//! The substrate for the Amoeba directory-service reproduction: a
//! discrete-event simulator whose "processes" are green threads (one OS
//! thread each) driven by a strict resume/yield handshake, so that **exactly
//! one thread runs at any instant** and execution is bit-exactly
//! deterministic for a given seed.
//!
//! Protocol code written against this crate reads like ordinary blocking
//! code — `ctx.sleep(..)`, `rx.recv(ctx)`, `tx.send(msg)` — exactly the
//! style of the pseudocode in the ICDCS '93 paper (initiator threads that
//! block until the group thread has executed a request, and so on).
//!
//! ## Features
//!
//! * Virtual time ([`SimTime`]) with nanosecond resolution.
//! * Typed, deterministic [`mailboxes`](MailboxTx) with optional delivery
//!   delays — the basis for the simulated network and disks.
//! * Crashable [`nodes`](NodeId): failure domains whose processes are killed
//!   together, losing all RAM state, while shared persistent objects
//!   survive — the paper's fail-stop model.
//! * A tiny deterministic PRNG ([`SimRng`]) so results do not depend on any
//!   external crate's stream stability.
//!
//! ## Example
//!
//! ```
//! use amoeba_sim::Simulation;
//! use std::time::Duration;
//!
//! let mut sim = Simulation::new(7);
//! let (tx, rx) = sim.channel::<u32>();
//! sim.spawn("producer", move |ctx| {
//!     ctx.sleep(Duration::from_millis(2));
//!     tx.send(99);
//! });
//! let got = sim.spawn("consumer", move |ctx| rx.recv(ctx));
//! sim.run();
//! assert_eq!(got.take(), Some(99));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ctx;
mod handle;
mod ids;
mod kernel;
mod mailbox;
mod process;
mod record;
mod resource;
mod rng;
mod sim;
mod spawn;
mod time;

pub use ctx::Ctx;
pub use handle::SimHandle;
pub use ids::{NodeId, ProcId};
pub use mailbox::{select2, select2_deadline, Either, MailboxRx, MailboxTx};
pub use process::ProcOutput;
pub use record::{fault_codes, SimTrace, StepTag, TraceStep};
pub use resource::Resource;
pub use rng::SimRng;
pub use sim::{RunStats, Simulation};
pub use spawn::Spawn;
pub use time::SimTime;

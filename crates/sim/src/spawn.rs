//! The [`Spawn`] abstraction: anything that can start processes.
//!
//! Infrastructure layers (network stacks, servers) need to spawn their
//! internal processes both from test setup code (which holds a
//! [`Simulation`](crate::Simulation)) and from inside running processes
//! (which hold a [`Ctx`](crate::Ctx)). `Spawn` is the common interface.

use crate::ctx::Ctx;
use crate::handle::SimHandle;
use crate::ids::NodeId;
use crate::process::ProcOutput;

/// A capability to spawn simulated processes and mint [`SimHandle`]s.
pub trait Spawn {
    /// Spawns a process, optionally pinned to a node (killed on its crash).
    ///
    /// # Panics
    ///
    /// Panics if `node` refers to a crashed node.
    fn spawn_boxed(
        &self,
        node: Option<NodeId>,
        name: &str,
        f: Box<dyn FnOnce(&Ctx) + Send + 'static>,
    );

    /// A handle for creating mailboxes and reading the clock.
    fn sim_handle(&self) -> SimHandle;
}

impl Spawn for crate::Simulation {
    fn spawn_boxed(
        &self,
        node: Option<NodeId>,
        name: &str,
        f: Box<dyn FnOnce(&Ctx) + Send + 'static>,
    ) {
        let _: ProcOutput<()> = match node {
            Some(n) => self.spawn_on(n, name, f),
            None => self.spawn(name, f),
        };
    }

    fn sim_handle(&self) -> SimHandle {
        self.handle()
    }
}

impl Spawn for Ctx {
    fn spawn_boxed(
        &self,
        node: Option<NodeId>,
        name: &str,
        f: Box<dyn FnOnce(&Ctx) + Send + 'static>,
    ) {
        let _: ProcOutput<()> = match node {
            Some(n) => self.spawn_on(n, name, f),
            None => {
                // Deliberately detach from the caller's node: infrastructure
                // spawned without an explicit node placement should not
                // silently inherit the spawner's failure domain.
                crate::kernel::spawn_proc(self.shared(), name, None, f)
            }
        };
    }

    fn sim_handle(&self) -> SimHandle {
        self.handle()
    }
}

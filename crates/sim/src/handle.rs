//! A cloneable, thread-safe handle to a running simulation.
//!
//! Library layers (network stacks, servers) need to create mailboxes and
//! read the clock from constructors that may be called either from setup
//! code (with a [`crate::Simulation`]) or from inside a process (with a
//! [`crate::Ctx`]). `SimHandle` is the common denominator both can produce.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::Kernel;
use crate::mailbox::{channel_impl, MailboxRx, MailboxTx};
use crate::time::SimTime;

/// A capability to create mailboxes and read the virtual clock.
///
/// Obtained from [`Simulation::handle`](crate::Simulation::handle) or
/// [`Ctx::handle`](crate::Ctx::handle); freely cloneable and sendable.
pub struct SimHandle {
    pub(crate) shared: Arc<Mutex<Kernel>>,
}

impl Clone for SimHandle {
    fn clone(&self) -> Self {
        SimHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl std::fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimHandle(now={})", self.now())
    }
}

impl SimHandle {
    /// Creates a new typed mailbox.
    pub fn channel<T: Send + 'static>(&self) -> (MailboxTx<T>, MailboxRx<T>) {
        channel_impl(&self.shared)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.lock().now
    }

    /// Records a fault-model action into the decision trace (no-op unless
    /// the simulation is recording or replaying). Used by the network layer
    /// to pin link/partition/parameter changes; `code` should come from
    /// [`crate::fault_codes`].
    pub fn record_fault(&self, code: u64, a: u64, b: u64) {
        self.shared.lock().record_fault(code, a, b);
    }

    /// A snapshot of the decision trace recorded so far; `None` unless the
    /// simulation was created with [`crate::Simulation::recording`].
    ///
    /// Unlike [`crate::Simulation::take_recording`] this works from a
    /// handle, so a runner that wrapped the simulation in `catch_unwind`
    /// can still retrieve the trace after a panic tore the simulation down.
    pub fn snapshot_recording(&self) -> Option<crate::record::SimTrace> {
        self.shared.lock().snapshot_recording()
    }
}

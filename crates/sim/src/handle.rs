//! A cloneable, thread-safe handle to a running simulation.
//!
//! Library layers (network stacks, servers) need to create mailboxes and
//! read the clock from constructors that may be called either from setup
//! code (with a [`crate::Simulation`]) or from inside a process (with a
//! [`crate::Ctx`]). `SimHandle` is the common denominator both can produce.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::Kernel;
use crate::mailbox::{channel_impl, MailboxRx, MailboxTx};
use crate::time::SimTime;

/// A capability to create mailboxes and read the virtual clock.
///
/// Obtained from [`Simulation::handle`](crate::Simulation::handle) or
/// [`Ctx::handle`](crate::Ctx::handle); freely cloneable and sendable.
pub struct SimHandle {
    pub(crate) shared: Arc<Mutex<Kernel>>,
}

impl Clone for SimHandle {
    fn clone(&self) -> Self {
        SimHandle {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl std::fmt::Debug for SimHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimHandle(now={})", self.now())
    }
}

impl SimHandle {
    /// Creates a new typed mailbox.
    pub fn channel<T: Send + 'static>(&self) -> (MailboxTx<T>, MailboxRx<T>) {
        channel_impl(&self.shared)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.lock().now
    }

    /// The seed the simulation was created with.
    pub fn seed(&self) -> u64 {
        self.shared.lock().seed
    }

    /// Records a fault-model action into the decision trace (no-op unless
    /// the simulation is recording or replaying). Used by the network layer
    /// to pin link/partition/parameter changes; `code` should come from
    /// [`crate::fault_codes`].
    pub fn record_fault(&self, code: u64, a: u64, b: u64) {
        self.shared.lock().record_fault(code, a, b);
    }

    /// A snapshot of the decision trace recorded so far; `None` unless the
    /// simulation was created with [`crate::Simulation::recording`].
    ///
    /// Unlike [`crate::Simulation::take_recording`] this works from a
    /// handle, so a runner that wrapped the simulation in `catch_unwind`
    /// can still retrieve the trace after a panic tore the simulation down.
    pub fn snapshot_recording(&self) -> Option<crate::record::SimTrace> {
        self.shared.lock().snapshot_recording()
    }

    /// Attaches an arbitrary per-simulation payload to the kernel.
    ///
    /// This is how cross-cutting observers (the telemetry collector) reach
    /// every layer without threading a handle through each constructor:
    /// any component holding a `SimHandle` can look the payload up. The
    /// slot is per-`Simulation`, so parallel tests never share state. The
    /// kernel itself never reads the payload — storing one cannot perturb
    /// scheduling.
    pub fn set_user_data(&self, data: Arc<dyn std::any::Any + Send + Sync>) {
        self.shared.lock().user_data = Some(data);
    }

    /// The payload installed by [`SimHandle::set_user_data`], if any.
    pub fn user_data(&self) -> Option<Arc<dyn std::any::Any + Send + Sync>> {
        self.shared.lock().user_data.clone()
    }
}

//! Identifiers for simulator entities.

use std::fmt;

/// Identifies a simulated process (a green thread driven by the kernel).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) u64);

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc#{}", self.0)
    }
}

/// Identifies a simulated machine: a crash/restart failure domain that owns
/// a set of processes.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// A small stable integer for this node, useful in logs and tests.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Identifies a mailbox inside the kernel's wake tables.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct MailboxId(pub(crate) u64);

impl fmt::Debug for MailboxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mbox#{}", self.0)
    }
}

//! The simulator kernel: event queue, process table, wake bookkeeping.
//!
//! The kernel enforces the central invariant of the simulator: **at any
//! instant at most one thread runs** — either the kernel loop (in
//! [`crate::Simulation`]) or exactly one process thread that the kernel has
//! resumed and is waiting on. All cross-thread coordination goes through a
//! strict resume/yield handshake, which makes execution deterministic
//! regardless of OS scheduling.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::panic;
use std::sync::{Arc, Once};
use std::thread::JoinHandle;

use crossbeam_channel::Sender;
use parking_lot::Mutex;

use crate::ids::{MailboxId, NodeId, ProcId};
use crate::record::{fault_codes, RecMode, SimTrace, StepTag, TraceStep};
use crate::rng::SimRng;
use crate::time::SimTime;

/// Panic payload used to unwind a killed process thread. Never observed by
/// user code: the thread wrapper catches it and reports a clean exit.
pub(crate) struct KillToken;

/// Silences the default panic hook for [`KillToken`] unwinds so crashing
/// simulated nodes does not spam stderr.
pub(crate) fn install_quiet_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().is::<KillToken>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Converts an arbitrary panic payload into a printable message.
pub(crate) fn panic_message(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Sent by the kernel to a process thread to let it run (or die).
pub(crate) enum Resume {
    Go(WakeReason),
    Kill,
}

/// Why a blocked process was resumed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum WakeReason {
    /// First activation of the process body.
    First,
    /// A `sleep` deadline elapsed.
    Slept,
    /// The mailbox at this index in the wait set became non-empty.
    MailboxReady(usize),
    /// A `recv_deadline` timed out.
    TimedOut,
}

/// Sent by a process thread to the kernel when it gives up the CPU.
pub(crate) struct YieldMsg {
    pub pid: ProcId,
    pub kind: YieldKind,
    /// Digest of the process's RNG state at the yield; lets record/replay
    /// catch divergent draws without recording each one.
    pub rng_digest: u64,
}

pub(crate) enum YieldKind {
    /// Block until the given instant.
    Sleep { until: SimTime },
    /// Block until one of the mailboxes is non-empty, or the deadline.
    Wait {
        boxes: Vec<MailboxId>,
        deadline: Option<SimTime>,
    },
    /// The process body returned (`panic: None`) or panicked.
    Exited { panic: Option<String> },
}

/// What a blocked process is blocked on; selects the wake reason for timers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum BlockKind {
    None,
    Sleep,
    Wait,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum ProcState {
    /// Spawned; the `Start` event has not run yet.
    Ready,
    /// Currently executing (the kernel is waiting for its yield).
    Running,
    /// Parked in the resume handshake.
    Blocked,
    /// The thread body has finished (normally, by panic, or by kill).
    Exited,
}

pub(crate) struct ProcRec {
    pub name: String,
    pub node: Option<NodeId>,
    pub resume_tx: Sender<Resume>,
    pub join: Option<JoinHandle<()>>,
    pub state: ProcState,
    pub block: BlockKind,
    /// Wake generation; bumped on every resume so stale timers are ignored.
    pub gen: u64,
    /// Mailboxes this process is currently registered as a waiter on.
    pub wait_boxes: Vec<MailboxId>,
    /// Marked dead by a node crash; reaped lazily by a `Reap` event.
    pub dead: bool,
}

#[derive(Default)]
pub(crate) struct MailboxRec {
    /// At most one process may wait on a mailbox at a time.
    pub waiter: Option<(ProcId, u64, usize)>,
}

pub(crate) struct NodeRec {
    pub name: String,
    pub procs: HashSet<ProcId>,
    pub alive: bool,
}

/// A process to resume, with the reason to hand it.
pub(crate) struct Wake {
    pub pid: ProcId,
    pub reason: WakeReason,
}

pub(crate) type ActionFn = Box<dyn FnOnce(&mut Kernel) -> Vec<Wake> + Send>;

pub(crate) enum EventKind {
    /// First activation of a spawned process.
    Start(ProcId),
    /// Sleep or wait-deadline expiry for a specific wake generation.
    Timer { pid: ProcId, gen: u64 },
    /// Arbitrary kernel mutation (message delivery etc.).
    Action(ActionFn),
    /// Kill-handshake the listed (already marked dead) processes.
    Reap(Vec<ProcId>),
}

pub(crate) struct EventEntry {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    // Reversed so that BinaryHeap pops the earliest (time, seq) first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

pub(crate) struct Kernel {
    pub now: SimTime,
    queue: BinaryHeap<EventEntry>,
    next_seq: u64,
    pub procs: HashMap<ProcId, ProcRec>,
    next_pid: u64,
    pub mailboxes: HashMap<MailboxId, MailboxRec>,
    next_mbox: u64,
    pub nodes: HashMap<NodeId, NodeRec>,
    next_node: u32,
    pub seed: u64,
    pub yield_tx: Sender<YieldMsg>,
    pub events_processed: u64,
    pub trace: Option<Vec<(SimTime, String)>>,
    /// Decision-trace recording/replay state (see [`crate::record`]).
    pub(crate) rec: RecMode,
    /// Opaque per-simulation payload (see [`crate::SimHandle::set_user_data`]).
    /// Never read by the kernel itself.
    pub user_data: Option<std::sync::Arc<dyn std::any::Any + Send + Sync>>,
}

impl Kernel {
    pub fn new(seed: u64, yield_tx: Sender<YieldMsg>) -> Self {
        Kernel {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            next_seq: 0,
            procs: HashMap::new(),
            next_pid: 0,
            mailboxes: HashMap::new(),
            next_mbox: 0,
            nodes: HashMap::new(),
            next_node: 0,
            seed,
            yield_tx,
            events_processed: 0,
            trace: None,
            rec: RecMode::Off,
            user_data: None,
        }
    }

    /// Records (or, under replay, verifies) one kernel decision.
    pub(crate) fn checkpoint(&mut self, tag: StepTag, a: u64, b: u64, c: u64) {
        // Fast path: recording off.
        if matches!(self.rec, RecMode::Off) {
            return;
        }
        let step = TraceStep {
            time_ns: self.now.as_nanos(),
            tag,
            a,
            b,
            c,
        };
        self.rec.checkpoint(step);
    }

    /// Checkpoints a just-popped event (called by the run loop).
    pub(crate) fn checkpoint_event(&mut self, ev: &EventEntry) {
        if matches!(self.rec, RecMode::Off) {
            return;
        }
        let (tag, a, b, c) = match &ev.kind {
            EventKind::Start(pid) => (StepTag::EventStart, pid.0, 0, 0),
            EventKind::Timer { pid, gen } => (StepTag::EventTimer, pid.0, *gen, 0),
            EventKind::Action(_) => (StepTag::EventAction, ev.seq, 0, 0),
            EventKind::Reap(pids) => (
                StepTag::EventReap,
                pids.len() as u64,
                pids.first().map(|p| p.0).unwrap_or(0),
                pids.last().map(|p| p.0).unwrap_or(0),
            ),
        };
        self.checkpoint(tag, a, b, c);
    }

    /// Records a fault-model action (node crash/revive, network faults).
    pub fn record_fault(&mut self, code: u64, a: u64, b: u64) {
        self.checkpoint(StepTag::Fault, code, a, b);
    }

    /// Snapshot of the recorded trace so far (None unless recording).
    pub(crate) fn snapshot_recording(&self) -> Option<SimTrace> {
        match &self.rec {
            RecMode::Record(steps) => Some(SimTrace {
                seed: self.seed,
                steps: steps.clone(),
            }),
            _ => None,
        }
    }

    pub fn schedule(&mut self, time: SimTime, kind: EventKind) {
        debug_assert!(time >= self.now, "scheduling into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(EventEntry { time, seq, kind });
    }

    pub fn schedule_action<F>(&mut self, time: SimTime, f: F)
    where
        F: FnOnce(&mut Kernel) -> Vec<Wake> + Send + 'static,
    {
        self.schedule(time, EventKind::Action(Box::new(f)));
    }

    pub fn pop_event(&mut self) -> Option<EventEntry> {
        self.queue.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|e| e.time)
    }

    pub fn alloc_pid(&mut self) -> ProcId {
        let id = ProcId(self.next_pid);
        self.next_pid += 1;
        id
    }

    pub fn alloc_mailbox(&mut self) -> MailboxId {
        let id = MailboxId(self.next_mbox);
        self.next_mbox += 1;
        self.mailboxes.insert(id, MailboxRec::default());
        id
    }

    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.nodes.insert(
            id,
            NodeRec {
                name: name.to_owned(),
                procs: HashSet::new(),
                alive: true,
            },
        );
        id
    }

    /// Derives the deterministic per-process RNG stream.
    pub fn proc_rng(&self, pid: ProcId) -> SimRng {
        SimRng::new(self.seed).fork(pid.0.wrapping_add(1))
    }

    /// A message arrived at `id`; returns the waiter to wake, if any.
    pub fn mailbox_ready(&mut self, id: MailboxId) -> Vec<Wake> {
        let rec = match self.mailboxes.get_mut(&id) {
            Some(r) => r,
            None => return Vec::new(),
        };
        let (pid, gen, idx) = match rec.waiter.take() {
            Some(w) => w,
            None => return Vec::new(),
        };
        match self.procs.get(&pid) {
            Some(p) if !p.dead && p.state == ProcState::Blocked && p.gen == gen => {
                vec![Wake {
                    pid,
                    reason: WakeReason::MailboxReady(idx),
                }]
            }
            _ => Vec::new(),
        }
    }

    /// Clears this process's wait registrations (it is about to run).
    pub fn clear_waits(&mut self, pid: ProcId) {
        let boxes = match self.procs.get_mut(&pid) {
            Some(p) => std::mem::take(&mut p.wait_boxes),
            None => return,
        };
        for b in boxes {
            if let Some(rec) = self.mailboxes.get_mut(&b) {
                if matches!(rec.waiter, Some((w, _, _)) if w == pid) {
                    rec.waiter = None;
                }
            }
        }
    }

    /// Marks every process on `node` dead and schedules their reaping.
    /// RAM state is lost; anything reachable only through those processes
    /// is gone. Persistent stores (simulated disks, NVRAM) are plain shared
    /// objects and survive.
    pub fn crash_node(&mut self, node: NodeId) {
        let pids: Vec<ProcId> = match self.nodes.get_mut(&node) {
            Some(n) => {
                n.alive = false;
                n.procs.iter().copied().collect()
            }
            None => return,
        };
        let mut doomed = Vec::new();
        for pid in pids {
            if let Some(p) = self.procs.get_mut(&pid) {
                if p.state != ProcState::Exited && !p.dead {
                    p.dead = true;
                    doomed.push(pid);
                }
            }
        }
        // `NodeRec::procs` is a HashSet whose iteration order varies between
        // process invocations; sort so the reap order (and thus the decision
        // trace) is identical across runs.
        doomed.sort_unstable();
        let name = self
            .nodes
            .get(&node)
            .map(|n| n.name.clone())
            .unwrap_or_default();
        self.trace_log(format!("crash {node} ({name})"));
        self.record_fault(fault_codes::CRASH_NODE, node.0 as u64, 0);
        if !doomed.is_empty() {
            let t = self.now;
            self.schedule(t, EventKind::Reap(doomed));
        }
    }

    /// Makes a crashed node able to host processes again (a "reboot").
    pub fn revive_node(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(&node) {
            n.alive = true;
            n.procs.clear();
        }
        self.trace_log(format!("revive {node}"));
        self.record_fault(fault_codes::REVIVE_NODE, node.0 as u64, 0);
    }

    pub fn node_alive(&self, node: NodeId) -> bool {
        self.nodes.get(&node).map(|n| n.alive).unwrap_or(false)
    }

    pub fn trace_log(&mut self, msg: String) {
        let now = self.now;
        if let Some(t) = &mut self.trace {
            t.push((now, msg));
        }
    }
}

/// Registers a new process and schedules its first activation.
///
/// This is a free function (not a method) because constructing the process's
/// [`crate::Ctx`] requires the `Arc` around the kernel, which a `&mut Kernel`
/// cannot produce.
pub(crate) fn spawn_proc<F, R>(
    shared: &Arc<Mutex<Kernel>>,
    name: &str,
    node: Option<NodeId>,
    f: F,
) -> crate::process::ProcOutput<R>
where
    F: FnOnce(&crate::ctx::Ctx) -> R + Send + 'static,
    R: Send + 'static,
{
    crate::process::spawn_impl(shared, name, node, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    fn kernel() -> Kernel {
        let (tx, _rx) = unbounded();
        // Leak the receiver end on purpose: these tests never resume procs.
        std::mem::forget(_rx);
        Kernel::new(1, tx)
    }

    #[test]
    fn event_ordering_by_time_then_seq() {
        let mut k = kernel();
        k.schedule(SimTime::from_millis(5), EventKind::Reap(vec![]));
        k.schedule(SimTime::from_millis(1), EventKind::Reap(vec![]));
        k.schedule(SimTime::from_millis(5), EventKind::Start(ProcId(9)));
        let e1 = k.pop_event().unwrap();
        assert_eq!(e1.time, SimTime::from_millis(1));
        let e2 = k.pop_event().unwrap();
        assert_eq!(e2.time, SimTime::from_millis(5));
        // Same-time events pop in insertion order.
        assert!(matches!(e2.kind, EventKind::Reap(_)));
        let e3 = k.pop_event().unwrap();
        assert!(matches!(e3.kind, EventKind::Start(_)));
        assert!(k.pop_event().is_none());
    }

    #[test]
    fn mailbox_ready_without_waiter_is_noop() {
        let mut k = kernel();
        let m = k.alloc_mailbox();
        assert!(k.mailbox_ready(m).is_empty());
    }

    #[test]
    fn node_lifecycle() {
        let mut k = kernel();
        let n = k.add_node("srv");
        assert!(k.node_alive(n));
        k.crash_node(n);
        assert!(!k.node_alive(n));
        k.revive_node(n);
        assert!(k.node_alive(n));
    }

    #[test]
    fn proc_rng_streams_are_distinct() {
        let k = kernel();
        let mut a = k.proc_rng(ProcId(0));
        let mut b = k.proc_rng(ProcId(1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut k = kernel();
        assert!(k.peek_time().is_none());
        k.schedule(SimTime::from_millis(7), EventKind::Reap(vec![]));
        k.schedule(SimTime::from_millis(3), EventKind::Reap(vec![]));
        assert_eq!(k.peek_time(), Some(SimTime::from_millis(3)));
    }
}

//! The [`Simulation`]: owner of the kernel and driver of the event loop.

use std::sync::Arc;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver};
use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::ids::{NodeId, ProcId};
use crate::kernel::{
    install_quiet_panic_hook, BlockKind, EventKind, Kernel, ProcState, Resume, Wake, WakeReason,
    YieldKind, YieldMsg,
};
use crate::mailbox::{channel_impl, MailboxRx, MailboxTx};
use crate::process::ProcOutput;
use crate::record::{RecMode, SimTrace, StepTag};
use crate::time::SimTime;

/// Statistics returned by [`Simulation::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Total kernel events processed so far.
    pub events: u64,
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
}

/// A deterministic discrete-event simulation.
///
/// Spawn processes, then call [`run`](Simulation::run) (or
/// [`run_until`](Simulation::run_until)) to execute them under virtual time.
/// Execution is bit-exactly reproducible for a given seed and program.
///
/// # Examples
///
/// ```
/// use amoeba_sim::Simulation;
/// use std::time::Duration;
///
/// let mut sim = Simulation::new(42);
/// let out = sim.spawn("worker", |ctx| {
///     ctx.sleep(Duration::from_millis(5));
///     ctx.now().as_millis_f64()
/// });
/// sim.run();
/// assert_eq!(out.take(), Some(5.0));
/// ```
pub struct Simulation {
    shared: Arc<Mutex<Kernel>>,
    yield_rx: Receiver<YieldMsg>,
    /// Set when a process panicked; the panic is re-raised after teardown.
    poisoned: Option<String>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let k = self.shared.lock();
        f.debug_struct("Simulation")
            .field("now", &k.now)
            .field("events", &k.events_processed)
            .field("procs", &k.procs.len())
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        install_quiet_panic_hook();
        let (yield_tx, yield_rx) = unbounded();
        Simulation {
            shared: Arc::new(Mutex::new(Kernel::new(seed, yield_tx))),
            yield_rx,
            poisoned: None,
        }
    }

    /// Creates a simulation that records its decision trace (see
    /// [`crate::record`]). Must be used instead of [`Simulation::new`]
    /// *before* any process is spawned, so the trace covers the whole run.
    pub fn recording(seed: u64) -> Self {
        let sim = Simulation::new(seed);
        sim.shared.lock().rec = RecMode::Record(Vec::new());
        sim
    }

    /// Creates a simulation that replays (verifies against) a recorded
    /// trace: the same program must be re-run on it, and the first decision
    /// that departs from the trace panics with a `replay divergence`
    /// message. The seed is taken from the trace.
    pub fn replaying(trace: &SimTrace) -> Self {
        let sim = Simulation::new(trace.seed);
        sim.shared.lock().rec = RecMode::Replay {
            steps: trace.steps.clone(),
            cursor: 0,
        };
        sim
    }

    /// A snapshot of the decision trace recorded so far; `None` unless the
    /// simulation was created with [`Simulation::recording`].
    pub fn take_recording(&self) -> Option<SimTrace> {
        self.shared.lock().snapshot_recording()
    }

    /// Enables trace collection (see [`take_trace`](Simulation::take_trace)).
    pub fn enable_trace(&self) {
        self.shared.lock().trace = Some(Vec::new());
    }

    /// Drains and returns collected trace lines.
    pub fn take_trace(&self) -> Vec<(SimTime, String)> {
        self.shared
            .lock()
            .trace
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.shared.lock().now
    }

    /// Adds a crashable node (failure domain) to the topology.
    pub fn add_node(&self, name: &str) -> NodeId {
        self.shared.lock().add_node(name)
    }

    /// Crashes a node at the current instant.
    pub fn crash_node(&self, node: NodeId) {
        self.shared.lock().crash_node(node);
    }

    /// Reboots a crashed node.
    pub fn revive_node(&self, node: NodeId) {
        self.shared.lock().revive_node(node);
    }

    /// Whether a node is alive.
    pub fn node_alive(&self, node: NodeId) -> bool {
        self.shared.lock().node_alive(node)
    }

    /// Spawns a free-standing process (not tied to any node).
    pub fn spawn<F, R>(&self, name: &str, f: F) -> ProcOutput<R>
    where
        F: FnOnce(&Ctx) -> R + Send + 'static,
        R: Send + 'static,
    {
        crate::kernel::spawn_proc(&self.shared, name, None, f)
    }

    /// Spawns a process on a node; it dies if the node crashes.
    ///
    /// # Panics
    ///
    /// Panics if the node is crashed.
    pub fn spawn_on<F, R>(&self, node: NodeId, name: &str, f: F) -> ProcOutput<R>
    where
        F: FnOnce(&Ctx) -> R + Send + 'static,
        R: Send + 'static,
    {
        crate::kernel::spawn_proc(&self.shared, name, Some(node), f)
    }

    /// Creates a mailbox from outside any process (for setup code).
    pub fn channel<T: Send + 'static>(&self) -> (MailboxTx<T>, MailboxRx<T>) {
        channel_impl(&self.shared)
    }

    /// A cloneable handle for creating mailboxes and reading the clock.
    pub fn handle(&self) -> crate::handle::SimHandle {
        crate::handle::SimHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs until no events remain (the quiescent state).
    ///
    /// # Panics
    ///
    /// Re-raises any panic from a simulated process.
    pub fn run(&mut self) -> RunStats {
        self.run_inner(None, u64::MAX)
    }

    /// Runs until virtual time exceeds `deadline` (events after it stay
    /// queued and `now` is advanced to `deadline`), or until quiescent.
    pub fn run_until(&mut self, deadline: SimTime) -> RunStats {
        self.run_inner(Some(deadline), u64::MAX)
    }

    /// Runs for `d` more virtual time.
    pub fn run_for(&mut self, d: Duration) -> RunStats {
        let deadline = self.now() + d;
        self.run_until(deadline)
    }

    /// Runs until quiescent or until `max_events` more events have been
    /// processed — a guard against livelock in tests.
    pub fn run_with_limit(&mut self, max_events: u64) -> RunStats {
        self.run_inner(None, max_events)
    }

    fn run_inner(&mut self, deadline: Option<SimTime>, max_events: u64) -> RunStats {
        let mut processed = 0u64;
        while processed < max_events {
            let event = {
                let mut k = self.shared.lock();
                match k.peek_time() {
                    None => break,
                    Some(t) => {
                        if let Some(d) = deadline {
                            if t > d {
                                k.now = d;
                                break;
                            }
                        }
                        let ev = k.pop_event().expect("peeked event vanished");
                        k.now = ev.time;
                        k.events_processed += 1;
                        k.checkpoint_event(&ev);
                        ev
                    }
                }
            };
            processed += 1;
            match event.kind {
                EventKind::Start(pid) => {
                    let ok = {
                        let k = self.shared.lock();
                        matches!(
                            k.procs.get(&pid),
                            Some(p) if !p.dead && p.state == ProcState::Ready
                        )
                    };
                    if ok {
                        self.resume(pid, WakeReason::First);
                    }
                }
                EventKind::Timer { pid, gen } => {
                    let reason = {
                        let k = self.shared.lock();
                        match k.procs.get(&pid) {
                            Some(p) if !p.dead && p.state == ProcState::Blocked && p.gen == gen => {
                                match p.block {
                                    BlockKind::Sleep => Some(WakeReason::Slept),
                                    BlockKind::Wait => Some(WakeReason::TimedOut),
                                    BlockKind::None => None,
                                }
                            }
                            _ => None,
                        }
                    };
                    if let Some(r) = reason {
                        self.resume(pid, r);
                    }
                }
                EventKind::Action(f) => {
                    let wakes: Vec<Wake> = {
                        let mut k = self.shared.lock();
                        f(&mut k)
                    };
                    for w in wakes {
                        self.resume(w.pid, w.reason);
                    }
                }
                EventKind::Reap(pids) => {
                    for pid in pids {
                        self.kill_handshake(pid);
                    }
                }
            }
            if let Some(msg) = self.poisoned.take() {
                self.teardown();
                panic!("simulated process panicked: {msg}");
            }
        }
        let k = self.shared.lock();
        RunStats {
            events: k.events_processed,
            end_time: k.now,
        }
    }

    /// Resumes `pid` and blocks until it yields again; then records the new
    /// blocking state in the kernel.
    fn resume(&mut self, pid: ProcId, reason: WakeReason) {
        let tx = {
            let mut k = self.shared.lock();
            k.clear_waits(pid);
            let p = match k.procs.get_mut(&pid) {
                Some(p) => p,
                None => return,
            };
            if p.dead || p.state == ProcState::Exited {
                return;
            }
            p.state = ProcState::Running;
            p.block = BlockKind::None;
            p.gen += 1;
            let tx = p.resume_tx.clone();
            let (code, idx) = match reason {
                WakeReason::First => (0, 0),
                WakeReason::Slept => (1, 0),
                WakeReason::MailboxReady(i) => (2, i as u64),
                WakeReason::TimedOut => (3, 0),
            };
            k.checkpoint(StepTag::Resume, pid.0, code, idx);
            tx
        };
        if tx.send(Resume::Go(reason)).is_err() {
            return;
        }
        let y = self
            .yield_rx
            .recv()
            .expect("process thread vanished without yielding");
        debug_assert_eq!(y.pid, pid, "yield from unexpected process");
        self.process_yield(y);
    }

    fn process_yield(&mut self, y: YieldMsg) {
        let pid = y.pid;
        let mut k = self.shared.lock();
        let kind_code = match &y.kind {
            YieldKind::Sleep { .. } => 0,
            YieldKind::Wait { .. } => 1,
            YieldKind::Exited { .. } => 2,
        };
        k.checkpoint(StepTag::Yield, pid.0, kind_code, y.rng_digest);
        match y.kind {
            YieldKind::Sleep { until } => {
                let gen = {
                    let p = k.procs.get_mut(&pid).expect("yield from unknown proc");
                    p.state = ProcState::Blocked;
                    p.block = BlockKind::Sleep;
                    p.gen
                };
                let t = until.max(k.now);
                k.schedule(t, EventKind::Timer { pid, gen });
            }
            YieldKind::Wait { boxes, deadline } => {
                let gen = {
                    let p = k.procs.get_mut(&pid).expect("yield from unknown proc");
                    p.state = ProcState::Blocked;
                    p.block = BlockKind::Wait;
                    p.wait_boxes = boxes.clone();
                    p.gen
                };
                for (idx, b) in boxes.iter().enumerate() {
                    if let Some(rec) = k.mailboxes.get_mut(b) {
                        rec.waiter = Some((pid, gen, idx));
                    }
                }
                if let Some(d) = deadline {
                    let t = d.max(k.now);
                    k.schedule(t, EventKind::Timer { pid, gen });
                }
            }
            YieldKind::Exited { panic } => {
                if let Some(p) = k.procs.get_mut(&pid) {
                    p.state = ProcState::Exited;
                    p.block = BlockKind::None;
                }
                k.clear_waits(pid);
                if let Some(node) = k.procs.get(&pid).and_then(|p| p.node) {
                    if let Some(n) = k.nodes.get_mut(&node) {
                        n.procs.remove(&pid);
                    }
                }
                if let Some(msg) = panic {
                    let name = k
                        .procs
                        .get(&pid)
                        .map(|p| p.name.clone())
                        .unwrap_or_default();
                    self.poisoned = Some(format!("'{name}' ({pid}): {msg}"));
                }
            }
        }
    }

    /// Sends `Kill` to a (dead-marked or teardown) process and waits for its
    /// final `Exited` ack, then joins the thread.
    fn kill_handshake(&mut self, pid: ProcId) {
        let (tx, join) = {
            let mut k = self.shared.lock();
            let p = match k.procs.get_mut(&pid) {
                Some(p) => p,
                None => return,
            };
            if p.state == ProcState::Exited {
                if let Some(j) = p.join.take() {
                    let _ = j.join();
                }
                return;
            }
            (p.resume_tx.clone(), p.join.take())
        };
        if tx.send(Resume::Kill).is_ok() {
            // The only runnable thread is now the dying one; its final yield
            // must be the Exited ack.
            loop {
                match self.yield_rx.recv() {
                    Ok(y) if y.pid == pid && matches!(y.kind, YieldKind::Exited { .. }) => {
                        // Killed processes never propagate panics.
                        let mut k = self.shared.lock();
                        if let Some(p) = k.procs.get_mut(&pid) {
                            p.state = ProcState::Exited;
                        }
                        k.clear_waits(pid);
                        break;
                    }
                    Ok(_) => {
                        // A stale yield from this pid (can't happen with the
                        // handshake, but don't wedge if it does).
                        continue;
                    }
                    Err(_) => break,
                }
            }
        }
        if let Some(j) = join {
            let _ = j.join();
        }
    }

    /// Kills every non-exited process and joins all threads.
    fn teardown(&mut self) {
        let pids: Vec<ProcId> = {
            let k = self.shared.lock();
            k.procs.keys().copied().collect()
        };
        let mut sorted = pids;
        sorted.sort_unstable();
        for pid in sorted {
            self.kill_handshake(pid);
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        self.teardown();
    }
}

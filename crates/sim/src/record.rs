//! Decision-trace record/replay for the simulation kernel.
//!
//! # Determinism contract
//!
//! A simulation run is a pure function of `(program, seed)`: the kernel
//! processes events in strict `(time, seq)` order, at most one thread runs
//! at any instant, and every random draw comes from [`crate::SimRng`]
//! streams forked deterministically from the seed. The kernel may consult
//! **nothing else** — no wall clock, no OS entropy, no address-dependent
//! hashing, no iteration over randomized containers — when making a
//! scheduling decision. Under that contract, re-running the same program
//! with the same seed reproduces the run bit-exactly.
//!
//! Recording turns that implicit property into a checkable artifact: every
//! nondeterministic-looking decision the kernel makes (which event pops
//! next, which process resumes and why, what each process yields, every
//! spawn, every fault-model action) is appended to a [`SimTrace`] as a
//! fixed-size [`TraceStep`].
//!
//! # Replay is verify-mode
//!
//! Because the kernel is deterministic, replay does not *drive* the kernel
//! from the trace; it re-executes the same program from the same seed and
//! **cross-checks** every decision against the recorded step at the same
//! position. The first departure panics with a `replay divergence` message
//! naming the step index, what the trace expected and what the live run
//! did. A passing replay is therefore a proof that the run was reproduced
//! decision-for-decision — and a failing one points at the exact first
//! decision where determinism broke (typically an un-audited `HashMap`
//! iteration or a real-time dependency leaking into the model).
//!
//! RNG draws happen inside process threads without the kernel lock, so they
//! are not recorded one-by-one; instead every yield carries a digest of the
//! yielding process's RNG state ([`crate::SimRng::digest`]). The xoshiro
//! state is a perfect summary of the draw history, so a divergent draw is
//! caught at the first yield after it.
//!
//! # Trace format
//!
//! [`SimTrace::to_bytes`] serializes as: magic `"AMTR"`, `u16` version,
//! `u64` seed, `u64` step count, then one 33-byte record per step
//! (`u64` time_ns, `u8` tag, `u64 × 3` operands), all little-endian.

/// What kind of kernel decision a [`TraceStep`] records.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum StepTag {
    /// A process was registered: `a` = pid, `b` = node id + 1 (0 = none),
    /// `c` = FNV-1a hash of the process name.
    Spawn = 1,
    /// A `Start` event popped: `a` = pid.
    EventStart = 2,
    /// A `Timer` event popped: `a` = pid, `b` = wake generation.
    EventTimer = 3,
    /// An `Action` event popped: `a` = its schedule sequence number.
    EventAction = 4,
    /// A `Reap` event popped: `a` = victim count, `b` = first pid,
    /// `c` = last pid.
    EventReap = 5,
    /// A process was resumed: `a` = pid, `b` = wake-reason code
    /// (0 First, 1 Slept, 2 MailboxReady, 3 TimedOut), `c` = mailbox
    /// index for MailboxReady.
    Resume = 6,
    /// A process yielded: `a` = pid, `b` = yield-kind code (0 Sleep,
    /// 1 Wait, 2 Exited), `c` = the process's RNG state digest.
    Yield = 7,
    /// A fault-model action (node crash/revive, link/partition/parameter
    /// changes recorded by the network layer): `a`/`b`/`c` are a
    /// fault code and its operands (see [`crate::fault_codes`]).
    Fault = 8,
}

impl StepTag {
    fn from_u8(v: u8) -> Option<StepTag> {
        Some(match v {
            1 => StepTag::Spawn,
            2 => StepTag::EventStart,
            3 => StepTag::EventTimer,
            4 => StepTag::EventAction,
            5 => StepTag::EventReap,
            6 => StepTag::Resume,
            7 => StepTag::Yield,
            8 => StepTag::Fault,
            _ => return None,
        })
    }
}

/// Well-known `a`-operand codes for [`StepTag::Fault`] steps.
///
/// Codes 1–9 are reserved for the kernel itself; the network layer uses
/// 10 and up. The `b`/`c` operands are code-specific (node ids, host
/// addresses, scaled probabilities).
pub mod fault_codes {
    /// Kernel: a node crashed (`b` = node id).
    pub const CRASH_NODE: u64 = 1;
    /// Kernel: a node was revived (`b` = node id).
    pub const REVIVE_NODE: u64 = 2;
    /// Network: a host NIC went down (`b` = host address).
    pub const NET_DOWN: u64 = 10;
    /// Network: a host NIC came back up (`b` = host address).
    pub const NET_UP: u64 = 11;
    /// Network: hosts were isolated into a partition (`b` = host count,
    /// `c` = FNV hash of the host list).
    pub const NET_ISOLATE: u64 = 12;
    /// Network: an explicit partition map was installed (`b` = entry
    /// count, `c` = FNV hash of the map).
    pub const NET_PARTITION: u64 = 13;
    /// Network: all partitions healed.
    pub const NET_HEAL: u64 = 14;
    /// Network: delivery parameters changed (`b` = loss probability and
    /// `c` = duplicate probability, both scaled by 1e9).
    pub const NET_PARAMS: u64 = 15;
}

/// One recorded kernel decision.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceStep {
    /// Virtual time of the decision, in nanoseconds.
    pub time_ns: u64,
    /// What kind of decision this was.
    pub tag: StepTag,
    /// First operand (meaning depends on `tag`).
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Third operand.
    pub c: u64,
}

/// A complete decision trace of one simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimTrace {
    /// The RNG seed the run started from.
    pub seed: u64,
    /// Every recorded decision, in execution order.
    pub steps: Vec<TraceStep>,
}

const MAGIC: &[u8; 4] = b"AMTR";
const VERSION: u16 = 1;

impl SimTrace {
    /// Serializes the trace to its compact binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 2 + 8 + 8 + self.steps.len() * 33);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.steps.len() as u64).to_le_bytes());
        for s in &self.steps {
            out.extend_from_slice(&s.time_ns.to_le_bytes());
            out.push(s.tag as u8);
            out.extend_from_slice(&s.a.to_le_bytes());
            out.extend_from_slice(&s.b.to_le_bytes());
            out.extend_from_slice(&s.c.to_le_bytes());
        }
        out
    }

    /// Parses a trace produced by [`SimTrace::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<SimTrace, String> {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
            if data.len() < n {
                return Err("trace truncated".to_owned());
            }
            let (head, rest) = data.split_at(n);
            *data = rest;
            Ok(head)
        }
        fn take_u64(data: &mut &[u8]) -> Result<u64, String> {
            let b = take(data, 8)?;
            Ok(u64::from_le_bytes(b.try_into().unwrap()))
        }
        let mut d = data;
        if take(&mut d, 4)? != MAGIC {
            return Err("not a trace file (bad magic)".to_owned());
        }
        let ver = u16::from_le_bytes(take(&mut d, 2)?.try_into().unwrap());
        if ver != VERSION {
            return Err(format!("unsupported trace version {ver}"));
        }
        let seed = take_u64(&mut d)?;
        let count = take_u64(&mut d)? as usize;
        let mut steps = Vec::with_capacity(count.min(1 << 20));
        for i in 0..count {
            let time_ns = take_u64(&mut d)?;
            let tag_byte = take(&mut d, 1)?[0];
            let tag = StepTag::from_u8(tag_byte)
                .ok_or_else(|| format!("step {i}: unknown tag {tag_byte}"))?;
            let a = take_u64(&mut d)?;
            let b = take_u64(&mut d)?;
            let c = take_u64(&mut d)?;
            steps.push(TraceStep {
                time_ns,
                tag,
                a,
                b,
                c,
            });
        }
        Ok(SimTrace { seed, steps })
    }
}

/// FNV-1a hash, used to pin variable-length operands (process names, host
/// lists) into a fixed-size step.
pub(crate) fn fnv1a(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Kernel-side recording/replay state.
pub(crate) enum RecMode {
    /// No recording; zero overhead beyond a discriminant check.
    Off,
    /// Appending every decision to the vector.
    Record(Vec<TraceStep>),
    /// Cross-checking every decision against a recorded trace.
    Replay {
        steps: Vec<TraceStep>,
        cursor: usize,
    },
}

impl RecMode {
    /// Records or verifies one decision. Panics on replay divergence.
    pub fn checkpoint(&mut self, step: TraceStep) {
        match self {
            RecMode::Off => {}
            RecMode::Record(steps) => steps.push(step),
            RecMode::Replay { steps, cursor } => {
                if *cursor >= steps.len() {
                    // The live run outlived the trace (e.g. the recording
                    // stopped at a panic whose teardown we are past); stop
                    // checking rather than failing spuriously.
                    return;
                }
                let expected = steps[*cursor];
                if expected != step {
                    panic!(
                        "replay divergence at step {}: expected {:?} t={}ns \
                         (a={} b={} c={}), got {:?} t={}ns (a={} b={} c={})",
                        *cursor,
                        expected.tag,
                        expected.time_ns,
                        expected.a,
                        expected.b,
                        expected.c,
                        step.tag,
                        step.time_ns,
                        step.a,
                        step.b,
                        step.c,
                    );
                }
                *cursor += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes() {
        let t = SimTrace {
            seed: 42,
            steps: vec![
                TraceStep {
                    time_ns: 0,
                    tag: StepTag::Spawn,
                    a: 0,
                    b: 1,
                    c: fnv1a(b"worker"),
                },
                TraceStep {
                    time_ns: 5_000_000,
                    tag: StepTag::Resume,
                    a: 0,
                    b: 1,
                    c: 0,
                },
            ],
        };
        let bytes = t.to_bytes();
        let back = SimTrace::from_bytes(&bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(SimTrace::from_bytes(b"nope").is_err());
        assert!(SimTrace::from_bytes(b"AMTR\x09\x00").is_err());
    }

    #[test]
    fn replay_divergence_panics() {
        let step = |a| TraceStep {
            time_ns: 1,
            tag: StepTag::EventStart,
            a,
            b: 0,
            c: 0,
        };
        let mut mode = RecMode::Replay {
            steps: vec![step(1), step(2)],
            cursor: 0,
        };
        mode.checkpoint(step(1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            mode.checkpoint(step(9));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("replay divergence at step 1"), "{msg}");
    }

    #[test]
    fn replay_is_lenient_past_trace_end() {
        let mut mode = RecMode::Replay {
            steps: vec![],
            cursor: 0,
        };
        mode.checkpoint(TraceStep {
            time_ns: 0,
            tag: StepTag::Fault,
            a: 1,
            b: 2,
            c: 3,
        });
    }
}

//! Deterministic pseudo-random numbers for the simulator.
//!
//! The simulator must be bit-exactly reproducible from a seed, across
//! platforms and across versions of third-party crates, so it ships its own
//! tiny generator instead of depending on `rand`: xoshiro256\*\* seeded via
//! SplitMix64 (the construction recommended by the xoshiro authors).

/// A deterministic xoshiro256\*\* pseudo-random number generator.
///
/// Not cryptographically secure; used only for workload generation, jitter,
/// packet-loss decisions and check-field generation inside the simulation.
///
/// # Examples
///
/// ```
/// use amoeba_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and stream derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro must not start from the all-zero state; SplitMix64 of any
        // seed cannot produce four zero outputs in a row, but be defensive.
        if s == [0, 0, 0, 0] {
            SimRng { s: [1, 2, 3, 4] }
        } else {
            SimRng { s }
        }
    }

    /// Derives an independent generator for a sub-stream (e.g. per process).
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut sm = self.s[0] ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let _ = splitmix64(&mut sm);
        SimRng::new(splitmix64(&mut sm))
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A 64-bit digest of the generator's current state.
    ///
    /// The xoshiro state is a perfect summary of the draw history from a
    /// given starting state, so comparing digests at matching points of two
    /// runs detects any divergence in the number or order of draws. Does
    /// not advance the generator.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in &self.s {
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
            h ^= h >> 29;
        }
        h
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire's multiply-shift rejection method: unbiased and fast.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniformly distributed value in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "pick from empty slice");
        &xs[self.next_below(xs.len() as u64) as usize]
    }

    /// An exponentially distributed duration with the given mean, in
    /// nanoseconds. Used for Poisson inter-arrival workloads.
    pub fn exp_nanos(&mut self, mean_nanos: f64) -> u64 {
        let u = 1.0 - self.next_f64(); // in (0, 1]
        let v = -mean_nanos * u.ln();
        if v < 0.0 {
            0
        } else if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_independent_and_deterministic() {
        let base = SimRng::new(99);
        let mut f1 = base.fork(1);
        let mut f1b = base.fork(1);
        let mut f2 = base.fork(2);
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn next_below_in_bounds() {
        let mut r = SimRng::new(3);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..50 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = SimRng::new(11);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[r.next_below(4) as usize] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "count {c} out of range");
        }
    }

    #[test]
    fn range_in_bounds() {
        let mut r = SimRng::new(5);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(0).range(5, 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = SimRng::new(19);
        let hits = (0..20_000).filter(|_| r.chance(0.25)).count();
        assert!((4_300..5_700).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut xs: Vec<u32> = (0..32).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn exp_nanos_mean_is_close() {
        let mut r = SimRng::new(29);
        let n = 50_000;
        let mean = 1_000_000.0;
        let total: u128 = (0..n).map(|_| r.exp_nanos(mean) as u128).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}"
        );
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::new(31);
        let xs = [10, 20, 30];
        for _ in 0..20 {
            assert!(xs.contains(r.pick(&xs)));
        }
    }
}

//! Typed mailboxes: the only inter-process communication primitive.
//!
//! A mailbox is an unbounded FIFO queue with exactly one consumer process.
//! Senders are cheap clones usable from any process *or* from outside the
//! simulation (e.g. test setup code); a send schedules delivery through the
//! kernel event queue, optionally after a delay, so message arrival order is
//! always deterministic.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::ctx::Ctx;
use crate::ids::MailboxId;
use crate::kernel::{Kernel, WakeReason};
use crate::time::SimTime;

/// The sending half of a mailbox. Clonable and usable from anywhere.
pub struct MailboxTx<T> {
    id: MailboxId,
    queue: Arc<Mutex<VecDeque<T>>>,
    shared: Arc<Mutex<Kernel>>,
}

impl<T> Clone for MailboxTx<T> {
    fn clone(&self) -> Self {
        MailboxTx {
            id: self.id,
            queue: Arc::clone(&self.queue),
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> std::fmt::Debug for MailboxTx<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MailboxTx({:?})", self.id)
    }
}

impl<T: Send + 'static> MailboxTx<T> {
    /// Delivers `msg` at the current instant (after already-queued events).
    pub fn send(&self, msg: T) {
        self.send_after(Duration::ZERO, msg);
    }

    /// Delivers `msg` after `delay` of virtual time.
    pub fn send_after(&self, delay: Duration, msg: T) {
        let queue = Arc::clone(&self.queue);
        let id = self.id;
        let mut k = self.shared.lock();
        let t = k.now + delay;
        k.schedule_action(t, move |k| {
            queue.lock().push_back(msg);
            k.mailbox_ready(id)
        });
    }
}

/// The receiving half of a mailbox; owned by one process at a time.
pub struct MailboxRx<T> {
    id: MailboxId,
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> std::fmt::Debug for MailboxRx<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MailboxRx({:?})", self.id)
    }
}

impl<T: Send + 'static> MailboxRx<T> {
    /// Removes the next message without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.queue.lock().pop_front()
    }

    /// The number of queued messages.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Blocks until a message is available and returns it.
    pub fn recv(&self, ctx: &Ctx) -> T {
        loop {
            if let Some(v) = self.try_recv() {
                return v;
            }
            let _ = ctx.block_wait(vec![self.id], None);
        }
    }

    /// Blocks until a message arrives or `deadline` passes.
    pub fn recv_deadline(&self, ctx: &Ctx, deadline: SimTime) -> Option<T> {
        loop {
            if let Some(v) = self.try_recv() {
                return Some(v);
            }
            if ctx.now() >= deadline {
                return None;
            }
            match ctx.block_wait(vec![self.id], Some(deadline)) {
                WakeReason::TimedOut => return self.try_recv(),
                _ => continue,
            }
        }
    }

    /// Blocks until a message arrives or `timeout` elapses.
    pub fn recv_timeout(&self, ctx: &Ctx, timeout: Duration) -> Option<T> {
        let deadline = ctx.now() + timeout;
        self.recv_deadline(ctx, deadline)
    }

    pub(crate) fn id(&self) -> MailboxId {
        self.id
    }
}

/// The result of a two-way select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first mailbox produced a message.
    Left(A),
    /// The second mailbox produced a message.
    Right(B),
}

/// Blocks until either mailbox has a message; the first (left) mailbox wins
/// ties deterministically.
pub fn select2<A: Send + 'static, B: Send + 'static>(
    ctx: &Ctx,
    a: &MailboxRx<A>,
    b: &MailboxRx<B>,
) -> Either<A, B> {
    loop {
        if let Some(v) = a.try_recv() {
            return Either::Left(v);
        }
        if let Some(v) = b.try_recv() {
            return Either::Right(v);
        }
        let _ = ctx.block_wait(vec![a.id(), b.id()], None);
    }
}

/// Like [`select2`] but gives up at `deadline`, returning `None`.
pub fn select2_deadline<A: Send + 'static, B: Send + 'static>(
    ctx: &Ctx,
    a: &MailboxRx<A>,
    b: &MailboxRx<B>,
    deadline: SimTime,
) -> Option<Either<A, B>> {
    loop {
        if let Some(v) = a.try_recv() {
            return Some(Either::Left(v));
        }
        if let Some(v) = b.try_recv() {
            return Some(Either::Right(v));
        }
        if ctx.now() >= deadline {
            return None;
        }
        if ctx.block_wait(vec![a.id(), b.id()], Some(deadline)) == WakeReason::TimedOut {
            // Final re-check: a message may have landed with the timeout.
            if let Some(v) = a.try_recv() {
                return Some(Either::Left(v));
            }
            if let Some(v) = b.try_recv() {
                return Some(Either::Right(v));
            }
            return None;
        }
    }
}

pub(crate) fn channel_impl<T: Send + 'static>(
    shared: &Arc<Mutex<Kernel>>,
) -> (MailboxTx<T>, MailboxRx<T>) {
    let id = shared.lock().alloc_mailbox();
    let queue = Arc::new(Mutex::new(VecDeque::new()));
    (
        MailboxTx {
            id,
            queue: Arc::clone(&queue),
            shared: Arc::clone(shared),
        },
        MailboxRx { id, queue },
    )
}

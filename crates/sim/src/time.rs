//! Virtual time for the discrete-event simulator.
//!
//! [`SimTime`] is an absolute instant measured in nanoseconds since the start
//! of the simulation. Durations are ordinary [`std::time::Duration`] values,
//! so protocol code reads naturally (`ctx.sleep(Duration::from_millis(3))`).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant of virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and cheap to copy. Arithmetic with
/// [`Duration`] is saturating-free: overflowing 584 years of simulated time
/// panics in debug builds, which is far beyond any workload in this crate.
///
/// # Examples
///
/// ```
/// use amoeba_sim::SimTime;
/// use std::time::Duration;
///
/// let t = SimTime::ZERO + Duration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// assert_eq!(t - SimTime::ZERO, Duration::from_millis(5));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds since simulation start, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed duration since an earlier instant.
    ///
    /// Returns [`Duration::ZERO`] if `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, returning `None` on overflow.
    pub fn checked_add(self, d: Duration) -> Option<SimTime> {
        let nanos = u64::try_from(d.as_nanos()).ok()?;
        self.0.checked_add(nanos).map(SimTime)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        self.checked_add(rhs).expect("SimTime overflow")
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.6}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::ZERO + Duration::from_millis(3);
        assert_eq!(t.as_nanos(), 3_000_000);
        let t2 = t + Duration::from_micros(5);
        assert_eq!(t2.as_nanos(), 3_005_000);
    }

    #[test]
    fn add_assign() {
        let mut t = SimTime::from_millis(1);
        t += Duration::from_millis(2);
        assert_eq!(t, SimTime::from_millis(3));
    }

    #[test]
    fn subtraction_gives_duration() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, Duration::from_millis(6));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_millis(1));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert!(SimTime::from_secs(1) > SimTime::from_millis(999));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimTime::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimTime::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimTime::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(5)), "5.000000s");
    }

    #[test]
    fn float_conversions() {
        let t = SimTime::from_millis(1500);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_millis_f64() - 1500.0).abs() < 1e-9);
        assert!((t.as_micros_f64() - 1_500_000.0).abs() < 1e-6);
    }
}

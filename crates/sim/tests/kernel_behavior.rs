//! Behavioural tests for the simulation kernel: scheduling order, blocking
//! primitives, timeouts, node crashes, and determinism.

use std::sync::Arc;
use std::time::Duration;

use amoeba_sim::{select2, select2_deadline, Either, SimTime, Simulation};
use parking_lot::Mutex;

const MS: Duration = Duration::from_millis(1);

#[test]
fn virtual_time_advances_without_real_time() {
    let mut sim = Simulation::new(1);
    let out = sim.spawn("sleeper", |ctx| {
        ctx.sleep(Duration::from_secs(3600)); // an hour of virtual time
        ctx.now()
    });
    let start = std::time::Instant::now();
    sim.run();
    assert!(start.elapsed() < Duration::from_secs(5));
    assert_eq!(out.take(), Some(SimTime::from_secs(3600)));
}

#[test]
fn same_time_events_run_in_schedule_order() {
    let mut sim = Simulation::new(1);
    let log = Arc::new(Mutex::new(Vec::new()));
    for i in 0..5 {
        let log = Arc::clone(&log);
        sim.spawn(&format!("p{i}"), move |ctx| {
            ctx.sleep(Duration::from_millis(10));
            log.lock().push(i);
        });
    }
    sim.run();
    assert_eq!(*log.lock(), vec![0, 1, 2, 3, 4]);
}

#[test]
fn messages_arrive_in_send_order() {
    let mut sim = Simulation::new(1);
    let (tx, rx) = sim.channel::<u32>();
    sim.spawn("sender", move |_ctx| {
        for i in 0..10 {
            tx.send(i);
        }
    });
    let got = sim.spawn("receiver", move |ctx| {
        (0..10).map(|_| rx.recv(ctx)).collect::<Vec<_>>()
    });
    sim.run();
    assert_eq!(got.take(), Some((0..10).collect::<Vec<_>>()));
}

#[test]
fn delayed_sends_order_by_delivery_time() {
    let mut sim = Simulation::new(1);
    let (tx, rx) = sim.channel::<&'static str>();
    sim.spawn("sender", move |_ctx| {
        tx.send_after(5 * MS, "late");
        tx.send_after(MS, "early");
    });
    let got = sim.spawn("receiver", move |ctx| {
        let a = rx.recv(ctx);
        let t_a = ctx.now();
        let b = rx.recv(ctx);
        let t_b = ctx.now();
        (a, t_a, b, t_b)
    });
    sim.run();
    let (a, t_a, b, t_b) = got.take().unwrap();
    assert_eq!(a, "early");
    assert_eq!(t_a, SimTime::from_millis(1));
    assert_eq!(b, "late");
    assert_eq!(t_b, SimTime::from_millis(5));
}

#[test]
fn recv_timeout_expires_and_recovers() {
    let mut sim = Simulation::new(1);
    let (tx, rx) = sim.channel::<u8>();
    sim.spawn("sender", move |ctx| {
        ctx.sleep(10 * MS);
        tx.send(7);
    });
    let got = sim.spawn("receiver", move |ctx| {
        let first = rx.recv_timeout(ctx, 2 * MS); // expires at t=2ms
        let t1 = ctx.now();
        let second = rx.recv_timeout(ctx, 20 * MS); // arrives at t=10ms
        let t2 = ctx.now();
        (first, t1, second, t2)
    });
    sim.run();
    let (first, t1, second, t2) = got.take().unwrap();
    assert_eq!(first, None);
    assert_eq!(t1, SimTime::from_millis(2));
    assert_eq!(second, Some(7));
    assert_eq!(t2, SimTime::from_millis(10));
}

#[test]
fn try_recv_and_len() {
    let mut sim = Simulation::new(1);
    let (tx, rx) = sim.channel::<u8>();
    tx.send(1);
    tx.send(2);
    let got = sim.spawn("p", move |ctx| {
        ctx.sleep(MS);
        let n = rx.len();
        let a = rx.try_recv();
        let b = rx.try_recv();
        let c = rx.try_recv();
        (n, a, b, c, rx.is_empty())
    });
    sim.run();
    assert_eq!(got.take(), Some((2, Some(1), Some(2), None, true)));
}

#[test]
fn select2_prefers_left_on_tie() {
    let mut sim = Simulation::new(1);
    let (txa, rxa) = sim.channel::<u8>();
    let (txb, rxb) = sim.channel::<u8>();
    txa.send(1);
    txb.send(2);
    let got = sim.spawn("sel", move |ctx| {
        ctx.sleep(MS);
        match select2(ctx, &rxa, &rxb) {
            Either::Left(v) => ("left", v),
            Either::Right(v) => ("right", v),
        }
    });
    sim.run();
    assert_eq!(got.take(), Some(("left", 1)));
}

#[test]
fn select2_wakes_on_whichever_arrives() {
    let mut sim = Simulation::new(1);
    let (_txa, rxa) = sim.channel::<u8>();
    let (txb, rxb) = sim.channel::<u8>();
    sim.spawn("sender", move |ctx| {
        ctx.sleep(3 * MS);
        txb.send(9);
    });
    let got = sim.spawn("sel", move |ctx| match select2(ctx, &rxa, &rxb) {
        Either::Left(v) => ("left", v),
        Either::Right(v) => ("right", v),
    });
    sim.run();
    assert_eq!(got.take(), Some(("right", 9)));
}

#[test]
fn select2_deadline_times_out() {
    let mut sim = Simulation::new(1);
    let (_txa, rxa) = sim.channel::<u8>();
    let (_txb, rxb) = sim.channel::<u8>();
    let got = sim.spawn("sel", move |ctx| {
        let r = select2_deadline(ctx, &rxa, &rxb, SimTime::from_millis(4));
        (r.is_none(), ctx.now())
    });
    sim.run();
    assert_eq!(got.take(), Some((true, SimTime::from_millis(4))));
}

#[test]
fn spawned_children_run() {
    let mut sim = Simulation::new(1);
    let log = Arc::new(Mutex::new(Vec::new()));
    let log2 = Arc::clone(&log);
    sim.spawn("parent", move |ctx| {
        for i in 0..3 {
            let log = Arc::clone(&log2);
            ctx.spawn(&format!("child{i}"), move |ctx| {
                ctx.sleep(Duration::from_millis(i as u64));
                log.lock().push(i);
            });
        }
    });
    sim.run();
    assert_eq!(*log.lock(), vec![0, 1, 2]);
}

#[test]
fn crash_kills_node_processes_and_preserves_shared_state() {
    let mut sim = Simulation::new(1);
    let node = sim.add_node("server");
    let persistent = Arc::new(Mutex::new(Vec::new()));

    let p = Arc::clone(&persistent);
    sim.spawn_on(node, "writer", move |ctx| loop {
        p.lock().push(ctx.now());
        ctx.sleep(MS);
    });
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(Duration::from_micros(4500));
        ctx.crash_node(node);
    });
    sim.run_until(SimTime::from_millis(20));
    // Writer ticked at t=0..4ms then died; the "disk" (shared vec) survives.
    let n = persistent.lock().len();
    assert_eq!(n, 5, "writer should have ticked exactly 5 times, got {n}");
    assert!(!sim.node_alive(node));
}

#[test]
fn crashed_node_can_be_revived_and_reused() {
    let mut sim = Simulation::new(1);
    let node = sim.add_node("server");
    sim.spawn_on(node, "old", move |ctx| loop {
        ctx.sleep(MS);
    });
    sim.crash_node(node);
    let mut stats = sim.run_for(Duration::from_millis(5));
    assert!(!sim.node_alive(node));
    sim.revive_node(node);
    let out = sim.spawn_on(node, "new", |ctx| {
        ctx.sleep(MS);
        42u32
    });
    stats = {
        let s = sim.run();
        assert!(s.events >= stats.events);
        s
    };
    let _ = stats;
    assert_eq!(out.take(), Some(42));
}

#[test]
fn self_crash_stops_process_immediately() {
    let mut sim = Simulation::new(1);
    let node = sim.add_node("n");
    let flag = Arc::new(Mutex::new(false));
    let f = Arc::clone(&flag);
    sim.spawn_on(node, "suicidal", move |ctx| {
        ctx.crash_node(node);
        *f.lock() = true; // must never run
    });
    sim.run();
    assert!(!*flag.lock());
}

#[test]
fn killed_process_output_is_unavailable() {
    let mut sim = Simulation::new(1);
    let node = sim.add_node("n");
    let out = sim.spawn_on(node, "victim", |ctx| {
        ctx.sleep(Duration::from_secs(10));
        "done"
    });
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(MS);
        ctx.crash_node(node);
    });
    sim.run();
    assert_eq!(out.take(), None);
}

#[test]
fn message_to_dead_process_is_dropped_silently() {
    let mut sim = Simulation::new(1);
    let node = sim.add_node("n");
    let (tx, rx) = sim.channel::<u8>();
    sim.spawn_on(node, "victim", move |ctx| {
        let _ = rx.recv(ctx);
        unreachable!("victim must die blocked");
    });
    sim.spawn("chaos", move |ctx| {
        ctx.sleep(MS);
        ctx.crash_node(node);
        ctx.sleep(MS);
        tx.send(1); // nobody is listening; must not wedge or panic
    });
    sim.run();
}

#[test]
fn run_until_stops_at_deadline() {
    let mut sim = Simulation::new(1);
    let out = sim.spawn("p", |ctx| {
        ctx.sleep(Duration::from_millis(100));
        true
    });
    let stats = sim.run_until(SimTime::from_millis(10));
    assert_eq!(stats.end_time, SimTime::from_millis(10));
    assert!(!out.is_ready());
    sim.run();
    assert_eq!(out.take(), Some(true));
}

#[test]
fn run_with_limit_bounds_events() {
    let mut sim = Simulation::new(1);
    sim.spawn("looper", |ctx| loop {
        ctx.sleep(MS);
    });
    let stats = sim.run_with_limit(50);
    assert!(stats.events <= 50);
}

#[test]
#[should_panic(expected = "simulated process panicked")]
fn process_panic_propagates() {
    let mut sim = Simulation::new(1);
    sim.spawn("bad", |_ctx| panic!("boom"));
    sim.run();
}

#[test]
fn deterministic_across_runs() {
    fn run_once(seed: u64) -> Vec<(u64, u32)> {
        let mut sim = Simulation::new(seed);
        let log = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = sim.channel::<u32>();
        for i in 0..4u32 {
            let tx = tx.clone();
            let log = Arc::clone(&log);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..20 {
                    let jitter = ctx.with_rng(|r| r.range(100, 5_000));
                    ctx.sleep(Duration::from_micros(jitter));
                    tx.send(i);
                    log.lock().push((ctx.now().as_nanos(), i));
                }
            });
        }
        let sink = Arc::clone(&log);
        sim.spawn("sink", move |ctx| {
            for _ in 0..80 {
                let v = rx.recv(ctx);
                sink.lock().push((ctx.now().as_nanos(), 1000 + v));
            }
        });
        sim.run();
        let v = log.lock().clone();
        v
    }
    let a = run_once(1234);
    let b = run_once(1234);
    let c = run_once(4321);
    assert_eq!(a, b, "same seed must give identical traces");
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn rng_streams_differ_per_process() {
    let mut sim = Simulation::new(5);
    let a = sim.spawn("a", |ctx| ctx.with_rng(|r| r.next_u64()));
    let b = sim.spawn("b", |ctx| ctx.with_rng(|r| r.next_u64()));
    sim.run();
    assert_ne!(a.take(), b.take());
}

#[test]
fn trace_collection_works() {
    let mut sim = Simulation::new(1);
    sim.enable_trace();
    sim.spawn("p", |ctx| {
        ctx.sleep(MS);
        ctx.trace("hello");
    });
    sim.run();
    let trace = sim.take_trace();
    assert!(trace
        .iter()
        .any(|(t, m)| *t == SimTime::from_millis(1) && m.contains("hello")));
}

#[test]
fn many_processes_ping_pong() {
    // A ring of processes passing a token; stresses the handshake.
    let mut sim = Simulation::new(1);
    let n = 32;
    let mut channels = Vec::new();
    for _ in 0..n {
        channels.push(sim.channel::<u64>());
    }
    let txs: Vec<_> = channels.iter().map(|(tx, _)| tx.clone()).collect();
    let rxs: Vec<_> = channels.into_iter().map(|(_, rx)| rx).collect();
    let mut outs = Vec::new();
    for (i, rx) in rxs.into_iter().enumerate() {
        let next = txs[(i + 1) % n].clone();
        outs.push(sim.spawn(&format!("ring{i}"), move |ctx| {
            let mut hops = 0u64;
            loop {
                let token = rx.recv(ctx);
                hops += 1;
                if token == 0 {
                    return hops;
                }
                next.send(token - 1);
            }
        }));
    }
    txs[0].send(10 * n as u64); // token circulates 10 full laps
    sim.run_with_limit(100_000);
    // Whoever got token==0 returned; others are still blocked (fine).
    let finished: Vec<_> = outs.iter().filter_map(|o| o.take()).collect();
    assert_eq!(finished.len(), 1);
    assert_eq!(finished[0], 11); // 10 laps + the final zero token
}

//! Record/replay behavior of the simulation kernel: same-seed runs yield
//! identical traces (including across node crashes), replay of a recorded
//! run verifies cleanly, and a divergent re-run panics at the first
//! departing decision.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use amoeba_sim::{SimTrace, Simulation};

/// A small program with messaging, sleeping, RNG draws and a node crash —
/// enough moving parts to exercise every step tag.
fn busy_program(sim: &Simulation, crash: bool) {
    let node = sim.add_node("victim");
    let (tx, rx) = sim.channel::<u64>();
    for i in 0..4 {
        let tx = tx.clone();
        sim.spawn(&format!("producer-{i}"), move |ctx| {
            for round in 0..8u64 {
                let jitter = ctx.with_rng(|r| r.range(0, 500));
                ctx.sleep(Duration::from_micros(100 + jitter));
                tx.send(i * 100 + round);
            }
        });
    }
    sim.spawn_on(node, "doomed", |ctx| loop {
        ctx.sleep(Duration::from_micros(50));
        ctx.with_rng(|r| r.next_u64());
    });
    sim.spawn_on(node, "doomed-2", |ctx| loop {
        ctx.sleep(Duration::from_micros(70));
    });
    sim.spawn("consumer", move |ctx| {
        let mut got = 0u32;
        while got < 32 {
            if rx
                .recv_deadline(ctx, ctx.now() + Duration::from_millis(50))
                .is_some()
            {
                got += 1;
            } else {
                break;
            }
        }
        got
    });
    if crash {
        sim.spawn("chaos", move |ctx| {
            ctx.sleep(Duration::from_millis(1));
            ctx.crash_node(node);
            ctx.sleep(Duration::from_millis(1));
            ctx.revive_node(node);
        });
    }
}

fn record_once(seed: u64, crash: bool) -> SimTrace {
    let mut sim = Simulation::recording(seed);
    busy_program(&sim, crash);
    sim.run_until(amoeba_sim::SimTime::from_millis(20));
    sim.take_recording().expect("recording was enabled")
}

#[test]
fn same_seed_double_run_traces_are_identical() {
    let a = record_once(42, false);
    let b = record_once(42, false);
    assert!(!a.steps.is_empty());
    assert_eq!(a, b);
}

#[test]
fn traces_are_identical_across_node_crashes() {
    // Pins the sorted-reap fix: the crashed node hosts several processes
    // whose HashSet iteration order varies between runs.
    let a = record_once(7, true);
    let b = record_once(7, true);
    assert_eq!(a, b);
    // The crash and revive show up as fault steps.
    let faults: Vec<_> = a
        .steps
        .iter()
        .filter(|s| s.tag == amoeba_sim::StepTag::Fault)
        .collect();
    assert!(faults
        .iter()
        .any(|s| s.a == amoeba_sim::fault_codes::CRASH_NODE));
    assert!(faults
        .iter()
        .any(|s| s.a == amoeba_sim::fault_codes::REVIVE_NODE));
}

#[test]
fn trace_roundtrips_through_bytes() {
    let t = record_once(9, true);
    let bytes = t.to_bytes();
    assert_eq!(SimTrace::from_bytes(&bytes).unwrap(), t);
}

#[test]
fn replay_of_same_program_verifies_cleanly() {
    let trace = record_once(11, true);
    let mut sim = Simulation::replaying(&trace);
    busy_program(&sim, true);
    sim.run_until(amoeba_sim::SimTime::from_millis(20));
}

#[test]
fn replay_of_divergent_program_panics() {
    let trace = record_once(13, false);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut sim = Simulation::replaying(&trace);
        // Same seed, different program: one extra early process shifts
        // every subsequent scheduling decision.
        sim.spawn("intruder", |ctx| ctx.sleep(Duration::from_micros(1)));
        busy_program(&sim, false);
        sim.run_until(amoeba_sim::SimTime::from_millis(20));
    }));
    let err = result.expect_err("divergent replay must panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("replay divergence"), "unexpected panic: {msg}");
}

#[test]
fn recording_survives_a_process_panic() {
    // A runner wraps the simulation in catch_unwind and pulls the trace
    // from a handle afterwards — the failure-capture path explore uses.
    let mut handle_slot = None;
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut sim = Simulation::recording(17);
        handle_slot = Some(sim.handle());
        sim.spawn("bomb", |ctx| {
            ctx.sleep(Duration::from_millis(2));
            panic!("boom at 2ms");
        });
        sim.run();
    }));
    assert!(result.is_err());
    let trace = handle_slot
        .unwrap()
        .snapshot_recording()
        .expect("trace retrievable after panic");
    assert!(!trace.steps.is_empty());
    assert_eq!(trace.seed, 17);
}

//! Deployment harness: builds whole simulated deployments of each service
//! variant (Fig. 3's columns of directory + Bullet + disk servers), plus
//! client machines, crash/restart and partition controls.

use std::time::Duration;

use amoeba_bullet::{start_bullet_server, BulletClient, BulletStore};
use amoeba_disk::{DiskParams, DiskServer, Journal, Nvram, RawPartition, VDisk};
use amoeba_flip::{HostAddr, NetParams, Network, NodeStack, SegmentId, Topology};
use amoeba_group::{GroupConfig, GroupPeer};
use amoeba_rpc::{RpcClient, RpcNode};
use amoeba_sim::{Ctx, NodeId, Resource, Simulation, Spawn};

use amoeba_flip::Port;

use crate::cache::{start_invalidation_listener, CacheParams, DirCache};
use crate::client::DirClient;
use crate::config::{DirParams, ServiceConfig, StorageKind};
use crate::server_group::{start_group_server, GroupDirServer, GroupServerDeps};
use crate::server_lease::{start_lease_server, LeaseClient, LeaseServer, LeaseServerDeps};
use crate::server_lock::{start_lock_server, LockClient, LockServer, LockServerDeps};
use crate::server_nfs::{start_nfs_server, NfsServerDeps};
use crate::server_queue::{start_queue_server, QueueClient, QueueServer, QueueServerDeps};
use crate::server_registry::{
    start_registry_server, RegistryClient, RegistryServer, RegistryServerDeps,
};
use crate::server_rpc::{start_rpc_server, RpcServerDeps};

/// Which directory service implementation a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Triplicated, group communication, disk commit (the contribution).
    Group,
    /// Triplicated, group communication, NVRAM commit.
    GroupNvram,
    /// Duplicated RPC baseline.
    Rpc,
    /// Single-server NFS-like baseline.
    Nfs,
}

impl Variant {
    /// Number of directory servers for this variant.
    pub fn servers(self) -> usize {
        match self {
            Variant::Group | Variant::GroupNvram => 3,
            Variant::Rpc => 2,
            Variant::Nfs => 1,
        }
    }

    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Group => "Group(3)",
            Variant::GroupNvram => "Group+NVRAM(3)",
            Variant::Rpc => "RPC(2)",
            Variant::Nfs => "NFS-like(1)",
        }
    }
}

/// How a deployment maps onto an internetwork: the FLIP [`Topology`]
/// plus the placement of server columns and client machines on its
/// segments. The default is the degenerate flat LAN.
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    /// The segment/router wiring.
    pub topology: Topology,
    /// `column_segments[i % len]` is where column `i` attaches (empty =
    /// everything on segment 0).
    pub column_segments: Vec<SegmentId>,
    /// Per-shard placement: `shard_segments[s % len]` is where *every*
    /// column of shard `s` attaches. Empty (the default) falls back to
    /// `column_segments` indexed by within-shard column index — all
    /// shards overlaid on the same segments.
    pub shard_segments: Vec<SegmentId>,
    /// Where client machines attach.
    pub client_segment: SegmentId,
}

impl ClusterTopology {
    /// Everything on one Ethernet segment (the paper's testbed).
    pub fn flat() -> ClusterTopology {
        ClusterTopology {
            topology: Topology::single(),
            column_segments: Vec::new(),
            shard_segments: Vec::new(),
            client_segment: SegmentId(0),
        }
    }

    /// Two segments joined by one router: column 0 (the group creator,
    /// hence the sequencer) and the clients on `net-a`, every other
    /// column on `net-b` — the smallest deployment where replication
    /// traffic is store-and-forwarded.
    pub fn two_segment_split() -> ClusterTopology {
        ClusterTopology {
            topology: Topology::two_segments(),
            column_segments: vec![SegmentId(0), SegmentId(1)],
            shard_segments: Vec::new(),
            client_segment: SegmentId(0),
        }
    }

    /// A star of `shards` segments around one hub router, shard `s`'s
    /// whole column set on segment `net-s{s}`, clients on `net-s0`:
    /// each shard's replication multicasts are segment-local, and with
    /// the routers' multicast pruning they *stay* local instead of
    /// being flooded into every other shard's segment.
    pub fn shard_star(shards: usize) -> ClusterTopology {
        let shards = shards.max(1);
        let mut topology = Topology::new();
        let segs: Vec<SegmentId> = (0..shards)
            .map(|s| topology.add_segment(&format!("net-s{s}")))
            .collect();
        if shards > 1 {
            topology.add_router("hub", &segs);
        }
        ClusterTopology {
            topology,
            column_segments: Vec::new(),
            shard_segments: segs,
            client_segment: SegmentId(0),
        }
    }

    /// A chain of `segments` segments, each adjacent pair joined by its
    /// own router ([`Topology::chain`]), shard `s`'s whole column set on
    /// segment `s % segments`, clients on segment 0. The exploration
    /// harness's big multi-hop deployment: replication multicasts stay
    /// shard-local, but client traffic to far shards is
    /// store-and-forwarded across up to `segments − 1` routers.
    pub fn shard_chain(shards: usize, segments: usize) -> ClusterTopology {
        let shards = shards.max(1);
        let segments = segments.max(1);
        ClusterTopology {
            topology: Topology::chain(segments),
            column_segments: Vec::new(),
            shard_segments: (0..shards)
                .map(|s| SegmentId((s % segments) as u32))
                .collect(),
            client_segment: SegmentId(0),
        }
    }

    /// The segment column `i` attaches to (within-shard index, for
    /// deployments without per-shard placement).
    pub fn column_segment(&self, i: usize) -> SegmentId {
        if self.column_segments.is_empty() {
            SegmentId(0)
        } else {
            self.column_segments[i % self.column_segments.len()]
        }
    }

    /// The segment column `i` of shard `shard` attaches to.
    pub fn placement(&self, shard: usize, i: usize) -> SegmentId {
        if self.shard_segments.is_empty() {
            self.column_segment(i)
        } else {
            self.shard_segments[shard % self.shard_segments.len()]
        }
    }
}

/// Tunables of the load-driven shard rebalancer (see
/// [`ClusterParams::rebalancer`]): a background process that samples
/// every shard's [`amoeba_rsm::ReplicaStats`] once per `interval` and,
/// when the busiest shard's applied-op delta exceeds `skew_ratio` times
/// the idlest shard's (and at least `min_hot_ops`), greedily migrates
/// up to `moves_per_round` of the hot shard's hottest directories —
/// each to the then-coldest shard, and only while the move still
/// reduces the estimated imbalance (the anti-flap hysteresis) — every
/// move fenced by a lease so at most one coordinator ever migrates a
/// given directory.
#[derive(Debug, Clone, PartialEq)]
pub struct RebalancerParams {
    /// Sampling period.
    pub interval: Duration,
    /// Hot/cold applied-delta ratio that triggers a move.
    pub skew_ratio: f64,
    /// Minimum hot-shard ops per interval (don't shuffle an idle
    /// cluster).
    pub min_hot_ops: u64,
    /// Most directories migrated per sampling round.
    pub moves_per_round: usize,
    /// Migration-coordinator lease TTL in the lease service's logical
    /// ticks.
    pub lease_ttl: u64,
}

impl Default for RebalancerParams {
    fn default() -> Self {
        RebalancerParams {
            interval: Duration::from_secs(2),
            skew_ratio: 3.0,
            min_hot_ops: 20,
            moves_per_round: 2,
            lease_ttl: 64,
        }
    }
}

/// Everything that parameterizes a deployment.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Which implementation to run.
    pub variant: Variant,
    /// Network model.
    pub net: NetParams,
    /// Internetwork wiring and machine placement (flat by default).
    pub net_topology: ClusterTopology,
    /// Disk model.
    pub disk: DiskParams,
    /// Directory server parameters.
    pub dir: DirParams,
    /// Group communication parameters (resilience defaults to n−1).
    pub group: GroupConfig,
    /// Also run the replicated lock/registry service on the group
    /// variants' columns (a second consumer of the same `amoeba-rsm`
    /// driver, forming its own group over the shared kernels).
    pub lock_service: bool,
    /// Also run the replicated port-name registry on the group
    /// variants' columns (the third `amoeba-rsm` consumer; lets routed
    /// clients resolve service names to FLIP ports across segments).
    pub registry_service: bool,
    /// Also run the replicated FIFO queue service on the group
    /// variants' shard-0 columns (the fourth `amoeba-rsm` consumer;
    /// its group shares those machines' kernels with the directory
    /// shard's own group).
    pub queue_service: bool,
    /// Also run the replicated lease service on the group variants'
    /// shard-0 columns (the fifth `amoeba-rsm` consumer: TTL grants
    /// over logical time; the rebalancer's migration-coordinator
    /// fence).
    pub lease_service: bool,
    /// Run a load-driven shard rebalancer (group variants with more
    /// than one shard; requires [`lease_service`](Self::lease_service)).
    pub rebalancer: Option<RebalancerParams>,
    /// How many replica groups the directory service is sharded into
    /// (group variants only; each shard gets its own column set,
    /// object table and sequencer). `1` is the classic unsharded
    /// service, bit-identical to before sharding existed.
    pub shards: usize,
    /// Lease-fenced client-side directory caching (see
    /// [`crate::cache`]): every client machine built by
    /// [`Cluster::client`] gets a [`DirCache`] and an invalidation
    /// listener. `None` (the default) is the classic uncached client —
    /// behaviour-identical to before the cache existed.
    pub dir_cache: Option<CacheParams>,
    /// Simulation seed for workload randomness.
    pub seed: u64,
}

impl ClusterParams {
    /// The paper's configuration for a variant.
    pub fn paper(variant: Variant) -> ClusterParams {
        let mut dir = DirParams::default();
        match variant {
            Variant::GroupNvram => dir.storage = StorageKind::Nvram,
            Variant::Nfs => {
                // NFS lookup measured slightly slower (6 ms vs 5 ms).
                dir.read_cpu = Duration::from_micros(4_000);
            }
            _ => {}
        }
        ClusterParams {
            variant,
            net: NetParams::lan_10mbps(),
            net_topology: ClusterTopology::flat(),
            disk: DiskParams::wren_iv(),
            dir,
            group: GroupConfig::with_resilience(variant.servers().saturating_sub(1) as u32),
            lock_service: false,
            registry_service: false,
            queue_service: false,
            lease_service: false,
            rebalancer: None,
            shards: 1,
            dir_cache: None,
            seed: 0xD1_5C,
        }
    }

    /// The paper's configuration spread over a routed two-segment
    /// internetwork ([`ClusterTopology::two_segment_split`]).
    pub fn routed(variant: Variant) -> ClusterParams {
        ClusterParams {
            net_topology: ClusterTopology::two_segment_split(),
            ..Self::paper(variant)
        }
    }

    /// The paper's configuration with the directory service split into
    /// `shards` replica groups (each its own column set and sequencer)
    /// on one flat LAN.
    pub fn sharded(variant: Variant, shards: usize) -> ClusterParams {
        ClusterParams {
            shards: shards.max(1),
            ..Self::paper(variant)
        }
    }

    /// The effective shard count of this deployment: only the group
    /// variants shard; the RPC and NFS baselines always run one.
    pub fn effective_shards(&self) -> usize {
        match self.variant {
            Variant::Group | Variant::GroupNvram => self.shards.max(1),
            _ => 1,
        }
    }

    /// [`sharded`](Self::sharded) with each shard's columns on its own
    /// segment of a star internetwork
    /// ([`ClusterTopology::shard_star`]), so shard-local replication
    /// traffic stays off the other shards' wires.
    pub fn sharded_routed(variant: Variant, shards: usize) -> ClusterParams {
        ClusterParams {
            shards: shards.max(1),
            net_topology: ClusterTopology::shard_star(shards),
            ..Self::paper(variant)
        }
    }

    /// [`sharded`](Self::sharded) with the shards spread along a
    /// multi-hop chain of `segments` segments
    /// ([`ClusterTopology::shard_chain`]) — the exploration harness's
    /// big routed deployment.
    pub fn sharded_chain(variant: Variant, shards: usize, segments: usize) -> ClusterParams {
        ClusterParams {
            shards: shards.max(1),
            net_topology: ClusterTopology::shard_chain(shards, segments),
            ..Self::paper(variant)
        }
    }
}

/// One replica column: directory server + Bullet server + disk server on
/// one machine (the paper keeps them on separate machines sharing a disk;
/// co-locating them preserves both the failure unit and the RPC cost
/// between the dir and Bullet servers, which goes over the network either
/// way).
pub struct Column {
    /// Replica index within the shard's group.
    pub index: usize,
    /// The directory shard this column serves (always 0 unsharded).
    pub shard: usize,
    /// The machine.
    pub sim_node: NodeId,
    /// The machine's network identity.
    pub host: HostAddr,
    /// The machine's network stack (survives crash; rebind after).
    pub stack: NodeStack,
    /// The persistent platters.
    pub vdisk: VDisk,
    /// Persistent Bullet layout state.
    pub bullet_store: BulletStore,
    /// Persistent NVRAM device.
    pub nvram: Nvram,
    /// The directory server handle of the current incarnation (group
    /// variants only).
    pub server: Option<GroupDirServer>,
    /// The lock-service replica of the current incarnation (group
    /// variants with `lock_service` only).
    pub lock: Option<LockServer>,
    /// The registry replica of the current incarnation (group variants
    /// with `registry_service` only).
    pub registry: Option<RegistryServer>,
    /// The queue-service replica of the current incarnation (group
    /// variants with `queue_service`, shard-0 columns only).
    pub queue: Option<QueueServer>,
    /// The lease-service replica of the current incarnation (group
    /// variants with `lease_service`, shard-0 columns only).
    pub lease: Option<LeaseServer>,
}

impl std::fmt::Debug for Column {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Column(s{}.{})", self.shard, self.index)
    }
}

/// A running deployment of one service variant.
pub struct Cluster {
    /// The shared LAN.
    pub net: Network,
    /// The replica columns.
    pub columns: Vec<Column>,
    /// Deployment parameters.
    pub params: ClusterParams,
    next_client: u32,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cluster({}, {} columns)",
            self.params.variant.label(),
            self.columns.len()
        )
    }
}

/// Disk geometry shared by all variants.
const DISK_BLOCKS: u64 = 16_384;
const BLOCK_SIZE: usize = 4096;
/// Blocks 0..TABLE_BLOCKS form the raw partition; the rest is Bullet's
/// — less the journal region, when one is carved (see
/// [`journal_carve`]).
const TABLE_BLOCKS: u64 = 64;

/// Blocks reserved for the group log's journal region, carved between
/// the table partition and the Bullet store: only when the journaled
/// commit path is on *and* backed by the disk (an NVRAM-backed journal
/// leaves the disk layout bit-identical to the journal-off build, as
/// does journal-off itself).
fn journal_carve(params: &ClusterParams) -> u64 {
    if params.dir.journal && !params.dir.journal_nvram && params.dir.storage == StorageKind::Disk {
        params.disk.journal_blocks
    } else {
        0
    }
}

impl Cluster {
    /// Builds and starts a deployment on `sim`. Columns are laid out
    /// shard-major: `columns[shard * servers + i]` is replica `i` of
    /// shard `shard`, so the flat indices `0..servers` address shard 0
    /// exactly as they addressed the whole service before sharding.
    pub fn start(sim: &Simulation, params: ClusterParams) -> Cluster {
        assert!(
            params.dir_cache.is_none()
                || matches!(params.variant, Variant::Group | Variant::GroupNvram),
            "the client directory cache requires a group variant \
             (only the group initiators fence lease revocation)"
        );
        let net = Network::with_topology(
            sim.handle(),
            params.net.clone(),
            params.net_topology.topology.clone(),
            params.seed,
        );
        let n = params.variant.servers();
        let shards = params.effective_shards();
        // Name each machine's telemetry track up front; a no-op unless
        // the caller installed a collector on the simulation first.
        let tele = amoeba_telemetry::Telemetry::from_handle(&sim.handle());
        let mut columns = Vec::with_capacity(n * shards);
        for shard in 0..shards {
            for index in 0..n {
                let sim_node = sim.add_node(&format!("dir-column-s{shard}-{index}"));
                let stack = net.attach_to(params.net_topology.placement(shard, index));
                let host = stack.addr();
                tele.name_machine(u64::from(host.0), &format!("dir-s{shard}-{index}"));
                let vdisk = VDisk::new(DISK_BLOCKS, BLOCK_SIZE);
                let bullet_store = BulletStore::new(
                    DISK_BLOCKS - TABLE_BLOCKS - journal_carve(&params),
                    BLOCK_SIZE,
                    params.seed ^ ((shard * n + index) as u64) << 8,
                );
                let nvram = Nvram::paper_24k();
                let mut column = Column {
                    index,
                    shard,
                    sim_node,
                    host,
                    stack,
                    vdisk,
                    bullet_store,
                    nvram,
                    server: None,
                    lock: None,
                    registry: None,
                    queue: None,
                    lease: None,
                };
                start_column(sim, &params, &mut column);
                columns.push(column);
            }
        }
        if params.rebalancer.is_some() {
            start_rebalancer(sim, &params, &net, &columns);
        }
        Cluster {
            net,
            columns,
            params,
            next_client: 0,
        }
    }

    /// Creates a fresh client machine and returns a typed client for the
    /// service's public port.
    pub fn client(&mut self, sim: &Simulation) -> (DirClient, NodeId) {
        let (dir, rpc, node) = self.client_machine(sim);
        let _ = rpc;
        (dir, node)
    }

    /// Like [`client`](Cluster::client) but also returns the machine's raw
    /// RPC client, for talking to other services (e.g. Bullet) from the
    /// same machine.
    pub fn client_machine(&mut self, sim: &Simulation) -> (DirClient, RpcClient, NodeId) {
        let id = self.next_client;
        self.next_client += 1;
        let sim_node = sim.add_node(&format!("client-{id}"));
        let stack = self.net.attach_to(self.params.net_topology.client_segment);
        amoeba_telemetry::Telemetry::from_handle(&sim.handle())
            .name_machine(u64::from(stack.addr().0), &format!("client-{id}"));
        let rpc = RpcNode::start(sim, sim_node, stack);
        let rpc_client = RpcClient::new(&rpc);
        // Each client machine starts its root-placement round-robin
        // at its own index, so first creates spread across shards
        // instead of all landing on shard 0.
        let mut dir = DirClient::sharded(rpc_client.clone(), self.params.effective_shards())
            .with_create_offset(id as usize);
        if let Some(cp) = &self.params.dir_cache {
            // Each client machine gets its own callback port and a
            // renewal jitter derived from its index (the same idiom as
            // the create offset above).
            let cache = DirCache::new(cp.clone(), Port::from_name(&format!("dir-cache-cb-{id}")))
                .with_renew_jitter(id as usize);
            start_invalidation_listener(sim, sim_node, &rpc, &cache);
            dir = dir.with_cache(cache);
        }
        (dir, rpc_client, sim_node)
    }

    /// Crashes column `i`: machine dies, NIC goes silent; platters,
    /// Bullet layout state and NVRAM survive.
    pub fn crash_server(&self, sim: &Simulation, i: usize) {
        let c = &self.columns[i];
        self.net.set_down(c.host);
        sim.crash_node(c.sim_node);
    }

    /// Reboots a crashed column: fresh processes over the surviving
    /// persistent state; the server re-enters via the recovery protocol.
    pub fn restart_server(&mut self, sim: &Simulation, i: usize) {
        {
            let c = &self.columns[i];
            sim.revive_node(c.sim_node);
            self.net.set_up(c.host);
        }
        let params = self.params.clone();
        start_column(sim, &params, &mut self.columns[i]);
    }

    /// Destroys column `i`'s disk contents (a head crash) in addition to
    /// crashing it.
    pub fn destroy_server_disk(&self, sim: &Simulation, i: usize) {
        self.crash_server(sim, i);
        self.columns[i].vdisk.destroy_contents();
    }

    /// Puts column `i` alone on one side of a network partition.
    pub fn isolate_server(&self, i: usize) {
        self.net.isolate(&[self.columns[i].host]);
    }

    /// Heals any partition.
    pub fn heal(&self) {
        self.net.heal();
    }

    /// The group-server handle of column `i`'s current incarnation
    /// (flat index; `0..servers` is shard 0).
    ///
    /// # Panics
    ///
    /// Panics for non-group variants or a crashed column.
    pub fn group_server(&self, i: usize) -> &GroupDirServer {
        self.columns[i]
            .server
            .as_ref()
            .expect("column has no running group server")
    }

    /// Flat column index of replica `i` of shard `shard` (usable with
    /// [`crash_server`](Cluster::crash_server) and friends).
    pub fn column_index(&self, shard: usize, i: usize) -> usize {
        shard * self.params.variant.servers() + i
    }

    /// The group-server handle of replica `i` of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics for non-group variants or a crashed column.
    pub fn shard_server(&self, shard: usize, i: usize) -> &GroupDirServer {
        self.group_server(self.column_index(shard, i))
    }

    /// The lock-service replica of column `i`'s current incarnation.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was started with
    /// [`ClusterParams::lock_service`] on a group variant.
    pub fn lock_server(&self, i: usize) -> &LockServer {
        self.columns[i]
            .lock
            .as_ref()
            .expect("column has no running lock server")
    }

    /// Creates a fresh client machine with a lock-service client.
    pub fn lock_client(&mut self, sim: &Simulation) -> (LockClient, NodeId) {
        let id = self.next_client;
        self.next_client += 1;
        let sim_node = sim.add_node(&format!("lock-client-{id}"));
        let stack = self.net.attach_to(self.params.net_topology.client_segment);
        let rpc = RpcNode::start(sim, sim_node, stack);
        (LockClient::new(RpcClient::new(&rpc)), sim_node)
    }

    /// The registry replica of column `i`'s current incarnation.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was started with
    /// [`ClusterParams::registry_service`] on a group variant.
    pub fn registry_server(&self, i: usize) -> &RegistryServer {
        self.columns[i]
            .registry
            .as_ref()
            .expect("column has no running registry server")
    }

    /// Creates a fresh client machine with a registry client.
    pub fn registry_client(&mut self, sim: &Simulation) -> (RegistryClient, NodeId) {
        let id = self.next_client;
        self.next_client += 1;
        let sim_node = sim.add_node(&format!("registry-client-{id}"));
        let stack = self.net.attach_to(self.params.net_topology.client_segment);
        let rpc = RpcNode::start(sim, sim_node, stack);
        (RegistryClient::new(RpcClient::new(&rpc)), sim_node)
    }

    /// The queue-service replica of column `i`'s current incarnation.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was started with
    /// [`ClusterParams::queue_service`] on a group variant.
    pub fn queue_server(&self, i: usize) -> &QueueServer {
        self.columns[i]
            .queue
            .as_ref()
            .expect("column has no running queue server")
    }

    /// Creates a fresh client machine with a queue-service client.
    pub fn queue_client(&mut self, sim: &Simulation) -> (QueueClient, NodeId) {
        let id = self.next_client;
        self.next_client += 1;
        let sim_node = sim.add_node(&format!("queue-client-{id}"));
        let stack = self.net.attach_to(self.params.net_topology.client_segment);
        let rpc = RpcNode::start(sim, sim_node, stack);
        (QueueClient::new(RpcClient::new(&rpc)), sim_node)
    }

    /// The lease-service replica of column `i`'s current incarnation.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was started with
    /// [`ClusterParams::lease_service`] on a group variant.
    pub fn lease_server(&self, i: usize) -> &LeaseServer {
        self.columns[i]
            .lease
            .as_ref()
            .expect("column has no running lease server")
    }

    /// Creates a fresh client machine with a lease-service client.
    pub fn lease_client(&mut self, sim: &Simulation) -> (LeaseClient, NodeId) {
        let id = self.next_client;
        self.next_client += 1;
        let sim_node = sim.add_node(&format!("lease-client-{id}"));
        let stack = self.net.attach_to(self.params.net_topology.client_segment);
        let rpc = RpcNode::start(sim, sim_node, stack);
        (LeaseClient::new(RpcClient::new(&rpc)), sim_node)
    }
}

/// Starts (or restarts) all processes of one column.
fn start_column(spawner: &impl Spawn, params: &ClusterParams, column: &mut Column) {
    let n = params.variant.servers();
    let cfg = ServiceConfig::sharded(n, column.index, column.shard, params.effective_shards());
    let rpc = RpcNode::start(spawner, column.sim_node, column.stack.clone());
    let disk_srv = DiskServer::start(
        spawner,
        column.sim_node,
        column.vdisk.clone(),
        params.disk.clone(),
    );
    let partition = RawPartition::new(disk_srv.clone(), 0, TABLE_BLOCKS);
    // The group log's journal: carved from the disk right after the
    // table partition, or kept in NVRAM. Reconstructed cold on every
    // (re)start — `boot` recovers its cursor and surviving records.
    let journal = if params.dir.journal && params.dir.storage == StorageKind::Disk {
        if params.dir.journal_nvram {
            Some(Journal::nvram(column.nvram.clone()))
        } else {
            Some(Journal::disk(RawPartition::new(
                disk_srv.clone(),
                TABLE_BLOCKS,
                params.disk.journal_blocks,
            )))
        }
    } else {
        None
    };
    // The Bullet server of this column.
    let bullet_disk = DiskServer::start(
        spawner,
        column.sim_node,
        column.vdisk.clone(),
        params.disk.clone(),
    );
    let _ = bullet_disk; // one spindle: use the same server for fidelity
    start_bullet_server(
        spawner,
        column.sim_node,
        &rpc,
        cfg.bullet_port(column.index),
        disk_srv.clone(),
        column.bullet_store.clone(),
        TABLE_BLOCKS + journal_carve(params),
        2,
    );
    let bullet = BulletClient::new(RpcClient::new(&rpc), cfg.bullet_port(column.index));
    let cpu = Resource::new(spawner.sim_handle(), &format!("cpu-{}", column.index));
    match params.variant {
        Variant::Group | Variant::GroupNvram => {
            // One group kernel per machine, shared by every replicated
            // service on it (each service forms its own group port).
            let peer = GroupPeer::start(
                spawner,
                column.sim_node,
                column.stack.clone(),
                params.group.clone(),
            );
            let deps = GroupServerDeps {
                cfg,
                params: params.dir.clone(),
                sim_node: column.sim_node,
                rpc: rpc.clone(),
                peer: peer.clone(),
                bullet,
                partition,
                nvram: if params.dir.storage == StorageKind::Nvram {
                    Some(column.nvram.clone())
                } else {
                    None
                },
                journal,
                cpu,
            };
            column.server = Some(start_group_server(spawner, deps));
            // The auxiliary replicated services form their own groups
            // over shard 0's machines (more groups per GroupPeer; with
            // several shards they coexist with the shard's own group).
            if params.lock_service && column.shard == 0 {
                column.lock = Some(start_lock_server(
                    spawner,
                    LockServerDeps {
                        n,
                        me: column.index,
                        sim_node: column.sim_node,
                        rpc: rpc.clone(),
                        peer: peer.clone(),
                        threads: 2,
                    },
                ));
            }
            if params.registry_service && column.shard == 0 {
                column.registry = Some(start_registry_server(
                    spawner,
                    RegistryServerDeps {
                        n,
                        me: column.index,
                        sim_node: column.sim_node,
                        rpc: rpc.clone(),
                        peer: peer.clone(),
                        threads: 2,
                    },
                ));
            }
            if params.queue_service && column.shard == 0 {
                column.queue = Some(start_queue_server(
                    spawner,
                    QueueServerDeps {
                        n,
                        me: column.index,
                        sim_node: column.sim_node,
                        rpc: rpc.clone(),
                        peer: peer.clone(),
                        threads: 2,
                    },
                ));
            }
            if params.lease_service && column.shard == 0 {
                column.lease = Some(start_lease_server(
                    spawner,
                    LeaseServerDeps {
                        n,
                        me: column.index,
                        sim_node: column.sim_node,
                        rpc,
                        peer,
                        threads: 2,
                    },
                ));
            }
        }
        Variant::Rpc => {
            let deps = RpcServerDeps {
                cfg,
                params: params.dir.clone(),
                sim_node: column.sim_node,
                rpc,
                bullet,
                partition,
                cpu,
            };
            let _ = start_rpc_server(spawner, deps);
        }
        Variant::Nfs => {
            let deps = NfsServerDeps {
                cfg,
                params: params.dir.clone(),
                sim_node: column.sim_node,
                rpc,
                bullet,
                partition,
                cpu,
            };
            let _ = start_nfs_server(spawner, deps);
        }
    }
}

/// Starts the load-driven rebalancer on its own machine: it samples
/// every shard's replica-0 driver counters, and when the busiest
/// shard's per-interval applied delta dwarfs the idlest shard's, it
/// migrates the hot shard's hottest directories there — each move
/// fenced by a lease-service grant so at most one coordinator ever
/// migrates a given directory, even if several rebalancers (or manual
/// operators) run concurrently.
///
/// The per-shard handles are taken at start: a crashed-and-restarted
/// column freezes its handle's counters, which reads as "no load" —
/// the rebalancer idles rather than misbehaving.
fn start_rebalancer(sim: &Simulation, params: &ClusterParams, net: &Network, columns: &[Column]) {
    let rb = params.rebalancer.clone().expect("rebalancer configured");
    let shards = params.effective_shards();
    assert!(
        matches!(params.variant, Variant::Group | Variant::GroupNvram) && shards > 1,
        "the rebalancer needs a sharded group deployment"
    );
    assert!(
        params.lease_service,
        "the rebalancer needs the lease service (its migration-coordinator fence)"
    );
    let n = params.variant.servers();
    let servers: Vec<GroupDirServer> = (0..shards)
        .map(|s| columns[s * n].server.clone().expect("group server running"))
        .collect();
    let sim_node = sim.add_node("rebalancer");
    let stack = net.attach_to(params.net_topology.client_segment);
    let rpc = RpcNode::start(sim, sim_node, stack);
    let dir = DirClient::sharded(RpcClient::new(&rpc), shards);
    let lease = LeaseClient::new(RpcClient::new(&rpc));
    sim.spawn_boxed(
        Some(sim_node),
        "rebalancer",
        Box::new(move |ctx| rebalancer_loop(ctx, &rb, &servers, &dir, &lease)),
    );
}

fn rebalancer_loop(
    ctx: &Ctx,
    rb: &RebalancerParams,
    servers: &[GroupDirServer],
    dir: &DirClient,
    lease: &LeaseClient,
) {
    // Coordinator identity for lease grants.
    let me = ctx.with_rng(|r| r.next_u64()) | 1;
    let mut last: Vec<u64> = servers.iter().map(|s| s.replica_stats().applied).collect();
    loop {
        ctx.sleep(rb.interval);
        let applied: Vec<u64> = servers.iter().map(|s| s.replica_stats().applied).collect();
        let delta: Vec<u64> = applied
            .iter()
            .zip(&last)
            .map(|(a, l)| a.saturating_sub(*l))
            .collect();
        last = applied;
        let (hot, hot_d) = delta
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|(_, d)| *d)
            .expect("at least two shards");
        let cold_d = delta.iter().copied().min().expect("at least two shards");
        // Drain every shard's per-directory counters every round —
        // whether or not this round migrates — so the heat a move
        // decision sees is windowed to one interval, the same window
        // `delta` measures (accumulated heat against a one-interval
        // delta would make the hysteresis below veto real skew).
        let picks: Vec<Vec<(u64, u64)>> = servers
            .iter()
            .map(|s| s.hot_dirs(rb.moves_per_round))
            .collect();
        if hot_d < rb.min_hot_ops || (hot_d as f64) < rb.skew_ratio * (cold_d.max(1) as f64) {
            continue;
        }
        // Greedy drain with a running per-shard load estimate: each
        // move goes to the currently-coldest shard, and a directory
        // only moves if doing so actually reduces the imbalance (the
        // hot shard keeps more estimated load than the target ends up
        // with) — the hysteresis that stops the rebalancer flapping
        // directories back and forth around a balanced placement.
        let mut est = delta.clone();
        for &(object, heat) in &picks[hot] {
            let heat = heat.max(1);
            let (cold, cold_est) = est
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|(_, d)| *d)
                .expect("at least two shards");
            if cold == hot || est[hot].saturating_sub(heat) < cold_est + heat {
                break; // moving any further directory would not help
            }
            let Some(cap) = servers[hot].owner_cap(object) else {
                continue; // migrated (or deleted) since the sample
            };
            let name = format!("mig:{:x}:{}", cap.port.as_raw(), object);
            // The lease is the migration-coordinator fence: whoever
            // fails to grant leaves the directory to the holder.
            if !matches!(lease.grant(ctx, &name, me, rb.lease_ttl), Ok(Some(_))) {
                continue;
            }
            // Best effort: a failed round leaves only the retryable
            // intermediates the protocol guarantees; a later interval
            // (or another coordinator, after the lease expires) retries.
            if dir.migrate(ctx, cap, cold).is_ok() {
                est[hot] = est[hot].saturating_sub(heat);
                est[cold] += heat;
            }
            let _ = lease.release(ctx, &name, me);
        }
    }
}

//! Deployment harness: builds whole simulated deployments of each service
//! variant (Fig. 3's columns of directory + Bullet + disk servers), plus
//! client machines, crash/restart and partition controls.

use std::time::Duration;

use amoeba_bullet::{start_bullet_server, BulletClient, BulletStore};
use amoeba_disk::{DiskParams, DiskServer, Nvram, RawPartition, VDisk};
use amoeba_flip::{HostAddr, NetParams, Network, NodeStack, SegmentId, Topology};
use amoeba_group::{GroupConfig, GroupPeer};
use amoeba_rpc::{RpcClient, RpcNode};
use amoeba_sim::{NodeId, Resource, Simulation, Spawn};

use crate::client::DirClient;
use crate::config::{DirParams, ServiceConfig, StorageKind};
use crate::server_group::{start_group_server, GroupDirServer, GroupServerDeps};
use crate::server_lock::{start_lock_server, LockClient, LockServer, LockServerDeps};
use crate::server_nfs::{start_nfs_server, NfsServerDeps};
use crate::server_registry::{
    start_registry_server, RegistryClient, RegistryServer, RegistryServerDeps,
};
use crate::server_rpc::{start_rpc_server, RpcServerDeps};

/// Which directory service implementation a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Triplicated, group communication, disk commit (the contribution).
    Group,
    /// Triplicated, group communication, NVRAM commit.
    GroupNvram,
    /// Duplicated RPC baseline.
    Rpc,
    /// Single-server NFS-like baseline.
    Nfs,
}

impl Variant {
    /// Number of directory servers for this variant.
    pub fn servers(self) -> usize {
        match self {
            Variant::Group | Variant::GroupNvram => 3,
            Variant::Rpc => 2,
            Variant::Nfs => 1,
        }
    }

    /// Short label used in benchmark output.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Group => "Group(3)",
            Variant::GroupNvram => "Group+NVRAM(3)",
            Variant::Rpc => "RPC(2)",
            Variant::Nfs => "NFS-like(1)",
        }
    }
}

/// How a deployment maps onto an internetwork: the FLIP [`Topology`]
/// plus the placement of server columns and client machines on its
/// segments. The default is the degenerate flat LAN.
#[derive(Debug, Clone)]
pub struct ClusterTopology {
    /// The segment/router wiring.
    pub topology: Topology,
    /// `column_segments[i % len]` is where column `i` attaches (empty =
    /// everything on segment 0).
    pub column_segments: Vec<SegmentId>,
    /// Where client machines attach.
    pub client_segment: SegmentId,
}

impl ClusterTopology {
    /// Everything on one Ethernet segment (the paper's testbed).
    pub fn flat() -> ClusterTopology {
        ClusterTopology {
            topology: Topology::single(),
            column_segments: Vec::new(),
            client_segment: SegmentId(0),
        }
    }

    /// Two segments joined by one router: column 0 (the group creator,
    /// hence the sequencer) and the clients on `net-a`, every other
    /// column on `net-b` — the smallest deployment where replication
    /// traffic is store-and-forwarded.
    pub fn two_segment_split() -> ClusterTopology {
        ClusterTopology {
            topology: Topology::two_segments(),
            column_segments: vec![SegmentId(0), SegmentId(1)],
            client_segment: SegmentId(0),
        }
    }

    /// The segment column `i` attaches to.
    pub fn column_segment(&self, i: usize) -> SegmentId {
        if self.column_segments.is_empty() {
            SegmentId(0)
        } else {
            self.column_segments[i % self.column_segments.len()]
        }
    }
}

/// Everything that parameterizes a deployment.
#[derive(Debug, Clone)]
pub struct ClusterParams {
    /// Which implementation to run.
    pub variant: Variant,
    /// Network model.
    pub net: NetParams,
    /// Internetwork wiring and machine placement (flat by default).
    pub net_topology: ClusterTopology,
    /// Disk model.
    pub disk: DiskParams,
    /// Directory server parameters.
    pub dir: DirParams,
    /// Group communication parameters (resilience defaults to n−1).
    pub group: GroupConfig,
    /// Also run the replicated lock/registry service on the group
    /// variants' columns (a second consumer of the same `amoeba-rsm`
    /// driver, forming its own group over the shared kernels).
    pub lock_service: bool,
    /// Also run the replicated port-name registry on the group
    /// variants' columns (the third `amoeba-rsm` consumer; lets routed
    /// clients resolve service names to FLIP ports across segments).
    pub registry_service: bool,
    /// Simulation seed for workload randomness.
    pub seed: u64,
}

impl ClusterParams {
    /// The paper's configuration for a variant.
    pub fn paper(variant: Variant) -> ClusterParams {
        let mut dir = DirParams::default();
        match variant {
            Variant::GroupNvram => dir.storage = StorageKind::Nvram,
            Variant::Nfs => {
                // NFS lookup measured slightly slower (6 ms vs 5 ms).
                dir.read_cpu = Duration::from_micros(4_000);
            }
            _ => {}
        }
        ClusterParams {
            variant,
            net: NetParams::lan_10mbps(),
            net_topology: ClusterTopology::flat(),
            disk: DiskParams::wren_iv(),
            dir,
            group: GroupConfig::with_resilience(variant.servers().saturating_sub(1) as u32),
            lock_service: false,
            registry_service: false,
            seed: 0xD1_5C,
        }
    }

    /// The paper's configuration spread over a routed two-segment
    /// internetwork ([`ClusterTopology::two_segment_split`]).
    pub fn routed(variant: Variant) -> ClusterParams {
        ClusterParams {
            net_topology: ClusterTopology::two_segment_split(),
            ..Self::paper(variant)
        }
    }
}

/// One replica column: directory server + Bullet server + disk server on
/// one machine (the paper keeps them on separate machines sharing a disk;
/// co-locating them preserves both the failure unit and the RPC cost
/// between the dir and Bullet servers, which goes over the network either
/// way).
pub struct Column {
    /// Replica index.
    pub index: usize,
    /// The machine.
    pub sim_node: NodeId,
    /// The machine's network identity.
    pub host: HostAddr,
    /// The machine's network stack (survives crash; rebind after).
    pub stack: NodeStack,
    /// The persistent platters.
    pub vdisk: VDisk,
    /// Persistent Bullet layout state.
    pub bullet_store: BulletStore,
    /// Persistent NVRAM device.
    pub nvram: Nvram,
    /// The directory server handle of the current incarnation (group
    /// variants only).
    pub server: Option<GroupDirServer>,
    /// The lock-service replica of the current incarnation (group
    /// variants with `lock_service` only).
    pub lock: Option<LockServer>,
    /// The registry replica of the current incarnation (group variants
    /// with `registry_service` only).
    pub registry: Option<RegistryServer>,
}

impl std::fmt::Debug for Column {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Column({})", self.index)
    }
}

/// A running deployment of one service variant.
pub struct Cluster {
    /// The shared LAN.
    pub net: Network,
    /// The replica columns.
    pub columns: Vec<Column>,
    /// Deployment parameters.
    pub params: ClusterParams,
    next_client: u32,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Cluster({}, {} columns)",
            self.params.variant.label(),
            self.columns.len()
        )
    }
}

/// Disk geometry shared by all variants.
const DISK_BLOCKS: u64 = 16_384;
const BLOCK_SIZE: usize = 4096;
/// Blocks 0..TABLE_BLOCKS form the raw partition; the rest is Bullet's.
const TABLE_BLOCKS: u64 = 64;

impl Cluster {
    /// Builds and starts a deployment on `sim`.
    pub fn start(sim: &Simulation, params: ClusterParams) -> Cluster {
        let net = Network::with_topology(
            sim.handle(),
            params.net.clone(),
            params.net_topology.topology.clone(),
            params.seed,
        );
        let n = params.variant.servers();
        let mut columns = Vec::with_capacity(n);
        for index in 0..n {
            let sim_node = sim.add_node(&format!("dir-column-{index}"));
            let stack = net.attach_to(params.net_topology.column_segment(index));
            let host = stack.addr();
            let vdisk = VDisk::new(DISK_BLOCKS, BLOCK_SIZE);
            let bullet_store = BulletStore::new(
                DISK_BLOCKS - TABLE_BLOCKS,
                BLOCK_SIZE,
                params.seed ^ (index as u64) << 8,
            );
            let nvram = Nvram::paper_24k();
            let mut column = Column {
                index,
                sim_node,
                host,
                stack,
                vdisk,
                bullet_store,
                nvram,
                server: None,
                lock: None,
                registry: None,
            };
            start_column(sim, &params, &mut column);
            columns.push(column);
        }
        Cluster {
            net,
            columns,
            params,
            next_client: 0,
        }
    }

    /// Creates a fresh client machine and returns a typed client for the
    /// service's public port.
    pub fn client(&mut self, sim: &Simulation) -> (DirClient, NodeId) {
        let (dir, rpc, node) = self.client_machine(sim);
        let _ = rpc;
        (dir, node)
    }

    /// Like [`client`](Cluster::client) but also returns the machine's raw
    /// RPC client, for talking to other services (e.g. Bullet) from the
    /// same machine.
    pub fn client_machine(&mut self, sim: &Simulation) -> (DirClient, RpcClient, NodeId) {
        let id = self.next_client;
        self.next_client += 1;
        let sim_node = sim.add_node(&format!("client-{id}"));
        let stack = self.net.attach_to(self.params.net_topology.client_segment);
        let rpc = RpcNode::start(sim, sim_node, stack);
        let cfg = ServiceConfig::new(self.params.variant.servers(), 0);
        let rpc_client = RpcClient::new(&rpc);
        (
            DirClient::new(rpc_client.clone(), cfg.public_port),
            rpc_client,
            sim_node,
        )
    }

    /// Crashes column `i`: machine dies, NIC goes silent; platters,
    /// Bullet layout state and NVRAM survive.
    pub fn crash_server(&self, sim: &Simulation, i: usize) {
        let c = &self.columns[i];
        self.net.set_down(c.host);
        sim.crash_node(c.sim_node);
    }

    /// Reboots a crashed column: fresh processes over the surviving
    /// persistent state; the server re-enters via the recovery protocol.
    pub fn restart_server(&mut self, sim: &Simulation, i: usize) {
        {
            let c = &self.columns[i];
            sim.revive_node(c.sim_node);
            self.net.set_up(c.host);
        }
        let params = self.params.clone();
        start_column(sim, &params, &mut self.columns[i]);
    }

    /// Destroys column `i`'s disk contents (a head crash) in addition to
    /// crashing it.
    pub fn destroy_server_disk(&self, sim: &Simulation, i: usize) {
        self.crash_server(sim, i);
        self.columns[i].vdisk.destroy_contents();
    }

    /// Puts column `i` alone on one side of a network partition.
    pub fn isolate_server(&self, i: usize) {
        self.net.isolate(&[self.columns[i].host]);
    }

    /// Heals any partition.
    pub fn heal(&self) {
        self.net.heal();
    }

    /// The group-server handle of column `i`'s current incarnation.
    ///
    /// # Panics
    ///
    /// Panics for non-group variants or a crashed column.
    pub fn group_server(&self, i: usize) -> &GroupDirServer {
        self.columns[i]
            .server
            .as_ref()
            .expect("column has no running group server")
    }

    /// The lock-service replica of column `i`'s current incarnation.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was started with
    /// [`ClusterParams::lock_service`] on a group variant.
    pub fn lock_server(&self, i: usize) -> &LockServer {
        self.columns[i]
            .lock
            .as_ref()
            .expect("column has no running lock server")
    }

    /// Creates a fresh client machine with a lock-service client.
    pub fn lock_client(&mut self, sim: &Simulation) -> (LockClient, NodeId) {
        let id = self.next_client;
        self.next_client += 1;
        let sim_node = sim.add_node(&format!("lock-client-{id}"));
        let stack = self.net.attach_to(self.params.net_topology.client_segment);
        let rpc = RpcNode::start(sim, sim_node, stack);
        (LockClient::new(RpcClient::new(&rpc)), sim_node)
    }

    /// The registry replica of column `i`'s current incarnation.
    ///
    /// # Panics
    ///
    /// Panics unless the cluster was started with
    /// [`ClusterParams::registry_service`] on a group variant.
    pub fn registry_server(&self, i: usize) -> &RegistryServer {
        self.columns[i]
            .registry
            .as_ref()
            .expect("column has no running registry server")
    }

    /// Creates a fresh client machine with a registry client.
    pub fn registry_client(&mut self, sim: &Simulation) -> (RegistryClient, NodeId) {
        let id = self.next_client;
        self.next_client += 1;
        let sim_node = sim.add_node(&format!("registry-client-{id}"));
        let stack = self.net.attach_to(self.params.net_topology.client_segment);
        let rpc = RpcNode::start(sim, sim_node, stack);
        (RegistryClient::new(RpcClient::new(&rpc)), sim_node)
    }
}

/// Starts (or restarts) all processes of one column.
fn start_column(spawner: &impl Spawn, params: &ClusterParams, column: &mut Column) {
    let n = params.variant.servers();
    let cfg = ServiceConfig::new(n, column.index);
    let rpc = RpcNode::start(spawner, column.sim_node, column.stack.clone());
    let disk_srv = DiskServer::start(
        spawner,
        column.sim_node,
        column.vdisk.clone(),
        params.disk.clone(),
    );
    let partition = RawPartition::new(disk_srv.clone(), 0, TABLE_BLOCKS);
    // The Bullet server of this column.
    let bullet_disk = DiskServer::start(
        spawner,
        column.sim_node,
        column.vdisk.clone(),
        params.disk.clone(),
    );
    let _ = bullet_disk; // one spindle: use the same server for fidelity
    start_bullet_server(
        spawner,
        column.sim_node,
        &rpc,
        cfg.bullet_port(column.index),
        disk_srv.clone(),
        column.bullet_store.clone(),
        TABLE_BLOCKS,
        2,
    );
    let bullet = BulletClient::new(RpcClient::new(&rpc), cfg.bullet_port(column.index));
    let cpu = Resource::new(spawner.sim_handle(), &format!("cpu-{}", column.index));
    match params.variant {
        Variant::Group | Variant::GroupNvram => {
            // One group kernel per machine, shared by every replicated
            // service on it (each service forms its own group port).
            let peer = GroupPeer::start(
                spawner,
                column.sim_node,
                column.stack.clone(),
                params.group.clone(),
            );
            let deps = GroupServerDeps {
                cfg,
                params: params.dir.clone(),
                sim_node: column.sim_node,
                rpc: rpc.clone(),
                peer: peer.clone(),
                bullet,
                partition,
                nvram: if params.dir.storage == StorageKind::Nvram {
                    Some(column.nvram.clone())
                } else {
                    None
                },
                cpu,
            };
            column.server = Some(start_group_server(spawner, deps));
            if params.lock_service {
                column.lock = Some(start_lock_server(
                    spawner,
                    LockServerDeps {
                        n,
                        me: column.index,
                        sim_node: column.sim_node,
                        rpc: rpc.clone(),
                        peer: peer.clone(),
                        threads: 2,
                    },
                ));
            }
            if params.registry_service {
                column.registry = Some(start_registry_server(
                    spawner,
                    RegistryServerDeps {
                        n,
                        me: column.index,
                        sim_node: column.sim_node,
                        rpc,
                        peer,
                        threads: 2,
                    },
                ));
            }
        }
        Variant::Rpc => {
            let deps = RpcServerDeps {
                cfg,
                params: params.dir.clone(),
                sim_node: column.sim_node,
                rpc,
                bullet,
                partition,
                cpu,
            };
            let _ = start_rpc_server(spawner, deps);
        }
        Variant::Nfs => {
            let deps = NfsServerDeps {
                cfg,
                params: params.dir.clone(),
                sim_node: column.sim_node,
                rpc,
                bullet,
                partition,
                cpu,
            };
            let _ = start_nfs_server(spawner, deps);
        }
    }
}

//! The recovery protocol: paper Fig. 6, built on Skeen's
//! last-process-to-fail algorithm over *mourned sets*.
//!
//! A server runs this when it boots and whenever its group loses a
//! majority. Two conditions must hold before re-entering service (§3.2):
//!
//! 1. the new group has a **majority** (partition safety), and
//! 2. the new group contains the set of servers that **possibly performed
//!    the last update** (`last = all − mourned ⊆ newgroup`).
//!
//! The server with the highest sequence number then supplies the current
//! state. A `recovering` flag in the commit block guards the copy phase:
//! if a server crashes mid-copy, its next boot treats its own state as
//! worthless (sequence number zero).
//!
//! The optional improved rule (§3.2 end) lets a server that stayed up
//! (and therefore has the newest state) pair with a rebooted server even
//! when the strict last-set check fails.

use std::time::Duration;

use amoeba_bullet::FileCap;
use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::Payload;
use amoeba_group::{Group, GroupPeer};
use amoeba_rpc::{RpcClient, RpcServer};
use amoeba_sim::Ctx;

use crate::commit_block::CommitBlock;
use crate::config::{DirParams, ServiceConfig, StorageKind};
use crate::directory::Directory;
use crate::object_table::{ObjEntry, ObjectTable};
use crate::state::Applier;

/// Dependencies of one recovery run.
#[derive(Clone)]
pub(crate) struct RecoveryDeps {
    pub cfg: ServiceConfig,
    pub params: DirParams,
    pub peer: GroupPeer,
    pub rpc: RpcClient,
}

impl std::fmt::Debug for RecoveryDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RecoveryDeps(server {})", self.cfg.me)
    }
}

// ---------------------------------------------------------------------
// Internal server-to-server protocol.
// ---------------------------------------------------------------------

/// Server-to-server messages (recovery info exchange, state transfer).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum InternalMsg {
    /// "exchange info with server s": my mourned set and sequence number.
    Exchange {
        from: u32,
        mourned: Vec<bool>,
        update_seq: u64,
        stayed_up: bool,
    },
    ExchangeReply {
        mourned: Vec<bool>,
        update_seq: u64,
        stayed_up: bool,
    },
    /// "get copies of latest version of directories from s".
    Fetch,
    State {
        instance: u64,
        applied_group_seq: u64,
        update_seq: u64,
        commit_seq: u64,
        /// (object, check, dir bytes) for every live directory; the
        /// bytes are shared slices of the state-transfer wire buffer.
        entries: Vec<(u64, u64, Payload)>,
    },
    /// The server cannot answer right now.
    Busy,
}

const I_EXCHANGE: u8 = 1;
const I_EXCHANGE_REPLY: u8 = 2;
const I_FETCH: u8 = 3;
const I_STATE: u8 = 4;
const I_BUSY: u8 = 5;

fn write_bools(w: &mut WireWriter, v: &[bool]) {
    w.u8(v.len() as u8);
    for b in v {
        w.boolean(*b);
    }
}

fn read_bools(r: &mut WireReader<'_>) -> Result<Vec<bool>, DecodeError> {
    let n = r.u8("bools len")? as usize;
    if n > 64 {
        return Err(DecodeError::new("bools len"));
    }
    (0..n).map(|_| r.boolean("bool")).collect()
}

impl InternalMsg {
    pub fn encode(&self) -> Payload {
        let mut w = match self {
            // State transfer can be large: size the buffer up front so
            // the whole snapshot is marshalled in one allocation.
            InternalMsg::State { entries, .. } => WireWriter::with_capacity(
                1 + 8 * 4
                    + 4
                    + entries
                        .iter()
                        .map(|(_, _, bytes)| 8 + 8 + 4 + bytes.len())
                        .sum::<usize>(),
            ),
            _ => WireWriter::new(),
        };
        match self {
            InternalMsg::Exchange {
                from,
                mourned,
                update_seq,
                stayed_up,
            } => {
                w.u8(I_EXCHANGE).u32(*from);
                write_bools(&mut w, mourned);
                w.u64(*update_seq).boolean(*stayed_up);
            }
            InternalMsg::ExchangeReply {
                mourned,
                update_seq,
                stayed_up,
            } => {
                w.u8(I_EXCHANGE_REPLY);
                write_bools(&mut w, mourned);
                w.u64(*update_seq).boolean(*stayed_up);
            }
            InternalMsg::Fetch => {
                w.u8(I_FETCH);
            }
            InternalMsg::State {
                instance,
                applied_group_seq,
                update_seq,
                commit_seq,
                entries,
            } => {
                w.u8(I_STATE)
                    .u64(*instance)
                    .u64(*applied_group_seq)
                    .u64(*update_seq)
                    .u64(*commit_seq)
                    .u32(entries.len() as u32);
                for (object, check, bytes) in entries {
                    w.u64(*object).u64(*check).bytes(bytes);
                }
            }
            InternalMsg::Busy => {
                w.u8(I_BUSY);
            }
        }
        w.finish_payload()
    }

    pub fn decode(buf: &Payload) -> Result<InternalMsg, DecodeError> {
        let mut r = WireReader::of(buf);
        let m = match r.u8("internal tag")? {
            I_EXCHANGE => InternalMsg::Exchange {
                from: r.u32("from")?,
                mourned: read_bools(&mut r)?,
                update_seq: r.u64("update seq")?,
                stayed_up: r.boolean("stayed up")?,
            },
            I_EXCHANGE_REPLY => InternalMsg::ExchangeReply {
                mourned: read_bools(&mut r)?,
                update_seq: r.u64("update seq")?,
                stayed_up: r.boolean("stayed up")?,
            },
            I_FETCH => InternalMsg::Fetch,
            I_STATE => {
                let instance = r.u64("instance")?;
                let applied_group_seq = r.u64("applied")?;
                let update_seq = r.u64("update seq")?;
                let commit_seq = r.u64("commit seq")?;
                let n = r.u32("entries")? as usize;
                if n > 1_000_000 {
                    return Err(DecodeError::new("entries"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let object = r.u64("object")?;
                    let check = r.u64("check")?;
                    let bytes = r.payload("dir bytes")?;
                    entries.push((object, check, bytes));
                }
                InternalMsg::State {
                    instance,
                    applied_group_seq,
                    update_seq,
                    commit_seq,
                    entries,
                }
            }
            I_BUSY => InternalMsg::Busy,
            _ => return Err(DecodeError::new("internal tag")),
        };
        r.expect_end("internal trailing")?;
        Ok(m)
    }
}

/// The always-on internal RPC service of one server.
pub(crate) fn serve_internal(ctx: &Ctx, srv: &RpcServer, applier: &Applier, cfg: &ServiceConfig) {
    loop {
        let incoming = srv.getreq(ctx);
        let reply = match InternalMsg::decode(&incoming.data) {
            Ok(InternalMsg::Exchange { .. }) => {
                let shared = applier.shared.lock();
                InternalMsg::ExchangeReply {
                    mourned: mourned_bools(&shared.commit, cfg.n),
                    update_seq: shared.update_seq,
                    stayed_up: shared.stayed_up,
                }
            }
            Ok(InternalMsg::Fetch) => {
                // Snapshot atomically: every cached/live directory. Cold
                // cache entries are pulled from Bullet first.
                let objects: Vec<u64> = {
                    let shared = applier.shared.lock();
                    shared.table.iter().map(|(o, _)| o).collect()
                };
                for o in &objects {
                    let _ = applier.load_dir(ctx, *o);
                }
                let shared = applier.shared.lock();
                let entries: Vec<(u64, u64, Payload)> = shared
                    .table
                    .iter()
                    .filter_map(|(object, entry)| {
                        shared
                            .cache
                            .get(&object)
                            .map(|d| (object, entry.check, d.encode()))
                    })
                    .collect();
                let instance = shared.group.as_ref().map(|g| g.instance_id()).unwrap_or(0);
                InternalMsg::State {
                    instance,
                    applied_group_seq: shared.applied_group_seq,
                    update_seq: shared.update_seq,
                    commit_seq: shared.commit.seqno,
                    entries,
                }
            }
            _ => InternalMsg::Busy,
        };
        srv.putrep(&incoming, reply.encode());
    }
}

fn mourned_bools(commit: &CommitBlock, n: usize) -> Vec<bool> {
    let mut v = vec![false; n];
    for i in commit.mourned() {
        if i < n {
            v[i] = true;
        }
    }
    v
}

// ---------------------------------------------------------------------
// The Fig. 6 recovery loop.
// ---------------------------------------------------------------------

/// Runs recovery until this server may serve again; returns the joined
/// (or created) group.
pub(crate) fn run_recovery(ctx: &Ctx, applier: &Applier, deps: &RecoveryDeps) -> Group {
    let cfg = &deps.cfg;
    let params = &deps.params;

    // Boot-time state load (only when RAM state is cold).
    let cold = { applier.shared.lock().update_seq == 0 && !applier.shared.lock().stayed_up };
    if cold {
        load_local_state(ctx, applier, cfg);
    }

    loop {
        // "re-join server group or create it". Join patience grows with
        // the server index so concurrent cold boots converge on server
        // 0's instance instead of racing three singleton groups.
        let patience =
            params.recovery_join_timeout + params.recovery_join_timeout / 2 * (cfg.me as u32);
        let group = match deps.peer.join(ctx, cfg.group_port, cfg.me as u64, patience) {
            Ok(g) => {
                ctx.trace(format!(
                    "recovery[{}]: joined instance {}",
                    cfg.me,
                    g.instance_id()
                ));
                g
            }
            Err(_) => {
                let g = deps.peer.create(cfg.group_port, cfg.me as u64);
                ctx.trace(format!(
                    "recovery[{}]: created instance {}",
                    cfg.me,
                    g.instance_id()
                ));
                g
            }
        };

        // "while (minority && !timeout) GetInfoGroup(&group_state)".
        let deadline = ctx.now() + params.recovery_majority_timeout;
        let majority = loop {
            match group.info() {
                Ok(info) if info.view.len() >= cfg.majority() && !info.failed => break true,
                Ok(_) => {}
                Err(_) => break false,
            }
            if ctx.now() >= deadline {
                break false;
            }
            ctx.sleep(Duration::from_millis(50));
        };
        if !majority {
            // "if (minority) try again; leave group and retry".
            ctx.trace(format!("recovery[{}]: no majority, retrying", cfg.me));
            group.leave(ctx);
            retry_sleep(ctx, params);
            continue;
        }
        ctx.trace(format!("recovery[{}]: majority reached", cfg.me));

        // Drain membership events so the view is settled for us.
        while group.pending_events() > 0 {
            let _ = group.recv_timeout(ctx, Duration::from_millis(1));
        }

        // Skeen's algorithm: exchange mourned sets and seqnos. If the
        // last set is not yet covered, Fig. 6 "tries again, waiting for
        // servers from the last set to join the group" — so retry the
        // exchange within the same group for a while before giving up
        // and rebuilding from scratch.
        let skeen_deadline = ctx.now() + params.recovery_majority_timeout * 2;
        let outcome = loop {
            let (my_mourned, my_seq, my_stayed) = {
                let shared = applier.shared.lock();
                (
                    mourned_bools(&shared.commit, cfg.n),
                    shared.update_seq,
                    shared.stayed_up,
                )
            };
            let mut mourned = my_mourned;
            let mut newgroup = vec![false; cfg.n];
            newgroup[cfg.me] = true;
            let mut seqs: Vec<Option<(u64, bool)>> = vec![None; cfg.n];
            seqs[cfg.me] = Some((my_seq, my_stayed));

            let members: Vec<usize> = match group.info() {
                Ok(i) if !i.failed => i
                    .view
                    .members
                    .iter()
                    .map(|m| m.tag as usize)
                    .filter(|t| *t != cfg.me && *t < cfg.n)
                    .collect(),
                _ => break None,
            };
            for s in members {
                let req = InternalMsg::Exchange {
                    from: cfg.me as u32,
                    mourned: mourned.clone(),
                    update_seq: my_seq,
                    stayed_up: my_stayed,
                };
                match deps.rpc.trans(ctx, cfg.internal_port(s), req.encode()) {
                    Ok(bytes) => {
                        if let Ok(InternalMsg::ExchangeReply {
                            mourned: theirs,
                            update_seq,
                            stayed_up,
                        }) = InternalMsg::decode(&bytes)
                        {
                            // "newgroup[s] = 1; SequenceNo[s] = SeqNr;
                            //  mourned set += received mourned set".
                            newgroup[s] = true;
                            seqs[s] = Some((update_seq, stayed_up));
                            for (i, m) in theirs.iter().enumerate() {
                                if *m && i < cfg.n {
                                    mourned[i] = true;
                                }
                            }
                        }
                    }
                    Err(_) => { /* unreachable member: not added */ }
                }
            }

            // A server we actually reached is evidently not dead: it must
            // not remain mourned (a mourned vector records who crashed
            // *before* its owner, not who is dead now).
            for (i, in_group) in newgroup.iter().enumerate() {
                if *in_group {
                    mourned[i] = false;
                }
            }

            // "last = all servers − mourned set;
            //  if (last is not subset of new group) try again".
            let last: Vec<usize> = (0..cfg.n).filter(|i| !mourned[*i]).collect();
            let last_ok = last.iter().all(|i| newgroup[*i]);
            let improved_ok = if last_ok {
                true
            } else if params.improved_recovery {
                // §3.2: a server that stayed up holds every update the
                // missing servers could have performed, provided it has
                // the highest sequence number among the assembled group.
                let max_seq = seqs.iter().flatten().map(|(s, _)| *s).max().unwrap_or(0);
                seqs.iter()
                    .flatten()
                    .any(|(s, stayed)| *stayed && *s >= max_seq)
            } else {
                false
            };
            if improved_ok {
                break Some((newgroup, seqs));
            }
            ctx.trace(format!(
                "recovery[{}]: last set {:?} not in newgroup {:?}; waiting",
                cfg.me, last, newgroup
            ));
            if ctx.now() >= skeen_deadline {
                break None;
            }
            // Wait for last-set servers to join this group, then retry.
            ctx.sleep(Duration::from_millis(150));
            while group.pending_events() > 0 {
                let _ = group.recv_timeout(ctx, Duration::from_millis(1));
            }
        };
        let (newgroup, seqs) = match outcome {
            Some(v) => v,
            None => {
                group.leave(ctx);
                retry_sleep(ctx, params);
                continue;
            }
        };

        // "s = HighestSeq(SequenceNo); get copies from s".
        let my_seq = seqs[cfg.me].map(|(s, _)| s).unwrap_or(0);
        let (best, best_seq) = seqs
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|(seq, _)| (i, seq)))
            .max_by_key(|(i, seq)| (*seq, usize::MAX - *i))
            .expect("at least ourselves");
        if best != cfg.me && best_seq > my_seq {
            // Mark the copy phase in the commit block first.
            {
                let mut shared = applier.shared.lock();
                shared.commit.recovering = true;
                let cb = shared.commit.clone();
                drop(shared);
                cb.write(&applier.partition, ctx);
            }
            if !fetch_state(ctx, applier, deps, best, group.instance_id()) {
                group.leave(ctx);
                retry_sleep(ctx, params);
                continue;
            }
        } else {
            // We are (among) the most current: align the applied cursor
            // with the new instance's order so far.
            let mut shared = applier.shared.lock();
            shared.applied_group_seq = group
                .info()
                .map(|i| i.highest_contiguous)
                .unwrap_or(shared.applied_group_seq);
        }

        ctx.trace(format!("recovery[{}]: entering normal operation", cfg.me));
        // "write commit block; enter normal operation".
        {
            let mut shared = applier.shared.lock();
            shared.commit.config = newgroup;
            shared.commit.recovering = false;
            let cb = shared.commit.clone();
            drop(shared);
            cb.write(&applier.partition, ctx);
        }
        return group;
    }
}

fn retry_sleep(ctx: &Ctx, params: &DirParams) {
    let jitter = params.recovery_retry_jitter.as_nanos() as u64;
    let d = ctx.with_rng(|r| r.next_below(jitter.max(1)));
    ctx.sleep(Duration::from_millis(50) + Duration::from_nanos(d));
}

/// Loads commit block, object table and NVRAM after a reboot.
fn load_local_state(ctx: &Ctx, applier: &Applier, cfg: &ServiceConfig) {
    let commit = CommitBlock::read(&applier.partition, ctx, cfg.n)
        .unwrap_or_else(|| CommitBlock::initial(cfg.n));
    let table = ObjectTable::load(applier.partition.clone(), ctx);
    let table_seq = table.max_seqno();
    {
        let mut shared = applier.shared.lock();
        shared.table = table;
        if commit.recovering {
            // Crashed during a previous recovery's copy phase: state may
            // mix old and new directories — worthless (§3).
            shared.update_seq = 0;
        } else {
            shared.update_seq = table_seq.max(commit.seqno);
        }
        shared.commit = commit;
        shared.commit.recovering = false;
    }
    // NVRAM survives the crash; replay pending records into RAM.
    if applier.storage == StorageKind::Nvram {
        let replayed = applier.replay_nvram(ctx);
        let mut shared = applier.shared.lock();
        shared.update_seq = shared.update_seq.max(replayed);
    }
}

/// Fetches the full state from server `best` and installs it.
fn fetch_state(
    ctx: &Ctx,
    applier: &Applier,
    deps: &RecoveryDeps,
    best: usize,
    my_instance: u64,
) -> bool {
    let cfg = &deps.cfg;
    let bytes = match deps
        .rpc
        .trans(ctx, cfg.internal_port(best), InternalMsg::Fetch.encode())
    {
        Ok(b) => b,
        Err(_) => return false,
    };
    let (instance, applied, update_seq, commit_seq, entries) = match InternalMsg::decode(&bytes) {
        Ok(InternalMsg::State {
            instance,
            applied_group_seq,
            update_seq,
            commit_seq,
            entries,
        }) => (instance, applied_group_seq, update_seq, commit_seq, entries),
        _ => return false,
    };

    // Install: replace table + cache wholesale, then persist everything.
    let mut installed: Vec<(u64, Directory)> = Vec::with_capacity(entries.len());
    for (object, check, dir_bytes) in &entries {
        match Directory::decode(dir_bytes) {
            Ok(dir) => {
                installed.push((*object, dir));
                let _ = check;
            }
            Err(_) => return false,
        }
    }
    {
        let mut shared = applier.shared.lock();
        // Wipe stale state.
        let stale: Vec<u64> = shared.table.iter().map(|(o, _)| o).collect();
        for o in stale {
            shared.table.clear(o);
        }
        shared.cache.clear();
        for ((object, check, _), (_, dir)) in entries.iter().zip(&installed) {
            shared.table.set(
                *object,
                ObjEntry {
                    file_cap: FileCap::NULL, // created below
                    seqno: dir.seqno,
                    check: *check,
                },
            );
            shared.cache.insert(*object, dir.clone());
        }
        shared.update_seq = update_seq;
        shared.commit.seqno = commit_seq;
        // Only skip replay of already-covered ops when the snapshot is
        // from the instance we joined.
        shared.applied_group_seq = if instance == my_instance { applied } else { 0 };
    }
    // Persist every fetched directory locally (bullet file + table entry).
    for (object, dir) in installed {
        applier_store(ctx, applier, object, &dir);
    }
    true
}

fn applier_store(ctx: &Ctx, applier: &Applier, object: u64, dir: &Directory) {
    // Reuse the disk path: during recovery we always persist to disk
    // (NVRAM holds only post-recovery updates).
    let new_file = match applier.bullet.create(ctx, dir.encode()) {
        Ok(c) => c,
        Err(_) => return,
    };
    let waiter = {
        let mut shared = applier.shared.lock();
        match shared.table.get(object) {
            Some(mut entry) => {
                entry.file_cap = new_file;
                shared.table.set(object, entry);
                shared.table.flush_begin(object)
            }
            None => None,
        }
    };
    if let Some(w) = waiter {
        w.recv(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn internal_msgs_round_trip() {
        let msgs = vec![
            InternalMsg::Exchange {
                from: 1,
                mourned: vec![false, true, false],
                update_seq: 9,
                stayed_up: true,
            },
            InternalMsg::ExchangeReply {
                mourned: vec![true, false],
                update_seq: 3,
                stayed_up: false,
            },
            InternalMsg::Fetch,
            InternalMsg::State {
                instance: 7,
                applied_group_seq: 5,
                update_seq: 11,
                commit_seq: 2,
                entries: vec![(1, 99, vec![1, 2, 3].into())],
            },
            InternalMsg::Busy,
        ];
        for m in msgs {
            assert_eq!(InternalMsg::decode(&m.encode()).unwrap(), m);
        }
    }

    #[test]
    fn decode_garbage_fails_cleanly() {
        assert!(InternalMsg::decode(&Payload::from(vec![77])).is_err());
        assert!(InternalMsg::decode(&Payload::empty()).is_err());
    }
}

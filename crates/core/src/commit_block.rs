//! The commit block (paper Fig. 4): block 0 of the raw partition.
//!
//! Holds the **configuration vector** (which servers were up in the last
//! configuration this server belonged to, with a majority), the **sequence
//! number** (only updated when a directory is deleted — the case where the
//! update would otherwise leave no trace, §3), the **recovering** flag
//! (set while a multi-object flush or a recovery copy is in progress),
//! and the **epoch**: a generation counter that disambiguates *why* the
//! flag was set. A guarded group-commit flush keeps the current epoch
//! (> 0) while it runs and bumps it on completion; a recovery copy
//! zeroes it. So at boot, `recovering && epoch == 0` means the state
//! mixes two replicas' histories mid-install — worthless, §3's rule —
//! while `recovering && epoch > 0` means the crash hit a flush of
//! *committed, ordered* ops: each stored object's state is
//! individually consistent, so the durable best-effort subset can be
//! salvaged rather than voided, which is what saves the service from
//! total data loss when every replica dies in the same flush window
//! (at the cost of possibly losing the unstored remainder of that one
//! batch — see `DirectoryStateMachine::boot`).

use amoeba_disk::RawPartition;
use amoeba_flip::wire::{WireReader, WireWriter};
use amoeba_sim::Ctx;

/// In-memory image of the commit block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitBlock {
    /// `config[i]` is true iff server *i* was up in the last configuration
    /// (with a majority) this server was part of.
    pub config: Vec<bool>,
    /// Sequence number recorded on directory deletion.
    pub seqno: u64,
    /// Set while recovery is in progress.
    pub recovering: bool,
    /// Flush-window generation: positive while this replica's state is
    /// its own history (bumped after every guarded flush), zero from the
    /// moment a recovery copy starts until the replica re-enters
    /// service. See the module docs for the boot-time decision table.
    pub epoch: u64,
}

const MAGIC: u32 = 0x4449_5243; // "DIRC"

impl CommitBlock {
    /// A fresh commit block for an `n`-server service where all servers
    /// are presumed up.
    pub fn initial(n: usize) -> CommitBlock {
        CommitBlock {
            config: vec![true; n],
            seqno: 0,
            recovering: false,
            epoch: 1,
        }
    }

    /// Serializes to block bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u32(MAGIC);
        w.u8(self.config.len() as u8);
        for b in &self.config {
            w.boolean(*b);
        }
        w.u64(self.seqno);
        w.boolean(self.recovering);
        w.u64(self.epoch);
        w.finish()
    }

    /// Parses block bytes; `None` for an uninitialized (all-zero or
    /// garbage) block — the state of a brand-new server.
    pub fn decode(buf: &[u8], n: usize) -> Option<CommitBlock> {
        let mut r = WireReader::new(buf);
        if r.u32("magic").ok()? != MAGIC {
            return None;
        }
        let len = r.u8("config len").ok()? as usize;
        if len != n {
            return None;
        }
        let mut config = Vec::with_capacity(len);
        for _ in 0..len {
            config.push(r.boolean("config bit").ok()?);
        }
        let seqno = r.u64("seqno").ok()?;
        let recovering = r.boolean("recovering").ok()?;
        let epoch = r.u64("epoch").ok()?;
        Some(CommitBlock {
            config,
            seqno,
            recovering,
            epoch,
        })
    }

    /// Reads the commit block from partition block 0.
    pub fn read(partition: &RawPartition, ctx: &Ctx, n: usize) -> Option<CommitBlock> {
        let bytes = partition.read(ctx, 0);
        Self::decode(&bytes, n)
    }

    /// Writes the commit block to partition block 0 (one disk op).
    pub fn write(&self, partition: &RawPartition, ctx: &Ctx) {
        partition.write(ctx, 0, self.encode());
    }

    /// Servers this vector says crashed before us (the initial *mourned
    /// set* of Skeen's algorithm, Fig. 6).
    pub fn mourned(&self) -> Vec<usize> {
        self.config
            .iter()
            .enumerate()
            .filter(|(_, up)| !**up)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let cb = CommitBlock {
            config: vec![true, false, true],
            seqno: 99,
            recovering: true,
            epoch: 17,
        };
        let bytes = cb.encode();
        assert_eq!(CommitBlock::decode(&bytes, 3), Some(cb));
    }

    #[test]
    fn initial_epoch_is_positive() {
        // Epoch 0 is reserved for "mid recovery copy"; a fresh server's
        // clean state must never be mistaken for one.
        assert_eq!(CommitBlock::initial(3).epoch, 1);
    }

    #[test]
    fn zero_block_decodes_to_none() {
        assert_eq!(CommitBlock::decode(&[0u8; 64], 3), None);
        assert_eq!(CommitBlock::decode(&[], 3), None);
    }

    #[test]
    fn wrong_server_count_rejected() {
        let cb = CommitBlock::initial(3);
        assert_eq!(CommitBlock::decode(&cb.encode(), 2), None);
    }

    #[test]
    fn mourned_lists_down_servers() {
        let cb = CommitBlock {
            config: vec![true, false, false],
            seqno: 0,
            recovering: false,
            epoch: 1,
        };
        assert_eq!(cb.mourned(), vec![1, 2]);
        assert!(CommitBlock::initial(3).mourned().is_empty());
    }
}

//! One unified, serializable snapshot of a running deployment.
//!
//! Every layer of the stack keeps its own counters — [`NetStats`] on the
//! medium, [`GroupStats`] in each group engine, [`ReplicaStats`] in each
//! RSM driver, [`DiskStats`] on each platter, [`CacheStats`] in each
//! client cache — and before this module every consumer (the benches,
//! the explorer's probe) re-invented its own ad-hoc aggregation over a
//! subset of them. [`ClusterReport::collect`] walks a [`Cluster`] once
//! and snapshots everything per machine, together with the telemetry
//! layer's metrics registry (latency histograms, counters, gauges) when
//! one is installed on the simulation.
//!
//! The report is plain data plus a hand-rolled JSON writer
//! ([`ClusterReport::to_json`]) in the same dependency-free style as the
//! bench summaries; nothing here touches the simulation clock.

use amoeba_flip::NetStats;
use amoeba_group::GroupStats;
use amoeba_rsm::ReplicaStats;
use amoeba_sim::SimHandle;
use amoeba_telemetry::{MetricsSnapshot, Telemetry};

use crate::cache::CacheStats;
use crate::cluster::Cluster;
use amoeba_disk::DiskStats;

/// Per-machine slice of a [`ClusterReport`].
#[derive(Debug, Clone, Default)]
pub struct MachineReport {
    /// The machine's display name (e.g. `dir-s0-1`).
    pub name: String,
    /// The machine's host address.
    pub host: u32,
    /// Directory shard the column serves.
    pub shard: usize,
    /// Replica index within the shard.
    pub index: usize,
    /// RSM driver counters, when a directory server is running.
    pub replica: Option<ReplicaStats>,
    /// Group-engine counters, when the replica is in a group.
    pub group: Option<GroupStats>,
    /// The machine's platter counters.
    pub disk: DiskStats,
}

/// One cluster-wide snapshot: the medium, every column, every observed
/// client cache, and the telemetry metrics registry.
#[derive(Debug, Clone, Default)]
pub struct ClusterReport {
    /// Cumulative medium counters.
    pub net: NetStats,
    /// One entry per replica column, in column order.
    pub machines: Vec<MachineReport>,
    /// Client cache counters, as `(machine_name, stats)` — appended by
    /// the caller via [`add_client`](ClusterReport::add_client) (the
    /// cluster does not keep client handles).
    pub clients: Vec<(String, CacheStats)>,
    /// Latency histograms / counters / gauges from the telemetry layer
    /// (empty when telemetry is disabled).
    pub metrics: MetricsSnapshot,
}

impl ClusterReport {
    /// Snapshots `cluster` and, when telemetry is installed on the
    /// simulation behind `handle`, its metrics registry.
    pub fn collect(cluster: &Cluster, handle: &SimHandle) -> ClusterReport {
        let tele = Telemetry::from_handle(handle);
        let machines = cluster
            .columns
            .iter()
            .map(|c| MachineReport {
                name: format!("dir-s{}-{}", c.shard, c.index),
                host: c.host.0,
                shard: c.shard,
                index: c.index,
                replica: c.server.as_ref().map(|s| s.replica_stats()),
                group: c.server.as_ref().and_then(|s| s.group_stats()),
                disk: c.vdisk.stats(),
            })
            .collect();
        ClusterReport {
            net: cluster.net.stats(),
            machines,
            clients: Vec::new(),
            metrics: tele.metrics(),
        }
    }

    /// Appends one client machine's cache counters.
    pub fn add_client(&mut self, name: &str, stats: CacheStats) {
        self.clients.push((name.to_owned(), stats));
    }

    /// Sums of the headline per-machine counters:
    /// `(ops_applied, group_sends, disk_writes)`.
    pub fn totals(&self) -> (u64, u64, u64) {
        let mut applied = 0;
        let mut sends = 0;
        let mut writes = 0;
        for m in &self.machines {
            if let Some(r) = &m.replica {
                applied += r.applied;
            }
            if let Some(g) = &m.group {
                sends += g.sends;
            }
            writes += m.disk.writes;
        }
        (applied, sends, writes)
    }

    /// Serializes the whole report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"net\": {");
        s.push_str(&format!(
            "\"packets_sent\": {}, \"deliveries\": {}, \"bytes_sent\": {}, \
             \"packets_forwarded\": {}, \"dropped_loss\": {}",
            self.net.packets_sent,
            self.net.deliveries,
            self.net.bytes_sent,
            self.net.packets_forwarded,
            self.net.dropped_loss
        ));
        s.push_str("},\n  \"machines\": [");
        for (i, m) in self.machines.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"name\": \"{}\", \"host\": {}, \"shard\": {}, \"index\": {}",
                m.name, m.host, m.shard, m.index
            ));
            if let Some(r) = &m.replica {
                s.push_str(&format!(
                    ", \"submitted\": {}, \"applied\": {}, \"batches\": {}, \"recoveries\": {}",
                    r.submitted, r.applied, r.batches, r.recoveries
                ));
            }
            if let Some(g) = &m.group {
                s.push_str(&format!(
                    ", \"group_sends\": {}, \"group_applied\": {}, \"retrans_served\": {}",
                    g.sends, g.applied, g.retrans_served
                ));
            }
            s.push_str(&format!(
                ", \"disk_reads\": {}, \"disk_writes\": {}}}",
                m.disk.reads, m.disk.writes
            ));
        }
        s.push_str("],\n  \"clients\": [");
        for (i, (name, c)) in self.clients.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"name\": \"{name}\", \"hits\": {}, \"misses\": {}, \
                 \"invalidations\": {}, \"renewals\": {}, \"stale_rejects\": {}, \
                 \"renewals_saved\": {}}}",
                c.hits, c.misses, c.invalidations, c.renewals, c.stale_rejects, c.renewals_saved
            ));
        }
        s.push_str("],\n  \"latency_ms\": {");
        let mut first = true;
        for (family, h) in &self.metrics.hists {
            if h.count == 0 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!(
                "\"{family}\": {{\"count\": {}, \"p50\": {:.3}, \"p95\": {:.3}, \
                 \"p99\": {:.3}, \"max\": {:.3}}}",
                h.count,
                h.percentile(50.0) as f64 / 1e3,
                h.percentile(95.0) as f64 / 1e3,
                h.percentile(99.0) as f64 / 1e3,
                h.max as f64 / 1e3
            ));
        }
        s.push_str("},\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.metrics.counters {
            if !first {
                s.push_str(", ");
            }
            first = false;
            s.push_str(&format!("\"{name}\": {v}"));
        }
        s.push_str("}\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_serializes() {
        let r = ClusterReport::default();
        let text = r.to_json();
        let v = amoeba_telemetry::json::parse(&text).expect("valid json");
        assert!(v.get("net").is_some());
        assert!(v.get("machines").and_then(|m| m.as_array()).is_some());
    }

    #[test]
    fn totals_sum_over_machines() {
        let mut r = ClusterReport::default();
        for i in 0..3 {
            r.machines.push(MachineReport {
                name: format!("m{i}"),
                host: i,
                shard: 0,
                index: i as usize,
                replica: Some(ReplicaStats {
                    submitted: 1,
                    applied: 10,
                    batches: 2,
                    aborted: 0,
                    recoveries: 1,
                    window_stalls: 0,
                    flush_inflight_hwm: 1,
                    flush_runs: 1,
                    gather_ewma_us: 0,
                }),
                group: None,
                disk: DiskStats {
                    reads: 0,
                    writes: 5,
                    blocks: 0,
                    seeks: 0,
                },
            });
        }
        assert_eq!(r.totals(), (30, 0, 15));
    }
}

//! The on-disk object table: blocks 1..n−1 of the raw partition.
//!
//! Paper §3: "blocks 1 to n−1 contain the capabilities of the Bullet files
//! storing the contents of a directory, including the sequence number of
//! the last change". Each entry also persists the directory's raw check
//! field so client capabilities stay valid across reboots. Updating one
//! entry costs exactly one disk write — the group service's only raw-
//! partition write in the update path.

use amoeba_bullet::FileCap;
use amoeba_disk::RawPartition;
use amoeba_flip::wire::{WireReader, WireWriter};
use amoeba_sim::Ctx;

/// Bytes reserved per entry on disk.
const ENTRY_BYTES: usize = 40;

/// One object-table entry: where a directory lives and its version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjEntry {
    /// Capability of the Bullet file holding the directory's contents.
    pub file_cap: FileCap,
    /// Sequence number of the directory's last change.
    pub seqno: u64,
    /// The directory's raw check field (server secret).
    pub check: u64,
}

/// The in-memory object table plus its on-disk representation.
#[derive(Debug)]
pub struct ObjectTable {
    entries: Vec<Option<ObjEntry>>,
    /// The **durable mirror** (pipelined group commit): exactly what is
    /// on disk right now. With a flush window > 1 the apply loop runs
    /// ahead of the flusher, so `entries` (RAM truth) and the disk
    /// diverge by up to W batches; the flusher applies each sealed
    /// batch to this mirror and encodes table blocks *from it*, never
    /// from `entries`, so a block write can't leak a later batch's
    /// state. `None` in the classic serial mode, where `entries` and
    /// the disk never diverge outside a single flush.
    durable: Option<Vec<Option<ObjEntry>>>,
    partition: RawPartition,
    entries_per_block: usize,
}

impl ObjectTable {
    /// Creates an empty table over a partition (block 0 is the commit
    /// block; entries start at block 1).
    pub fn new(partition: RawPartition) -> ObjectTable {
        let entries_per_block = 4096 / ENTRY_BYTES; // assumes 4 KiB blocks
        let capacity = (partition.len().saturating_sub(1) as usize) * entries_per_block;
        ObjectTable {
            entries: vec![None; capacity],
            durable: None,
            partition,
            entries_per_block,
        }
    }

    /// Loads the table from disk (used at recovery): one sequential scan.
    pub fn load(partition: RawPartition, ctx: &Ctx) -> ObjectTable {
        let mut t = ObjectTable::new(partition);
        let blocks = t.partition.read_all(ctx);
        for (i, bytes) in blocks.iter().enumerate().skip(1) {
            t.decode_block(i as u64, bytes);
        }
        t
    }

    /// Highest usable object number.
    pub fn capacity(&self) -> u64 {
        self.entries.len() as u64
    }

    /// The entry for `object`, if present.
    pub fn get(&self, object: u64) -> Option<ObjEntry> {
        self.entries.get(self.slot(object)?).copied().flatten()
    }

    /// Sets the in-memory entry (call [`flush_entry`](Self::flush_entry)
    /// to persist).
    ///
    /// # Panics
    ///
    /// Panics if `object` is out of capacity.
    pub fn set(&mut self, object: u64, entry: ObjEntry) {
        let slot = self.slot(object).expect("object out of table capacity");
        self.entries[slot] = Some(entry);
    }

    /// Clears the in-memory entry.
    pub fn clear(&mut self, object: u64) {
        if let Some(slot) = self.slot(object) {
            self.entries[slot] = None;
        }
    }

    /// The next object number a deterministic apply should assign:
    /// one past the highest in use (so replicas agree).
    pub fn next_object(&self) -> u64 {
        self.entries
            .iter()
            .rposition(|e| e.is_some())
            .map(|i| i as u64 + 2)
            .unwrap_or(1)
    }

    /// Largest sequence number stored with any directory (recovery's
    /// "maximum of all the sequence numbers stored with the directory
    /// files").
    pub fn max_seqno(&self) -> u64 {
        self.entries
            .iter()
            .flatten()
            .map(|e| e.seqno)
            .max()
            .unwrap_or(0)
    }

    /// Iterates over (object, entry) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, ObjEntry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|e| (i as u64 + 1, e)))
    }

    /// Persists the block containing `object` — the paper's single
    /// "write changed object table to disk (commit)" disk operation.
    ///
    /// Blocks until the write completes; must NOT be called while holding
    /// a lock shared with other simulated threads (use
    /// [`flush_begin`](Self::flush_begin) + wait in that case).
    pub fn flush_entry(&self, ctx: &Ctx, object: u64) {
        if let Some(rx) = self.flush_begin(object) {
            rx.recv(ctx);
        }
    }

    /// Snapshots and enqueues the write of the block containing `object`
    /// without blocking; the caller waits on the returned mailbox after
    /// releasing any locks.
    pub fn flush_begin(&self, object: u64) -> Option<amoeba_sim::MailboxRx<()>> {
        let slot = self.slot(object)?;
        let block_index = slot / self.entries_per_block;
        let block = block_index as u64 + 1;
        let lo = block_index * self.entries_per_block;
        let hi = (lo + self.entries_per_block).min(self.entries.len());
        let mut w = WireWriter::new();
        for e in &self.entries[lo..hi] {
            encode_entry(&mut w, e);
        }
        Some(self.partition.write_begin(block, w.finish()))
    }

    /// Starts (or re-baselines) the durable mirror at the current
    /// in-memory contents. Call when RAM and disk are known to agree:
    /// right after [`load`](Self::load) at boot, or after a snapshot
    /// install persisted every entry.
    pub fn enable_durable_mirror(&mut self) {
        self.durable = Some(self.entries.clone());
    }

    /// Whether the durable mirror is active.
    pub fn mirror_enabled(&self) -> bool {
        self.durable.is_some()
    }

    /// The mirror's entry for `object` — what the disk holds *now*,
    /// which in pipelined mode may trail [`get`](Self::get) by up to a
    /// window of batches. Falls back to the RAM entry when the mirror
    /// is off (the two are then never observed apart).
    pub fn durable_get(&self, object: u64) -> Option<ObjEntry> {
        let slot = self.slot(object)?;
        match &self.durable {
            Some(d) => d.get(slot).copied().flatten(),
            None => self.entries.get(slot).copied().flatten(),
        }
    }

    /// Sets the mirror's entry (the flusher, applying a sealed batch).
    /// No-op when the mirror is off.
    pub fn durable_set(&mut self, object: u64, entry: ObjEntry) {
        let Some(slot) = self.slot(object) else {
            return;
        };
        if let Some(d) = &mut self.durable {
            d[slot] = Some(entry);
        }
    }

    /// Clears the mirror's entry. No-op when the mirror is off.
    pub fn durable_clear(&mut self, object: u64) {
        let Some(slot) = self.slot(object) else {
            return;
        };
        if let Some(d) = &mut self.durable {
            d[slot] = None;
        }
    }

    /// [`flush_begin`](Self::flush_begin), but encoding the block from
    /// the durable mirror (falling back to RAM entries when the mirror
    /// is off) — the pipelined flusher's block write, which must not
    /// leak applied-but-unsealed later state onto disk.
    pub fn durable_flush_begin(&self, object: u64) -> Option<amoeba_sim::MailboxRx<()>> {
        let slot = self.slot(object)?;
        let src = self.durable.as_ref().unwrap_or(&self.entries);
        let block_index = slot / self.entries_per_block;
        let block = block_index as u64 + 1;
        let lo = block_index * self.entries_per_block;
        let hi = (lo + self.entries_per_block).min(src.len());
        let mut w = WireWriter::new();
        for e in &src[lo..hi] {
            encode_entry(&mut w, e);
        }
        Some(self.partition.write_begin(block, w.finish()))
    }

    /// The partition block holding `object`'s entry — lets the
    /// pipelined flusher dedupe block writes when one batch touches
    /// several objects that share a block.
    pub fn block_of(&self, object: u64) -> Option<u64> {
        let slot = self.slot(object)?;
        Some((slot / self.entries_per_block) as u64 + 1)
    }

    /// [`durable_flush_begin`](Self::durable_flush_begin) addressed by
    /// partition block rather than object: encodes `block` from the
    /// durable mirror and enqueues its write. The pipelined flusher
    /// mutates the mirror for the whole batch first, then writes each
    /// touched block exactly once — a batch of updates to directories
    /// sharing a block costs one disk access instead of one per
    /// directory.
    pub fn durable_flush_block_begin(&self, block: u64) -> Option<amoeba_sim::MailboxRx<()>> {
        let src = self.durable.as_ref().unwrap_or(&self.entries);
        let block_index = usize::try_from(block.checked_sub(1)?).ok()?;
        let lo = block_index * self.entries_per_block;
        if lo >= src.len() {
            return None;
        }
        let hi = (lo + self.entries_per_block).min(src.len());
        let mut w = WireWriter::new();
        for e in &src[lo..hi] {
            encode_entry(&mut w, e);
        }
        Some(self.partition.write_begin(block, w.finish()))
    }

    fn slot(&self, object: u64) -> Option<usize> {
        if object == 0 || object > self.entries.len() as u64 {
            None
        } else {
            Some(object as usize - 1)
        }
    }

    fn decode_block(&mut self, block: u64, bytes: &[u8]) {
        let base = (block as usize - 1) * self.entries_per_block;
        let mut r = WireReader::new(bytes);
        for i in 0..self.entries_per_block {
            let slot = base + i;
            if slot >= self.entries.len() {
                break;
            }
            self.entries[slot] = decode_entry(&mut r);
        }
    }
}

fn encode_entry(w: &mut WireWriter, e: &Option<ObjEntry>) {
    match e {
        Some(e) => {
            w.u8(1)
                .u64(e.file_cap.object)
                .u64(e.file_cap.check)
                .u64(e.seqno)
                .u64(e.check);
            // Pad to the fixed entry size.
            for _ in 0..(ENTRY_BYTES - 33) {
                w.u8(0);
            }
        }
        None => {
            for _ in 0..ENTRY_BYTES {
                w.u8(0);
            }
        }
    }
}

fn decode_entry(r: &mut WireReader<'_>) -> Option<ObjEntry> {
    let present = r.u8("entry present").ok()?;
    if present != 1 {
        // Skip the rest of the slot.
        for _ in 0..(ENTRY_BYTES - 1) {
            let _ = r.u8("pad");
        }
        return None;
    }
    let file_object = r.u64("entry file object").ok()?;
    let file_check = r.u64("entry file check").ok()?;
    let seqno = r.u64("entry seqno").ok()?;
    let check = r.u64("entry check").ok()?;
    for _ in 0..(ENTRY_BYTES - 33) {
        let _ = r.u8("pad");
    }
    Some(ObjEntry {
        file_cap: FileCap {
            object: file_object,
            check: file_check,
        },
        seqno,
        check,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_disk::{DiskParams, DiskServer, VDisk};
    use amoeba_sim::Simulation;

    fn entry(n: u64) -> ObjEntry {
        ObjEntry {
            file_cap: FileCap {
                object: n,
                check: n * 7,
            },
            seqno: n * 100,
            check: n * 13,
        }
    }

    fn with_table<R: Send + 'static>(
        f: impl FnOnce(&Ctx, RawPartition) -> R + Send + 'static,
    ) -> R {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(64, 4096);
        let srv = DiskServer::start(&sim, node, disk, DiskParams::instant());
        let part = RawPartition::new(srv, 0, 16);
        let out = sim.spawn("app", move |ctx| f(ctx, part));
        sim.run();
        out.take().expect("test body finished")
    }

    #[test]
    fn set_get_clear() {
        with_table(|_ctx, part| {
            let mut t = ObjectTable::new(part);
            assert_eq!(t.get(1), None);
            t.set(1, entry(1));
            assert_eq!(t.get(1), Some(entry(1)));
            t.clear(1);
            assert_eq!(t.get(1), None);
        });
    }

    #[test]
    fn next_object_is_one_past_highest() {
        with_table(|_ctx, part| {
            let mut t = ObjectTable::new(part);
            assert_eq!(t.next_object(), 1);
            t.set(1, entry(1));
            t.set(5, entry(5));
            assert_eq!(t.next_object(), 6);
            t.clear(5);
            assert_eq!(t.next_object(), 2);
        });
    }

    #[test]
    fn flush_and_load_round_trip() {
        with_table(|ctx, part| {
            let mut t = ObjectTable::new(part.clone());
            t.set(1, entry(1));
            t.set(150, entry(150)); // second block
            t.flush_entry(ctx, 1);
            t.flush_entry(ctx, 150);
            let loaded = ObjectTable::load(part, ctx);
            assert_eq!(loaded.get(1), Some(entry(1)));
            assert_eq!(loaded.get(150), Some(entry(150)));
            assert_eq!(loaded.get(2), None);
            assert_eq!(loaded.max_seqno(), 15_000);
        });
    }

    #[test]
    fn flush_is_one_disk_write() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(64, 4096);
        let srv = DiskServer::start(&sim, node, disk.clone(), DiskParams::instant());
        let part = RawPartition::new(srv, 0, 16);
        let out = sim.spawn("app", move |ctx| {
            let mut t = ObjectTable::new(part);
            t.set(3, entry(3));
            let before = disk.stats();
            t.flush_entry(ctx, 3);
            disk.stats().since(&before).writes
        });
        sim.run();
        assert_eq!(out.take(), Some(1));
    }

    #[test]
    fn iter_yields_live_entries() {
        with_table(|_ctx, part| {
            let mut t = ObjectTable::new(part);
            t.set(2, entry(2));
            t.set(4, entry(4));
            let got: Vec<u64> = t.iter().map(|(o, _)| o).collect();
            assert_eq!(got, vec![2, 4]);
        });
    }

    #[test]
    fn durable_mirror_lags_ram_and_block_writes_come_from_it() {
        with_table(|ctx, part| {
            let mut t = ObjectTable::new(part.clone());
            t.set(1, entry(1));
            t.flush_entry(ctx, 1);
            t.enable_durable_mirror();
            // RAM runs ahead (the apply loop): entry 1 mutated, entry 2
            // created — neither change sealed/flushed yet.
            t.set(1, entry(9));
            t.set(2, entry(2));
            assert_eq!(t.get(1), Some(entry(9)));
            assert_eq!(t.durable_get(1), Some(entry(1)));
            assert_eq!(t.durable_get(2), None);
            // A mirror-sourced block write must persist the *durable*
            // state, not the RAM state running ahead of it.
            if let Some(w) = t.durable_flush_begin(1) {
                w.recv(ctx);
            }
            let loaded = ObjectTable::load(part.clone(), ctx);
            assert_eq!(loaded.get(1), Some(entry(1)));
            assert_eq!(loaded.get(2), None);
            // The flusher retires the sealed batch into the mirror; the
            // next block write carries it.
            t.durable_set(1, entry(9));
            t.durable_set(2, entry(2));
            if let Some(w) = t.durable_flush_begin(2) {
                w.recv(ctx);
            }
            let loaded = ObjectTable::load(part, ctx);
            assert_eq!(loaded.get(1), Some(entry(9)));
            assert_eq!(loaded.get(2), Some(entry(2)));
        });
    }

    #[test]
    fn durable_ops_fall_back_to_ram_without_mirror() {
        with_table(|_ctx, part| {
            let mut t = ObjectTable::new(part);
            t.set(3, entry(3));
            assert!(!t.mirror_enabled());
            assert_eq!(t.durable_get(3), Some(entry(3)));
            t.durable_clear(3); // no-op without a mirror
            assert_eq!(t.get(3), Some(entry(3)));
        });
    }

    #[test]
    fn out_of_range_get_is_none() {
        with_table(|_ctx, part| {
            let t = ObjectTable::new(part);
            assert_eq!(t.get(0), None);
            assert_eq!(t.get(10_000_000), None);
        });
    }
}

//! An in-memory reference model of the directory service, used by
//! property tests to check one-copy serializability: a history accepted by
//! the replicated service must match this model executed sequentially.

use std::collections::HashMap;

use crate::directory::Directory;
use crate::ops::{DirError, DirOp, DirReply};

/// A sequential, non-replicated directory service model.
///
/// Mirrors the deterministic apply logic (including object-number
/// allocation) without any I/O, capabilities reduced to object numbers.
#[derive(Debug, Default, Clone)]
pub struct DirModel {
    dirs: HashMap<u64, Directory>,
    highest_ever: u64,
}

impl DirModel {
    /// An empty model.
    pub fn new() -> DirModel {
        DirModel::default()
    }

    /// Number of live directories.
    pub fn len(&self) -> usize {
        self.dirs.len()
    }

    /// Whether no directories exist.
    pub fn is_empty(&self) -> bool {
        self.dirs.is_empty()
    }

    /// The directory with the given object number.
    pub fn dir(&self, object: u64) -> Option<&Directory> {
        self.dirs.get(&object)
    }

    /// The deterministic next object number (one past the highest live).
    pub fn next_object(&self) -> u64 {
        self.dirs.keys().max().map(|m| m + 1).unwrap_or(1)
    }

    /// Applies an op exactly as a replica would; returns the expected
    /// outcome (`Ok(object)` for creates).
    pub fn apply(&mut self, op: &DirOp) -> Result<Option<u64>, DirError> {
        match op {
            DirOp::Create { columns, check: _ } => {
                if !(1..=4).contains(&columns.len()) {
                    return Err(DirError::Malformed);
                }
                let object = self.next_object();
                self.dirs.insert(object, Directory::new(columns.clone()));
                self.highest_ever = self.highest_ever.max(object);
                Ok(Some(object))
            }
            DirOp::Delete { object } => {
                self.dirs.remove(object).ok_or(DirError::BadCapability)?;
                Ok(None)
            }
            DirOp::Append {
                object,
                name,
                cap,
                col_rights,
            } => {
                let dir = self.dirs.get_mut(object).ok_or(DirError::BadCapability)?;
                dir.append_row(name.clone(), *cap, col_rights.clone())
                    .map_err(|e| match e {
                        crate::directory::DirStructureError::DuplicateName => {
                            DirError::DuplicateName
                        }
                        crate::directory::DirStructureError::NoSuchName => DirError::NoSuchName,
                        crate::directory::DirStructureError::ColumnMismatch => {
                            DirError::ColumnMismatch
                        }
                    })?;
                Ok(None)
            }
            DirOp::Chmod {
                object,
                name,
                col_rights,
            } => {
                let dir = self.dirs.get_mut(object).ok_or(DirError::BadCapability)?;
                dir.chmod_row(name, col_rights.clone())
                    .map_err(|_| DirError::NoSuchName)?;
                Ok(None)
            }
            DirOp::DeleteRow { object, name } => {
                let dir = self.dirs.get_mut(object).ok_or(DirError::BadCapability)?;
                dir.delete_row(name).map_err(|_| DirError::NoSuchName)?;
                Ok(None)
            }
            DirOp::ReplaceSet { items } => {
                for (object, name, _) in items {
                    let dir = self.dirs.get(object).ok_or(DirError::BadCapability)?;
                    if dir.find(name).is_none() {
                        return Err(DirError::NoSuchName);
                    }
                }
                for (object, name, cap) in items {
                    let dir = self.dirs.get_mut(object).expect("validated");
                    dir.replace_cap(name, *cap).expect("validated");
                }
                Ok(None)
            }
            DirOp::CreateKeyed { columns, .. } => {
                // The model is keyless (no completion store): a keyed
                // create behaves like a plain create here; idempotency
                // is covered by the service-level sharding tests.
                self.apply(&DirOp::Create {
                    columns: columns.clone(),
                    check: 0,
                })
            }
            DirOp::AppendLink {
                object,
                name,
                cap,
                col_rights,
            } => {
                let dir = self.dirs.get_mut(object).ok_or(DirError::BadCapability)?;
                if let Some(row) = dir.find(name) {
                    return if row.cap == *cap {
                        Ok(None)
                    } else {
                        Err(DirError::DuplicateName)
                    };
                }
                dir.append_row(name.clone(), *cap, col_rights.clone())
                    .map_err(|_| DirError::ColumnMismatch)?;
                Ok(None)
            }
            DirOp::Unlink { object, name } => {
                // Missing row and deleted directory are both success.
                if let Some(dir) = self.dirs.get_mut(object) {
                    let _ = dir.delete_row(name);
                }
                Ok(None)
            }
            DirOp::InstallDir { columns, .. } => {
                // The model is keyless and single-shard: a migration
                // install behaves like a plain create here; upsert and
                // forwarding semantics are covered by the service-level
                // migration tests.
                self.apply(&DirOp::Create {
                    columns: columns.clone(),
                    check: 0,
                })
            }
            DirOp::InstallStub { object, .. } => {
                // The model has no forwarding layer: a stub install
                // removes the directory's contents from the namespace,
                // like a delete.
                self.dirs.remove(object).ok_or(DirError::BadCapability)?;
                Ok(None)
            }
            DirOp::GrantRead { cap, .. } => {
                // The model has no lease table: a grant mutates nothing,
                // it only requires the directory to exist. Lease fencing
                // is covered by the service-level cache tests.
                self.dirs.get(&cap.object).ok_or(DirError::BadCapability)?;
                Ok(None)
            }
        }
    }

    /// Whether a service reply is consistent with the model's outcome for
    /// the same op.
    pub fn reply_matches(expected: &Result<Option<u64>, DirError>, reply: &DirReply) -> bool {
        match (expected, reply) {
            (Ok(Some(object)), DirReply::Cap(c)) => c.object == *object,
            (Ok(None), DirReply::Ok) => true,
            (Err(e), DirReply::Err(got)) => e == got,
            _ => false,
        }
    }

    /// The names visible in a directory, sorted (for listing comparison).
    pub fn names(&self, object: u64) -> Vec<String> {
        let mut v: Vec<String> = self
            .dirs
            .get(&object)
            .map(|d| d.rows.iter().map(|r| r.name.clone()).collect())
            .unwrap_or_default();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::Capability;
    use crate::rights::Rights;
    use amoeba_flip::Port;

    fn cap(o: u64) -> Capability {
        Capability::owner(Port::from_name("x"), o, 1)
    }

    #[test]
    fn create_assigns_sequential_objects() {
        let mut m = DirModel::new();
        let o1 = m
            .apply(&DirOp::Create {
                columns: vec!["o".into()],
                check: 1,
            })
            .unwrap()
            .unwrap();
        let o2 = m
            .apply(&DirOp::Create {
                columns: vec!["o".into()],
                check: 2,
            })
            .unwrap()
            .unwrap();
        assert_eq!((o1, o2), (1, 2));
    }

    #[test]
    fn object_numbers_reused_after_delete_of_highest() {
        let mut m = DirModel::new();
        let o1 = m
            .apply(&DirOp::Create {
                columns: vec!["o".into()],
                check: 1,
            })
            .unwrap()
            .unwrap();
        m.apply(&DirOp::Delete { object: o1 }).unwrap();
        let o2 = m
            .apply(&DirOp::Create {
                columns: vec!["o".into()],
                check: 2,
            })
            .unwrap()
            .unwrap();
        assert_eq!(o2, 1, "allocator is one-past-highest-live");
    }

    #[test]
    fn append_and_delete_row() {
        let mut m = DirModel::new();
        m.apply(&DirOp::Create {
            columns: vec!["o".into()],
            check: 1,
        })
        .unwrap();
        m.apply(&DirOp::Append {
            object: 1,
            name: "x".into(),
            cap: cap(9),
            col_rights: vec![Rights::ALL],
        })
        .unwrap();
        assert_eq!(m.names(1), vec!["x"]);
        let dup = m.apply(&DirOp::Append {
            object: 1,
            name: "x".into(),
            cap: cap(9),
            col_rights: vec![Rights::ALL],
        });
        assert_eq!(dup, Err(DirError::DuplicateName));
        m.apply(&DirOp::DeleteRow {
            object: 1,
            name: "x".into(),
        })
        .unwrap();
        assert!(m.names(1).is_empty());
    }

    #[test]
    fn replace_set_is_atomic() {
        let mut m = DirModel::new();
        m.apply(&DirOp::Create {
            columns: vec!["o".into()],
            check: 1,
        })
        .unwrap();
        m.apply(&DirOp::Append {
            object: 1,
            name: "a".into(),
            cap: cap(1),
            col_rights: vec![Rights::ALL],
        })
        .unwrap();
        // One bad item poisons the whole set.
        let r = m.apply(&DirOp::ReplaceSet {
            items: vec![(1, "a".into(), cap(5)), (1, "ghost".into(), cap(6))],
        });
        assert_eq!(r, Err(DirError::NoSuchName));
        assert_eq!(m.dir(1).unwrap().find("a").unwrap().cap.object, 1);
    }
}

//! A replicated port-name registry — the third consumer of the
//! [`amoeba_rsm`] API: a [`StateMachine`] mapping service *names* to
//! FLIP [`Port`]s, with **zero group-protocol code**.
//!
//! On an internetwork this is what lets a routed client find a service
//! it has never heard of: ask the registry (itself located via the
//! expanding-ring broadcast on its well-known port) for the service's
//! port by name, then locate *that* port — which may live any number of
//! segments away. Like the lock service the machine is fully volatile:
//! ordering, majority rule, apply batching and recovery (peer-snapshot
//! state transfer after a reboot) all come from the generic
//! [`Replica`] driver, and the §3.2 improved recovery rule stands in
//! for the durable configuration vector a diskless service cannot keep.

use std::collections::HashMap;
use std::sync::Arc;

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::{Payload, Port};
use amoeba_group::GroupPeer;
use amoeba_rpc::{RpcClient, RpcError, RpcNode, RpcServer};
use amoeba_rsm::{RecoveryInfo, Replica, ReplicaDeps, RsmConfig, RsmError, StateMachine};
use amoeba_sim::{Ctx, NodeId, Spawn};
use parking_lot::Mutex;

/// The well-known public FLIP port of the registry service.
pub const REGISTRY_PORT: Port = Port::from_raw(0x0052_4547); // "REG"

/// Client-visible operations of the port-name registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryRequest {
    /// Bind `name` to `port` (fails if bound to a different port).
    Register {
        /// Service name.
        name: String,
        /// The FLIP port the service listens on.
        port: Port,
    },
    /// Remove the binding of `name`.
    Unregister {
        /// Service name.
        name: String,
    },
    /// Read the port bound to `name` (a local read behind the read
    /// barrier).
    Lookup {
        /// Service name.
        name: String,
    },
}

/// Replies of the port-name registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryReply {
    /// The operation succeeded.
    Ok,
    /// The name is bound to this port.
    Bound(Port),
    /// The name is not bound.
    Unbound,
    /// Register refused: bound to this other port.
    Conflict(Port),
    /// Malformed request.
    Malformed,
    /// The replica is recovering or without a majority.
    NoMajority,
}

const G_REGISTER: u8 = 1;
const G_UNREGISTER: u8 = 2;
const G_LOOKUP: u8 = 3;

const P_OK: u8 = 1;
const P_BOUND: u8 = 2;
const P_UNBOUND: u8 = 3;
const P_CONFLICT: u8 = 4;
const P_MALFORMED: u8 = 5;
const P_NO_MAJORITY: u8 = 6;

impl RegistryRequest {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::new();
        match self {
            RegistryRequest::Register { name, port } => {
                w.u8(G_REGISTER).string(name).u64(port.as_raw());
            }
            RegistryRequest::Unregister { name } => {
                w.u8(G_UNREGISTER).string(name);
            }
            RegistryRequest::Lookup { name } => {
                w.u8(G_LOOKUP).string(name);
            }
        }
        w.finish_payload()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<RegistryRequest, DecodeError> {
        let mut r = WireReader::new(buf);
        let m = match r.u8("registry req tag")? {
            G_REGISTER => RegistryRequest::Register {
                name: r.string("service name")?,
                port: Port::from_raw(r.u64("service port")?),
            },
            G_UNREGISTER => RegistryRequest::Unregister {
                name: r.string("service name")?,
            },
            G_LOOKUP => RegistryRequest::Lookup {
                name: r.string("service name")?,
            },
            _ => return Err(DecodeError::new("registry req tag")),
        };
        r.expect_end("registry req trailing")?;
        Ok(m)
    }
}

impl RegistryReply {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::new();
        match self {
            RegistryReply::Ok => {
                w.u8(P_OK);
            }
            RegistryReply::Bound(p) => {
                w.u8(P_BOUND).u64(p.as_raw());
            }
            RegistryReply::Unbound => {
                w.u8(P_UNBOUND);
            }
            RegistryReply::Conflict(p) => {
                w.u8(P_CONFLICT).u64(p.as_raw());
            }
            RegistryReply::Malformed => {
                w.u8(P_MALFORMED);
            }
            RegistryReply::NoMajority => {
                w.u8(P_NO_MAJORITY);
            }
        }
        w.finish_payload()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<RegistryReply, DecodeError> {
        let mut r = WireReader::new(buf);
        let m = match r.u8("registry rep tag")? {
            P_OK => RegistryReply::Ok,
            P_BOUND => RegistryReply::Bound(Port::from_raw(r.u64("bound port")?)),
            P_UNBOUND => RegistryReply::Unbound,
            P_CONFLICT => RegistryReply::Conflict(Port::from_raw(r.u64("bound port")?)),
            P_MALFORMED => RegistryReply::Malformed,
            P_NO_MAJORITY => RegistryReply::NoMajority,
            _ => return Err(DecodeError::new("registry rep tag")),
        };
        r.expect_end("registry rep trailing")?;
        Ok(m)
    }
}

// ---------------------------------------------------------------------
// The state machine.
// ---------------------------------------------------------------------

struct RegistryState {
    /// service name → port.
    bound: HashMap<String, Port>,
    /// Logical version (one per applied op), for recovery's source
    /// election.
    update_seq: u64,
    /// Applied cursor, kept in the same critical section as the state.
    applied_seq: u64,
}

/// The replicated name→port table: a volatile, deterministic
/// [`StateMachine`]. Durability comes entirely from replication — a
/// rebooted replica recovers the table from a peer's snapshot.
pub struct RegistryStateMachine {
    n: usize,
    state: Mutex<RegistryState>,
}

impl std::fmt::Debug for RegistryStateMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RegistryStateMachine")
    }
}

impl RegistryStateMachine {
    /// An empty registry for an `n`-replica service.
    pub fn new(n: usize) -> RegistryStateMachine {
        RegistryStateMachine {
            n,
            state: Mutex::new(RegistryState {
                bound: HashMap::new(),
                update_seq: 0,
                applied_seq: 0,
            }),
        }
    }

    /// The port bound to `name` (serve only behind a read barrier).
    pub fn bound_port(&self, name: &str) -> Option<Port> {
        self.state.lock().bound.get(name).copied()
    }

    /// Number of bound names (diagnostics/tests).
    pub fn bound_count(&self) -> usize {
        self.state.lock().bound.len()
    }
}

impl StateMachine for RegistryStateMachine {
    fn apply(&self, _ctx: &Ctx, seq: u64, op: &Payload) -> Payload {
        let mut st = self.state.lock();
        st.applied_seq = st.applied_seq.max(seq);
        st.update_seq += 1;
        let reply = match RegistryRequest::decode(op) {
            Ok(RegistryRequest::Register { name, port }) => match st.bound.get(&name) {
                Some(existing) if *existing != port => RegistryReply::Conflict(*existing),
                _ => {
                    st.bound.insert(name, port);
                    RegistryReply::Ok
                }
            },
            Ok(RegistryRequest::Unregister { name }) => {
                st.bound.remove(&name);
                RegistryReply::Ok
            }
            _ => RegistryReply::Malformed, // lookups are never replicated
        };
        reply.encode()
    }

    fn recovery_info(&self) -> RecoveryInfo {
        RecoveryInfo {
            update_seq: self.state.lock().update_seq,
            // Volatile state: we cannot know who crashed before us.
            mourned: vec![false; self.n],
        }
    }

    fn snapshot(&self, _ctx: &Ctx) -> (u64, Payload) {
        let st = self.state.lock();
        let mut names: Vec<&String> = st.bound.keys().collect();
        names.sort_unstable(); // deterministic encoding
        let mut w = WireWriter::new();
        w.u64(st.update_seq).u32(names.len() as u32);
        for name in names {
            w.string(name).u64(st.bound[name].as_raw());
        }
        (st.applied_seq, w.finish_payload())
    }

    fn install(&self, _ctx: &Ctx, cursor: u64, snap: &Payload) -> bool {
        let mut r = WireReader::of(snap);
        let (update_seq, n) = match (r.u64("update seq"), r.u32("bindings")) {
            (Ok(u), Ok(n)) if (n as usize) <= 1_000_000 => (u, n),
            _ => return false,
        };
        let mut bound = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            match (r.string("service name"), r.u64("service port")) {
                (Ok(name), Ok(port)) => {
                    bound.insert(name, Port::from_raw(port));
                }
                _ => return false,
            }
        }
        let mut st = self.state.lock();
        st.bound = bound;
        st.update_seq = update_seq;
        st.applied_seq = cursor;
        true
    }

    fn align_cursor(&self, _ctx: &Ctx, cursor: u64) {
        // A new instance's order restarts: set absolutely.
        self.state.lock().applied_seq = cursor;
    }

    fn on_membership(&self, _ctx: &Ctx, seq: u64, _config: &[bool]) {
        if seq > 0 {
            let mut st = self.state.lock();
            st.applied_seq = st.applied_seq.max(seq);
        }
    }
}

// ---------------------------------------------------------------------
// Server wiring and client stub.
// ---------------------------------------------------------------------

/// Everything needed to start one registry replica — like the lock
/// service, no disk, no Bullet, no NVRAM: replication is the only
/// durability.
pub struct RegistryServerDeps {
    /// Total replicas.
    pub n: usize,
    /// This replica's index in `0..n`.
    pub me: usize,
    /// The machine this replica runs on.
    pub sim_node: NodeId,
    /// RPC kernel of the machine (shared with other services).
    pub rpc: RpcNode,
    /// Group kernel of the machine (shared with other services; the
    /// registry group forms on its own port).
    pub peer: GroupPeer,
    /// Request threads to spawn.
    pub threads: usize,
}

impl std::fmt::Debug for RegistryServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RegistryServerDeps(replica {})", self.me)
    }
}

/// Handle to one running registry replica.
#[derive(Clone, Debug)]
pub struct RegistryServer {
    replica: Replica<RegistryStateMachine>,
}

impl RegistryServer {
    /// Whether the replica is serving.
    pub fn is_normal(&self) -> bool {
        self.replica.is_normal()
    }

    /// The replica's binding table (diagnostics/tests).
    pub fn machine(&self) -> &Arc<RegistryStateMachine> {
        self.replica.machine()
    }
}

/// Starts one replica of the port-name registry.
pub fn start_registry_server(spawner: &impl Spawn, deps: RegistryServerDeps) -> RegistryServer {
    let RegistryServerDeps {
        n,
        me,
        sim_node,
        rpc,
        peer,
        threads,
    } = deps;
    let sm = Arc::new(RegistryStateMachine::new(n));
    let mut cfg = RsmConfig::new("amoeba.registry", n, me);
    // Same reasoning as the lock service: a volatile machine mourns no
    // one, so only the §3.2 improved rule (a stayed-up replica with the
    // highest version vouches for the missing) lets a diskless service
    // recover from anything less than a full reassembly.
    cfg.improved_recovery = true;
    let replica = Replica::start(
        spawner,
        ReplicaDeps {
            cfg,
            sim_node,
            rpc: rpc.clone(),
            peer,
            sm,
        },
    );
    for t in 0..threads.max(1) {
        let srv = RpcServer::new(&rpc, REGISTRY_PORT);
        let replica = replica.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("reg{me}-srv{t}"),
            Box::new(move |ctx| loop {
                let incoming = srv.getreq(ctx);
                let reply = match RegistryRequest::decode(&incoming.data) {
                    Ok(RegistryRequest::Lookup { name }) => match replica.read_barrier(ctx) {
                        Ok(()) => match replica.machine().bound_port(&name) {
                            Some(port) => RegistryReply::Bound(port),
                            None => RegistryReply::Unbound,
                        },
                        Err(_) => RegistryReply::NoMajority,
                    },
                    Ok(op) => match replica.submit(ctx, op.encode()) {
                        Ok(bytes) => {
                            RegistryReply::decode(&bytes).unwrap_or(RegistryReply::Malformed)
                        }
                        Err(RsmError::NotInService | RsmError::Aborted) => {
                            RegistryReply::NoMajority
                        }
                        Err(RsmError::ResultLost) => RegistryReply::Malformed,
                    },
                    Err(_) => RegistryReply::Malformed,
                };
                srv.putrep(&incoming, reply.encode());
            }),
        );
    }
    RegistryServer { replica }
}

/// Errors surfaced by [`RegistryClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name is bound to a different port.
    Conflict(Port),
    /// The service has no majority (retry later).
    NoMajority,
    /// The service refused or mangled the request.
    Service,
    /// Transport failure.
    Rpc(RpcError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Conflict(p) => write!(f, "name already bound to {p}"),
            RegistryError::NoMajority => f.write_str("registry has no majority"),
            RegistryError::Service => f.write_str("registry refused the request"),
            RegistryError::Rpc(e) => write!(f, "registry transport: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Client stub for the port-name registry.
#[derive(Clone, Debug)]
pub struct RegistryClient {
    rpc: RpcClient,
}

impl RegistryClient {
    /// Creates a stub talking to the registry through `rpc` (the
    /// registry itself is found by the locate broadcast on
    /// [`REGISTRY_PORT`]).
    pub fn new(rpc: RpcClient) -> RegistryClient {
        RegistryClient { rpc }
    }

    fn call(&self, ctx: &Ctx, req: RegistryRequest) -> Result<RegistryReply, RegistryError> {
        let bytes = self
            .rpc
            .trans(ctx, REGISTRY_PORT, req.encode())
            .map_err(RegistryError::Rpc)?;
        RegistryReply::decode(&bytes).map_err(|_| RegistryError::Service)
    }

    /// Binds `name` to `port`.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Conflict`] if bound to a different port.
    pub fn register(&self, ctx: &Ctx, name: &str, port: Port) -> Result<(), RegistryError> {
        match self.call(
            ctx,
            RegistryRequest::Register {
                name: name.to_owned(),
                port,
            },
        )? {
            RegistryReply::Ok => Ok(()),
            RegistryReply::Conflict(p) => Err(RegistryError::Conflict(p)),
            RegistryReply::NoMajority => Err(RegistryError::NoMajority),
            _ => Err(RegistryError::Service),
        }
    }

    /// Removes the binding of `name` (idempotent).
    ///
    /// # Errors
    ///
    /// [`RegistryError::NoMajority`] / transport errors.
    pub fn unregister(&self, ctx: &Ctx, name: &str) -> Result<(), RegistryError> {
        match self.call(
            ctx,
            RegistryRequest::Unregister {
                name: name.to_owned(),
            },
        )? {
            RegistryReply::Ok => Ok(()),
            RegistryReply::NoMajority => Err(RegistryError::NoMajority),
            _ => Err(RegistryError::Service),
        }
    }

    /// The port bound to `name`, if any.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Service`] / [`RegistryError::Rpc`] on failure.
    pub fn lookup(&self, ctx: &Ctx, name: &str) -> Result<Option<Port>, RegistryError> {
        match self.call(
            ctx,
            RegistryRequest::Lookup {
                name: name.to_owned(),
            },
        )? {
            RegistryReply::Bound(p) => Ok(Some(p)),
            RegistryReply::Unbound => Ok(None),
            RegistryReply::NoMajority => Err(RegistryError::NoMajority),
            _ => Err(RegistryError::Service),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_replies_round_trip() {
        let reqs = [
            RegistryRequest::Register {
                name: "svc/dir".into(),
                port: Port::from_name("amoeba.dir"),
            },
            RegistryRequest::Unregister { name: "x".into() },
            RegistryRequest::Lookup { name: "q".into() },
        ];
        for m in reqs {
            assert_eq!(RegistryRequest::decode(&m.encode()).unwrap(), m);
        }
        let reps = [
            RegistryReply::Ok,
            RegistryReply::Bound(Port::from_raw(55)),
            RegistryReply::Unbound,
            RegistryReply::Conflict(Port::from_raw(9)),
            RegistryReply::Malformed,
            RegistryReply::NoMajority,
        ];
        for m in reps {
            assert_eq!(RegistryReply::decode(&m.encode()).unwrap(), m);
        }
        assert!(RegistryRequest::decode(&[77]).is_err());
        assert!(RegistryReply::decode(&[]).is_err());
    }
}

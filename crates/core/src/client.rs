//! The client library: typed wrappers over the Fig. 2 operations.

use amoeba_flip::Port;
use amoeba_rpc::{RpcClient, RpcError};
use amoeba_sim::Ctx;

use crate::capability::Capability;
use crate::ops::{DirError, DirReply, DirRequest};
use crate::rights::Rights;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirClientError {
    /// The service reported a failure.
    Service(DirError),
    /// Transport failure (no server reachable).
    Rpc(RpcError),
    /// The server answered something unintelligible.
    Protocol,
}

impl std::fmt::Display for DirClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirClientError::Service(e) => write!(f, "directory service: {e}"),
            DirClientError::Rpc(e) => write!(f, "transport: {e}"),
            DirClientError::Protocol => f.write_str("malformed reply"),
        }
    }
}

impl std::error::Error for DirClientError {}

impl From<RpcError> for DirClientError {
    fn from(e: RpcError) -> Self {
        DirClientError::Rpc(e)
    }
}

impl From<DirError> for DirClientError {
    fn from(e: DirError) -> Self {
        DirClientError::Service(e)
    }
}

/// A listing returned by [`DirClient::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Listing {
    /// Column names.
    pub columns: Vec<String>,
    /// (name, capability restricted to your effective rights, visible
    /// column masks).
    pub rows: Vec<(String, Capability, Vec<Rights>)>,
}

/// A typed client for the directory service (any implementation).
#[derive(Debug, Clone)]
pub struct DirClient {
    rpc: RpcClient,
    service: Port,
}

impl DirClient {
    /// Creates a client that locates servers of `service` through `rpc`.
    pub fn new(rpc: RpcClient, service: Port) -> DirClient {
        DirClient { rpc, service }
    }

    fn call(&self, ctx: &Ctx, req: &DirRequest) -> Result<DirReply, DirClientError> {
        let bytes = self.rpc.trans(ctx, self.service, req.encode())?;
        DirReply::decode(&bytes).map_err(|_| DirClientError::Protocol)
    }

    fn expect_ok(&self, ctx: &Ctx, req: &DirRequest) -> Result<(), DirClientError> {
        match self.call(ctx, req)? {
            DirReply::Ok => Ok(()),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    /// Creates a directory; returns its owner capability.
    ///
    /// # Errors
    ///
    /// Service errors ([`DirError`]) or transport failures.
    pub fn create_dir(&self, ctx: &Ctx, columns: &[&str]) -> Result<Capability, DirClientError> {
        let req = DirRequest::CreateDir {
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
        };
        match self.call(ctx, &req)? {
            DirReply::Cap(c) => Ok(c),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    /// Deletes a directory (needs [`Rights::ADMIN`]).
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn delete_dir(&self, ctx: &Ctx, cap: Capability) -> Result<(), DirClientError> {
        self.expect_ok(ctx, &DirRequest::DeleteDir { cap })
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn list(&self, ctx: &Ctx, cap: Capability) -> Result<Listing, DirClientError> {
        match self.call(ctx, &DirRequest::ListDir { cap })? {
            DirReply::Listing { columns, rows } => Ok(Listing { columns, rows }),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    /// Appends a row (needs [`Rights::MODIFY`] on `dir`).
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn append_row(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
        cap: Capability,
        col_rights: Vec<Rights>,
    ) -> Result<(), DirClientError> {
        self.expect_ok(
            ctx,
            &DirRequest::AppendRow {
                dir,
                name: name.to_owned(),
                cap,
                col_rights,
            },
        )
    }

    /// Changes a row's per-column rights masks.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn chmod_row(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
        col_rights: Vec<Rights>,
    ) -> Result<(), DirClientError> {
        self.expect_ok(
            ctx,
            &DirRequest::ChmodRow {
                dir,
                name: name.to_owned(),
                col_rights,
            },
        )
    }

    /// Deletes a row.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn delete_row(&self, ctx: &Ctx, dir: Capability, name: &str) -> Result<(), DirClientError> {
        self.expect_ok(
            ctx,
            &DirRequest::DeleteRow {
                dir,
                name: name.to_owned(),
            },
        )
    }

    /// Looks up several (directory, name) pairs at once.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn lookup_set(
        &self,
        ctx: &Ctx,
        items: Vec<(Capability, String)>,
    ) -> Result<Vec<Option<Capability>>, DirClientError> {
        match self.call(ctx, &DirRequest::LookupSet { items })? {
            DirReply::Caps(v) => Ok(v),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    /// Looks up one name.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn lookup(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
    ) -> Result<Option<Capability>, DirClientError> {
        let mut v = self.lookup_set(ctx, vec![(dir, name.to_owned())])?;
        v.pop().ok_or(DirClientError::Protocol)
    }

    /// Replaces the capabilities in a set of rows, indivisibly.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn replace_set(
        &self,
        ctx: &Ctx,
        items: Vec<(Capability, String, Capability)>,
    ) -> Result<(), DirClientError> {
        self.expect_ok(ctx, &DirRequest::ReplaceSet { items })
    }
}

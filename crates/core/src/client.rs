//! The client library: typed wrappers over the Fig. 2 operations, plus
//! the shard-routing layer.
//!
//! A [`DirClient`] talks either to a single service port (the classic
//! unsharded deployment, [`DirClient::new`]) or to a sharded deployment
//! ([`DirClient::sharded`]), in which case every operation is routed by
//! the [`ShardMap`]: ops on an existing directory go to the shard burned
//! into its capability's port, fresh root creates are placed
//! round-robin, and the cross-shard operations
//! ([`create_in`](DirClient::create_in) /
//! [`delete_from`](DirClient::delete_from)) run the deterministic
//! two-step protocol described in the [`crate::shard`] module docs.
//! With one shard the routed client is indistinguishable from the
//! classic one.
//!
//! Every capability-addressed call runs a **bounded re-resolve loop**:
//! the capability is first translated through the map's learned
//! relocation cache, and a [`DirReply::Moved`] answer (the directory
//! migrated, see the [`crate::shard`] docs) teaches the cache a new
//! hint and retries at the new location — so a shard hint going stale
//! mid-request (a migration racing the call) is chased, not surfaced
//! as a hard failure, and old capabilities keep working forever.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use amoeba_flip::Port;
use amoeba_rpc::{RpcClient, RpcError};
use amoeba_sim::Ctx;
use amoeba_telemetry::Telemetry;

use crate::cache::{CacheStats, DirCache};
use crate::capability::Capability;
use crate::ops::{DirError, DirReply, DirRequest};
use crate::rights::Rights;
use crate::shard::ShardMap;

/// Most `Moved` hops a single call chases before reporting
/// [`DirClientError::Protocol`]. Real chains are as long as the number
/// of migrations a directory underwent since this client last saw it;
/// each hop is also cached, so a second call needs none.
const MAX_CHASE: usize = 8;

/// Most export → install → CAS rounds a [`DirClient::migrate`] runs
/// before giving up with [`DirError::Stale`] (each round lost means a
/// concurrent update landed — the directory is hot; back off and let
/// the caller retry).
const MAX_MIGRATE_ROUNDS: usize = 16;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirClientError {
    /// The service reported a failure.
    Service(DirError),
    /// Transport failure (no server reachable).
    Rpc(RpcError),
    /// The server answered something unintelligible.
    Protocol,
}

impl std::fmt::Display for DirClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirClientError::Service(e) => write!(f, "directory service: {e}"),
            DirClientError::Rpc(e) => write!(f, "transport: {e}"),
            DirClientError::Protocol => f.write_str("malformed reply"),
        }
    }
}

impl std::error::Error for DirClientError {}

impl From<RpcError> for DirClientError {
    fn from(e: RpcError) -> Self {
        DirClientError::Rpc(e)
    }
}

impl From<DirError> for DirClientError {
    fn from(e: DirError) -> Self {
        DirClientError::Service(e)
    }
}

/// A listing returned by [`DirClient::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Listing {
    /// Column names.
    pub columns: Vec<String>,
    /// (name, capability restricted to your effective rights, visible
    /// column masks).
    pub rows: Vec<(String, Capability, Vec<Rights>)>,
}

/// How requests map onto service ports.
#[derive(Debug)]
enum Route {
    /// Everything to one fixed port (unsharded, or a custom service).
    Single(Port),
    /// Per-shard ports through the shard map.
    Sharded(ShardMap),
}

/// A typed client for the directory service (any implementation).
#[derive(Debug, Clone)]
pub struct DirClient {
    rpc: RpcClient,
    route: Arc<Route>,
    /// Round-robin cursor for placing fresh root directories.
    next_create: Arc<AtomicUsize>,
    /// Lease-fenced local read cache (see [`crate::cache`]); `None`
    /// is the classic, behaviour-identical uncached client.
    cache: Option<DirCache>,
}

impl DirClient {
    /// Creates a client that locates servers of `service` through `rpc`
    /// (a single-group deployment).
    pub fn new(rpc: RpcClient, service: Port) -> DirClient {
        DirClient {
            rpc,
            route: Arc::new(Route::Single(service)),
            next_create: Arc::new(AtomicUsize::new(0)),
            cache: None,
        }
    }

    /// Creates a client for a directory service sharded `shards` ways
    /// (`1` is exactly the classic unsharded service).
    pub fn sharded(rpc: RpcClient, shards: usize) -> DirClient {
        DirClient {
            rpc,
            route: Arc::new(Route::Sharded(ShardMap::new(shards))),
            next_create: Arc::new(AtomicUsize::new(0)),
            cache: None,
        }
    }

    /// Attaches a lease-fenced read cache: lookups are served locally
    /// while their directory's lease holds (see [`crate::cache`] for
    /// the invariant). The cache's invalidation listener
    /// ([`crate::cache::start_invalidation_listener`]) **must** be
    /// running on this client's machine, or every write touching a
    /// cached directory stalls for a full lease expiry.
    #[must_use]
    pub fn with_cache(mut self, cache: DirCache) -> DirClient {
        self.cache = Some(cache);
        self
    }

    /// This client's cache counters, if a cache is attached.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(DirCache::stats)
    }

    /// Starts this client's root-placement round-robin at `offset`
    /// instead of shard 0. Round-robin state is per client object; a
    /// deployment spawning one client per machine should hand each a
    /// distinct offset (e.g. the machine index), or every machine's
    /// *first* create lands on shard 0 and re-creates the very
    /// single-sequencer hotspot sharding removes.
    #[must_use]
    pub fn with_create_offset(self, offset: usize) -> DirClient {
        self.next_create.store(offset, Ordering::Relaxed);
        self
    }

    /// The port serving the shard `cap` lives on. An unrecognized port
    /// falls back to shard 0, whose servers will answer
    /// `BadCapability` — the same answer a forged capability gets.
    fn port_of_cap(&self, cap: &Capability) -> Port {
        match &*self.route {
            Route::Single(p) => *p,
            Route::Sharded(m) => match m.shard_of_cap(cap) {
                Some(shard) => m.public_port(shard),
                None => m.public_port(0),
            },
        }
    }

    /// Where the next fresh root directory is placed (round-robin over
    /// the shards).
    fn create_port(&self) -> Port {
        match &*self.route {
            Route::Single(p) => *p,
            Route::Sharded(m) => {
                let k = self.next_create.fetch_add(1, Ordering::Relaxed);
                m.public_port(k % m.shards())
            }
        }
    }

    /// Wraps one public operation in a client span and a latency
    /// histogram observation (family = span name, e.g. `cli.create_in`).
    /// The span is a root when the process has no ambient trace context
    /// (the normal case) and a child when one composite public op (e.g.
    /// [`delete_from`](DirClient::delete_from)) calls another, so every
    /// top-level client call yields exactly one connected span tree.
    /// With telemetry disabled this is a plain call to `f`.
    fn op<T>(
        &self,
        ctx: &Ctx,
        name: &'static str,
        f: impl FnOnce() -> Result<T, DirClientError>,
    ) -> Result<T, DirClientError> {
        let tele = Telemetry::from_handle(&ctx.handle());
        if !tele.is_enabled() {
            return f();
        }
        let machine = u64::from(self.rpc.addr().0);
        let outer = amoeba_telemetry::current_ctx();
        let span = if outer.is_some() {
            tele.begin_child(name, machine, outer)
        } else {
            tele.begin_root(name, machine)
        };
        let prev = amoeba_telemetry::set_current_ctx(span);
        let start = ctx.now();
        let r = f();
        amoeba_telemetry::set_current_ctx(prev);
        tele.end(span);
        tele.observe_since(name, start);
        r
    }

    fn call(&self, ctx: &Ctx, port: Port, req: &DirRequest) -> Result<DirReply, DirClientError> {
        let bytes = self.rpc.trans(ctx, port, req.encode())?;
        DirReply::decode(&bytes).map_err(|_| DirClientError::Protocol)
    }

    fn expect_cap(
        &self,
        ctx: &Ctx,
        port: Port,
        req: &DirRequest,
    ) -> Result<Capability, DirClientError> {
        match self.call(ctx, port, req)? {
            DirReply::Cap(c) => Ok(c),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    /// Translates a capability through the learned relocation hints
    /// (identity on unsharded routes and unknown capabilities).
    fn resolve_cap(&self, cap: Capability) -> Capability {
        match &*self.route {
            Route::Single(_) => cap,
            Route::Sharded(m) => m.resolve(&cap),
        }
    }

    /// Records a forwarding hint learned from a [`DirReply::Moved`].
    /// Cached entries of the moved directory are dropped: its new home
    /// grants its own leases, and the old home's lease must not keep
    /// serving rows across the migration.
    fn learn(&self, from: (Port, u64), to: (Port, u64)) {
        if let Some(cache) = &self.cache {
            cache.forget(from.0.as_raw(), from.1);
        }
        if let Route::Sharded(m) = &*self.route {
            m.learn(from, to);
        }
    }

    /// Belt-and-braces drop after this client's own writes (the
    /// server's invalidation callback also covers them).
    fn forget_cached(&self, port: Port, object: u64) {
        if let Some(cache) = &self.cache {
            cache.forget(port.as_raw(), object);
        }
    }

    /// The bounded re-resolve loop every capability-addressed call runs:
    /// translate the capability through the relocation cache, rebuild
    /// the request with the translated capability (same rights and
    /// check — migration preserves the raw check), send, and on a
    /// `Moved` answer learn the hint and retry at the new location.
    /// Returns the final reply together with the capability it was
    /// produced for (the directory's current home).
    fn call_chasing(
        &self,
        ctx: &Ctx,
        cap: Capability,
        build: impl Fn(Capability) -> DirRequest,
    ) -> Result<(DirReply, Capability), DirClientError> {
        let mut cur = self.resolve_cap(cap);
        for _ in 0..MAX_CHASE {
            let port = self.port_of_cap(&cur);
            match self.call(ctx, port, &build(cur))? {
                DirReply::Moved {
                    object,
                    to_port,
                    to_object,
                } => {
                    // Only single-directory requests flow through here,
                    // so the moved object is `cur`'s; re-resolving from
                    // the original follows the now-extended chain.
                    self.learn((port, object), (Port::from_raw(to_port), to_object));
                    cur = self.resolve_cap(cap);
                }
                reply => return Ok((reply, cur)),
            }
        }
        Err(DirClientError::Protocol)
    }

    fn expect_ok_chasing(
        &self,
        ctx: &Ctx,
        cap: Capability,
        build: impl Fn(Capability) -> DirRequest,
    ) -> Result<(), DirClientError> {
        let (reply, cur) = self.call_chasing(ctx, cap, build)?;
        self.forget_cached(cur.port, cur.object);
        match reply {
            DirReply::Ok => Ok(()),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    /// Creates a directory; returns its owner capability. On a sharded
    /// deployment the directory is placed round-robin.
    ///
    /// # Errors
    ///
    /// Service errors ([`DirError`]) or transport failures.
    pub fn create_dir(&self, ctx: &Ctx, columns: &[&str]) -> Result<Capability, DirClientError> {
        let req = DirRequest::CreateDir {
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
        };
        self.op(ctx, "cli.create_dir", || {
            self.expect_cap(ctx, self.create_port(), &req)
        })
    }

    /// Creates a directory *and links it into `parent` under `name`* —
    /// the cross-shard two-step: an idempotent keyed create on the
    /// child's home shard (a stable hash of `(parent, name)`), then an
    /// idempotent link on the parent's shard. Retrying after any
    /// failure converges on exactly one child directory and one row;
    /// a name already linked to *another* directory of this service
    /// converges on that directory ("ensure a child exists at name"),
    /// while a row holding a foreign capability fails
    /// [`DirError::DuplicateName`].
    ///
    /// # Errors
    ///
    /// Service errors or transport failures; after a partial failure,
    /// retry the whole call.
    pub fn create_in(
        &self,
        ctx: &Ctx,
        parent: Capability,
        name: &str,
        columns: &[&str],
        col_rights: Vec<Rights>,
    ) -> Result<Capability, DirClientError> {
        self.op(ctx, "cli.create_in", || {
            self.create_in_inner(ctx, parent, name, columns, col_rights)
        })
    }

    fn create_in_inner(
        &self,
        ctx: &Ctx,
        parent: Capability,
        name: &str,
        columns: &[&str],
        col_rights: Vec<Rights>,
    ) -> Result<Capability, DirClientError> {
        let child_port = match &*self.route {
            Route::Single(p) => *p,
            Route::Sharded(m) => m.public_port(m.child_shard(&parent, name)),
        };
        // Step 1: keyed create on the child's home shard (idempotent).
        let child = self.expect_cap(
            ctx,
            child_port,
            &DirRequest::CreateKeyed {
                columns: columns.iter().map(|s| (*s).to_owned()).collect(),
                key: ShardMap::completion_key(&parent, name),
            },
        )?;
        // Step 2: link it into the parent (idempotent; chases the
        // parent's forwarding stubs if it migrated).
        match self.expect_ok_chasing(ctx, parent, |p| DirRequest::AppendLink {
            dir: p,
            name: name.to_owned(),
            cap: child,
            col_rights: col_rights.clone(),
        }) {
            Ok(()) => Ok(child),
            // The row already holds a *different* directory: converge
            // on it ("ensure a child directory linked at name"). This
            // is the recovery path for a completion record lost to a
            // whole-shard disk salvage — the retry's fresh child is
            // orphaned (storage leak, reclaimable) but the namespace
            // converges on the originally linked directory instead of
            // failing DuplicateName forever.
            Err(DirClientError::Service(DirError::DuplicateName)) => {
                match self.lookup(ctx, parent, name)? {
                    Some(existing)
                        if match &*self.route {
                            Route::Single(p) => existing.port == *p,
                            Route::Sharded(m) => m.shard_of_cap(&existing).is_some(),
                        } =>
                    {
                        Ok(existing)
                    }
                    // A foreign (non-directory) capability under that
                    // name is a genuine conflict.
                    _ => Err(DirError::DuplicateName.into()),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Deletes the row `name` of `parent` *and the directory it points
    /// to* — the cross-shard two-step mirror of
    /// [`create_in`](DirClient::create_in), child first: delete the
    /// child directory on its home shard (already-gone is success),
    /// then unlink the row (already-unlinked is success). A crash
    /// between the steps leaves a visible dangling row; retrying
    /// converges. The resolved child capability must carry
    /// [`Rights::ADMIN`] for the delete; rows holding foreign
    /// (non-directory-service) capabilities only lose their row.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures; after a partial failure,
    /// retry the whole call.
    pub fn delete_from(
        &self,
        ctx: &Ctx,
        parent: Capability,
        name: &str,
    ) -> Result<(), DirClientError> {
        self.op(ctx, "cli.delete_from", || {
            self.delete_from_inner(ctx, parent, name)
        })
    }

    fn delete_from_inner(
        &self,
        ctx: &Ctx,
        parent: Capability,
        name: &str,
    ) -> Result<(), DirClientError> {
        if let Some(child) = self.lookup(ctx, parent, name)? {
            let ours = match &*self.route {
                Route::Single(p) => child.port == *p,
                Route::Sharded(m) => m.shard_of_cap(&child).is_some(),
            };
            if ours {
                match self.delete_dir(ctx, child) {
                    Ok(()) => {}
                    // Already deleted by an earlier, partially failed
                    // attempt: converge.
                    Err(DirClientError::Service(DirError::BadCapability)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        self.expect_ok_chasing(ctx, parent, |p| DirRequest::Unlink {
            dir: p,
            name: name.to_owned(),
        })
    }

    /// Deletes a directory (needs [`Rights::ADMIN`]).
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn delete_dir(&self, ctx: &Ctx, cap: Capability) -> Result<(), DirClientError> {
        self.op(ctx, "cli.delete_dir", || {
            self.expect_ok_chasing(ctx, cap, |c| DirRequest::DeleteDir { cap: c })
        })
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn list(&self, ctx: &Ctx, cap: Capability) -> Result<Listing, DirClientError> {
        self.op(ctx, "cli.list", || {
            match self
                .call_chasing(ctx, cap, |c| DirRequest::ListDir { cap: c })?
                .0
            {
                DirReply::Listing { columns, rows } => Ok(Listing { columns, rows }),
                DirReply::Err(e) => Err(e.into()),
                _ => Err(DirClientError::Protocol),
            }
        })
    }

    /// Appends a row (needs [`Rights::MODIFY`] on `dir`).
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn append_row(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
        cap: Capability,
        col_rights: Vec<Rights>,
    ) -> Result<(), DirClientError> {
        self.op(ctx, "cli.append_row", || {
            self.expect_ok_chasing(ctx, dir, |d| DirRequest::AppendRow {
                dir: d,
                name: name.to_owned(),
                cap,
                col_rights: col_rights.clone(),
            })
        })
    }

    /// Changes a row's per-column rights masks.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn chmod_row(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
        col_rights: Vec<Rights>,
    ) -> Result<(), DirClientError> {
        self.op(ctx, "cli.chmod_row", || {
            self.expect_ok_chasing(ctx, dir, |d| DirRequest::ChmodRow {
                dir: d,
                name: name.to_owned(),
                col_rights: col_rights.clone(),
            })
        })
    }

    /// Deletes a row.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn delete_row(&self, ctx: &Ctx, dir: Capability, name: &str) -> Result<(), DirClientError> {
        self.op(ctx, "cli.delete_row", || {
            self.expect_ok_chasing(ctx, dir, |d| DirRequest::DeleteRow {
                dir: d,
                name: name.to_owned(),
            })
        })
    }

    /// Looks up several (directory, name) pairs at once. On a sharded
    /// deployment the set is split per shard and the answers merged
    /// back into request order. With a cache attached
    /// ([`with_cache`](DirClient::with_cache)), items covered by a live
    /// lease are answered locally with zero packets; the misses are
    /// fetched one `FetchDir` per distinct directory, installing fresh
    /// leases along the way.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn lookup_set(
        &self,
        ctx: &Ctx,
        items: Vec<(Capability, String)>,
    ) -> Result<Vec<Option<Capability>>, DirClientError> {
        self.op(ctx, "cli.lookup", || match self.cache.clone() {
            Some(cache) => self.lookup_set_cached(ctx, &cache, items),
            None => self.lookup_set_uncached(ctx, items),
        })
    }

    /// The cached read path: split lease-covered hits from misses,
    /// answer the hits locally, fetch each missed directory once.
    fn lookup_set_cached(
        &self,
        ctx: &Ctx,
        cache: &DirCache,
        items: Vec<(Capability, String)>,
    ) -> Result<Vec<Option<Capability>>, DirClientError> {
        let now_us = ctx.now().as_nanos() / 1_000;
        let mut out = vec![None; items.len()];
        let mut missed: Vec<usize> = Vec::new();
        for (i, (cap, name)) in items.iter().enumerate() {
            let cur = self.resolve_cap(*cap);
            match cache.lookup(now_us, &cur, name) {
                Some(answer) => out[i] = answer,
                None => missed.push(i),
            }
        }
        if missed.is_empty() {
            return Ok(out);
        }
        // One fetch per distinct directory capability among the misses.
        let mut groups: Vec<(Capability, Vec<usize>)> = Vec::new();
        for &i in &missed {
            let cap = items[i].0;
            match groups.iter_mut().find(|(c, _)| *c == cap) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((cap, vec![i])),
            }
        }
        let mut fallback: Vec<(Capability, String)> = Vec::new();
        let mut fallback_idx: Vec<usize> = Vec::new();
        for (cap, idxs) in groups {
            match self.fetch_into_cache(ctx, cache, cap)? {
                Some(rows) => {
                    for i in idxs {
                        out[i] = rows.get(&items[i].1).copied();
                    }
                }
                // Uncacheable (the service refused the fetch, or a
                // revocation raced it): the plain read path answers
                // with the server's exact semantics.
                None => {
                    for i in idxs {
                        fallback_idx.push(i);
                        fallback.push(items[i].clone());
                    }
                }
            }
        }
        if !fallback.is_empty() {
            let answers = self.lookup_set_uncached(ctx, fallback)?;
            for (k, i) in fallback_idx.into_iter().enumerate() {
                out[i] = answers[k];
            }
        }
        Ok(out)
    }

    /// The cache-miss path: fetch a directory's visible rows plus a
    /// read lease (chasing `Moved` forwarding like every other call)
    /// and install them. `Ok(None)` means the snapshot may not be
    /// served — the service refused the fetch (e.g. a bad capability,
    /// which the plain lookup path answers per-item) or its lease was
    /// revoked while in flight.
    fn fetch_into_cache(
        &self,
        ctx: &Ctx,
        cache: &DirCache,
        cap: Capability,
    ) -> Result<Option<HashMap<String, Capability>>, DirClientError> {
        let mut cur = self.resolve_cap(cap);
        for _ in 0..MAX_CHASE {
            let port = self.port_of_cap(&cur);
            // The revocation epoch is read before the request leaves:
            // an invalidation arriving while the fetch is in flight
            // makes the snapshot unservable (it may predate the
            // acknowledged write that revoked it).
            let epoch = cache.epoch(port.as_raw(), cur.object);
            let req = DirRequest::FetchDir {
                cap: cur,
                owner: cache.owner(),
                cb_port: cache.cb_port().as_raw(),
                ttl_us: cache.ttl_us(),
            };
            match self.call(ctx, port, &req)? {
                DirReply::Moved {
                    object,
                    to_port,
                    to_object,
                } => {
                    self.learn((port, object), (Port::from_raw(to_port), to_object));
                    cur = self.resolve_cap(cap);
                }
                DirReply::Snapshot {
                    seqno: _,
                    deadline_us,
                    renewed,
                    columns: _,
                    rows,
                } => {
                    if renewed {
                        cache.note_renewal_saved();
                    }
                    let now_us = ctx.now().as_nanos() / 1_000;
                    let map: HashMap<String, Capability> =
                        rows.into_iter().map(|(n, c, _)| (n, c)).collect();
                    if cache.install(epoch, &cur, map.clone(), deadline_us, now_us) {
                        return Ok(Some(map));
                    }
                    return Ok(None);
                }
                DirReply::Err(_) => return Ok(None),
                _ => return Err(DirClientError::Protocol),
            }
        }
        Err(DirClientError::Protocol)
    }

    /// The uncached read path (and the cached path's fallback).
    fn lookup_set_uncached(
        &self,
        ctx: &Ctx,
        items: Vec<(Capability, String)>,
    ) -> Result<Vec<Option<Capability>>, DirClientError> {
        // Bounded re-resolve loop: a `Moved` answer for any item teaches
        // the relocation cache and redoes the grouping with the fresher
        // translations.
        'chase: for _ in 0..MAX_CHASE {
            let translated: Vec<(Capability, String)> = items
                .iter()
                .map(|(cap, name)| (self.resolve_cap(*cap), name.clone()))
                .collect();
            let mut groups: Vec<(Port, Vec<usize>)> = Vec::new();
            for (i, (cap, _)) in translated.iter().enumerate() {
                let port = self.port_of_cap(cap);
                match groups.iter_mut().find(|(p, _)| *p == port) {
                    Some((_, idxs)) => idxs.push(i),
                    None => groups.push((port, vec![i])),
                }
            }
            let mut out = vec![None; items.len()];
            for (port, idxs) in groups {
                let sub: Vec<(Capability, String)> =
                    idxs.iter().map(|i| translated[*i].clone()).collect();
                match self.call(ctx, port, &DirRequest::LookupSet { items: sub })? {
                    DirReply::Caps(v) if v.len() == idxs.len() => {
                        for (k, i) in idxs.into_iter().enumerate() {
                            out[i] = v[k];
                        }
                    }
                    DirReply::Moved {
                        object,
                        to_port,
                        to_object,
                    } => {
                        self.learn((port, object), (Port::from_raw(to_port), to_object));
                        continue 'chase;
                    }
                    DirReply::Err(e) => return Err(e.into()),
                    _ => return Err(DirClientError::Protocol),
                }
            }
            return Ok(out);
        }
        Err(DirClientError::Protocol)
    }

    /// Looks up one name.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn lookup(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
    ) -> Result<Option<Capability>, DirClientError> {
        let mut v = self.lookup_set(ctx, vec![(dir, name.to_owned())])?;
        v.pop().ok_or(DirClientError::Protocol)
    }

    /// Replaces the capabilities in a set of rows. Indivisible within
    /// each shard; a set spanning shards is applied shard by shard (in
    /// shard-port order of first appearance) and is *convergent*, not
    /// atomic — a concurrent reader may observe a prefix.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn replace_set(
        &self,
        ctx: &Ctx,
        items: Vec<(Capability, String, Capability)>,
    ) -> Result<(), DirClientError> {
        self.op(ctx, "cli.replace_set", || {
            self.replace_set_inner(ctx, items)
        })
    }

    fn replace_set_inner(
        &self,
        ctx: &Ctx,
        items: Vec<(Capability, String, Capability)>,
    ) -> Result<(), DirClientError> {
        type Replacement = (Capability, String, Capability);
        // Same bounded re-resolve loop as `lookup_set`. Shard groups
        // already applied before a `Moved` round are re-applied —
        // ReplaceSet is idempotent (same capability into the same row).
        'chase: for _ in 0..MAX_CHASE {
            let translated: Vec<Replacement> = items
                .iter()
                .map(|(dir, name, cap)| (self.resolve_cap(*dir), name.clone(), *cap))
                .collect();
            let mut groups: Vec<(Port, Vec<Replacement>)> = Vec::new();
            for item in translated {
                let port = self.port_of_cap(&item.0);
                match groups.iter_mut().find(|(p, _)| *p == port) {
                    Some((_, sub)) => sub.push(item),
                    None => groups.push((port, vec![item])),
                }
            }
            for (port, sub) in groups {
                let touched: Vec<(Port, u64)> =
                    sub.iter().map(|(d, _, _)| (d.port, d.object)).collect();
                match self.call(ctx, port, &DirRequest::ReplaceSet { items: sub })? {
                    DirReply::Ok => {
                        for (p, o) in touched {
                            self.forget_cached(p, o);
                        }
                    }
                    DirReply::Moved {
                        object,
                        to_port,
                        to_object,
                    } => {
                        self.learn((port, object), (Port::from_raw(to_port), to_object));
                        continue 'chase;
                    }
                    DirReply::Err(e) => return Err(e.into()),
                    _ => return Err(DirClientError::Protocol),
                }
            }
            return Ok(());
        }
        Err(DirClientError::Protocol)
    }

    /// Moves a directory to another shard: the crash-convergent
    /// copy + tombstone two-step described in the [`crate::shard`]
    /// docs. Requires the **owner** capability; returns the directory's
    /// capability at its new home (old capabilities remain valid
    /// through the forwarding stub). Fails [`DirError::Stale`] if a
    /// sustained stream of concurrent updates wins every CAS round —
    /// retry later. Any partial failure (either shard or this
    /// coordinator crashing mid-way) leaves a retryable intermediate: a
    /// repeat call converges on the same copy via the migration key.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures; retry the whole call.
    pub fn migrate(
        &self,
        ctx: &Ctx,
        dir: Capability,
        target_shard: usize,
    ) -> Result<Capability, DirClientError> {
        self.op(ctx, "cli.migrate", || {
            self.migrate_inner(ctx, dir, target_shard)
        })
    }

    fn migrate_inner(
        &self,
        ctx: &Ctx,
        dir: Capability,
        target_shard: usize,
    ) -> Result<Capability, DirClientError> {
        let map = match &*self.route {
            Route::Sharded(m) if m.shards() > 1 => m.clone(),
            _ => return Err(DirClientError::Service(DirError::Malformed)),
        };
        if target_shard >= map.shards() {
            return Err(DirClientError::Service(DirError::Malformed));
        }
        let target_port = map.public_port(target_shard);
        for _ in 0..MAX_MIGRATE_ROUNDS {
            // Read the directory where it currently lives (chasing any
            // existing stubs), including its raw check and CAS seqno.
            let (reply, home) =
                self.call_chasing(ctx, dir, |c| DirRequest::ExportDir { cap: c })?;
            let (check, seqno, columns, rows) = match reply {
                DirReply::Export {
                    check,
                    seqno,
                    columns,
                    rows,
                } => (check, seqno, columns, rows),
                DirReply::Err(e) => return Err(e.into()),
                _ => return Err(DirClientError::Protocol),
            };
            let home = Capability::owner(home.port, home.object, check);
            if home.port == target_port {
                return Ok(home); // already (or meanwhile) at the target
            }
            // Step 1: keyed upsert of the dark copy on the target shard.
            let key = ShardMap::migration_key(&home, target_port);
            let installed = self.expect_cap(
                ctx,
                target_port,
                &DirRequest::InstallDir {
                    columns,
                    rows,
                    check,
                    key,
                },
            )?;
            // Step 2: CAS the tombstone + forwarding stub onto the
            // source. A concurrent update since the export fails it
            // `Stale` and the loop re-copies — nothing is lost.
            match self.call(
                ctx,
                home.port,
                &DirRequest::InstallStub {
                    dir: home,
                    to_port: installed.port.as_raw(),
                    to_object: installed.object,
                    expected_seqno: seqno,
                },
            )? {
                DirReply::Ok => {
                    self.forget_cached(home.port, home.object);
                    self.forget_cached(installed.port, installed.object);
                    map.learn((home.port, home.object), (installed.port, installed.object));
                    return Ok(installed);
                }
                DirReply::Err(DirError::Stale) => continue,
                DirReply::Moved {
                    object,
                    to_port,
                    to_object,
                } => {
                    // Another coordinator migrated it first: converge on
                    // the location it actually went to — and reclaim our
                    // now-unreferenced dark copy if it went elsewhere
                    // (same-shard races share one keyed copy and answer
                    // Ok above, so this is a genuinely foreign copy).
                    let to = (Port::from_raw(to_port), to_object);
                    map.learn((home.port, object), to);
                    if to != (installed.port, installed.object) {
                        let _ = self.call(
                            ctx,
                            installed.port,
                            &DirRequest::DeleteDir { cap: installed },
                        );
                    }
                    return Ok(Capability::owner(to.0, to.1, check));
                }
                DirReply::Err(e) => return Err(e.into()),
                _ => return Err(DirClientError::Protocol),
            }
        }
        Err(DirClientError::Service(DirError::Stale))
    }
}

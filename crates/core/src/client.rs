//! The client library: typed wrappers over the Fig. 2 operations, plus
//! the shard-routing layer.
//!
//! A [`DirClient`] talks either to a single service port (the classic
//! unsharded deployment, [`DirClient::new`]) or to a sharded deployment
//! ([`DirClient::sharded`]), in which case every operation is routed by
//! the [`ShardMap`]: ops on an existing directory go to the shard burned
//! into its capability's port, fresh root creates are placed
//! round-robin, and the cross-shard operations
//! ([`create_in`](DirClient::create_in) /
//! [`delete_from`](DirClient::delete_from)) run the deterministic
//! two-step protocol described in the [`crate::shard`] module docs.
//! With one shard the routed client is indistinguishable from the
//! classic one.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use amoeba_flip::Port;
use amoeba_rpc::{RpcClient, RpcError};
use amoeba_sim::Ctx;

use crate::capability::Capability;
use crate::ops::{DirError, DirReply, DirRequest};
use crate::rights::Rights;
use crate::shard::ShardMap;

/// Client-side errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirClientError {
    /// The service reported a failure.
    Service(DirError),
    /// Transport failure (no server reachable).
    Rpc(RpcError),
    /// The server answered something unintelligible.
    Protocol,
}

impl std::fmt::Display for DirClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirClientError::Service(e) => write!(f, "directory service: {e}"),
            DirClientError::Rpc(e) => write!(f, "transport: {e}"),
            DirClientError::Protocol => f.write_str("malformed reply"),
        }
    }
}

impl std::error::Error for DirClientError {}

impl From<RpcError> for DirClientError {
    fn from(e: RpcError) -> Self {
        DirClientError::Rpc(e)
    }
}

impl From<DirError> for DirClientError {
    fn from(e: DirError) -> Self {
        DirClientError::Service(e)
    }
}

/// A listing returned by [`DirClient::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Listing {
    /// Column names.
    pub columns: Vec<String>,
    /// (name, capability restricted to your effective rights, visible
    /// column masks).
    pub rows: Vec<(String, Capability, Vec<Rights>)>,
}

/// How requests map onto service ports.
#[derive(Debug)]
enum Route {
    /// Everything to one fixed port (unsharded, or a custom service).
    Single(Port),
    /// Per-shard ports through the shard map.
    Sharded(ShardMap),
}

/// A typed client for the directory service (any implementation).
#[derive(Debug, Clone)]
pub struct DirClient {
    rpc: RpcClient,
    route: Arc<Route>,
    /// Round-robin cursor for placing fresh root directories.
    next_create: Arc<AtomicUsize>,
}

impl DirClient {
    /// Creates a client that locates servers of `service` through `rpc`
    /// (a single-group deployment).
    pub fn new(rpc: RpcClient, service: Port) -> DirClient {
        DirClient {
            rpc,
            route: Arc::new(Route::Single(service)),
            next_create: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Creates a client for a directory service sharded `shards` ways
    /// (`1` is exactly the classic unsharded service).
    pub fn sharded(rpc: RpcClient, shards: usize) -> DirClient {
        DirClient {
            rpc,
            route: Arc::new(Route::Sharded(ShardMap::new(shards))),
            next_create: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Starts this client's root-placement round-robin at `offset`
    /// instead of shard 0. Round-robin state is per client object; a
    /// deployment spawning one client per machine should hand each a
    /// distinct offset (e.g. the machine index), or every machine's
    /// *first* create lands on shard 0 and re-creates the very
    /// single-sequencer hotspot sharding removes.
    #[must_use]
    pub fn with_create_offset(self, offset: usize) -> DirClient {
        self.next_create.store(offset, Ordering::Relaxed);
        self
    }

    /// The port serving the shard `cap` lives on. An unrecognized port
    /// falls back to shard 0, whose servers will answer
    /// `BadCapability` — the same answer a forged capability gets.
    fn port_of_cap(&self, cap: &Capability) -> Port {
        match &*self.route {
            Route::Single(p) => *p,
            Route::Sharded(m) => match m.shard_of_cap(cap) {
                Some(shard) => m.public_port(shard),
                None => m.public_port(0),
            },
        }
    }

    /// Where the next fresh root directory is placed (round-robin over
    /// the shards).
    fn create_port(&self) -> Port {
        match &*self.route {
            Route::Single(p) => *p,
            Route::Sharded(m) => {
                let k = self.next_create.fetch_add(1, Ordering::Relaxed);
                m.public_port(k % m.shards())
            }
        }
    }

    fn call(&self, ctx: &Ctx, port: Port, req: &DirRequest) -> Result<DirReply, DirClientError> {
        let bytes = self.rpc.trans(ctx, port, req.encode())?;
        DirReply::decode(&bytes).map_err(|_| DirClientError::Protocol)
    }

    fn expect_ok(&self, ctx: &Ctx, port: Port, req: &DirRequest) -> Result<(), DirClientError> {
        match self.call(ctx, port, req)? {
            DirReply::Ok => Ok(()),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    fn expect_cap(
        &self,
        ctx: &Ctx,
        port: Port,
        req: &DirRequest,
    ) -> Result<Capability, DirClientError> {
        match self.call(ctx, port, req)? {
            DirReply::Cap(c) => Ok(c),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    /// Creates a directory; returns its owner capability. On a sharded
    /// deployment the directory is placed round-robin.
    ///
    /// # Errors
    ///
    /// Service errors ([`DirError`]) or transport failures.
    pub fn create_dir(&self, ctx: &Ctx, columns: &[&str]) -> Result<Capability, DirClientError> {
        let req = DirRequest::CreateDir {
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
        };
        self.expect_cap(ctx, self.create_port(), &req)
    }

    /// Creates a directory *and links it into `parent` under `name`* —
    /// the cross-shard two-step: an idempotent keyed create on the
    /// child's home shard (a stable hash of `(parent, name)`), then an
    /// idempotent link on the parent's shard. Retrying after any
    /// failure converges on exactly one child directory and one row;
    /// a name already linked to *another* directory of this service
    /// converges on that directory ("ensure a child exists at name"),
    /// while a row holding a foreign capability fails
    /// [`DirError::DuplicateName`].
    ///
    /// # Errors
    ///
    /// Service errors or transport failures; after a partial failure,
    /// retry the whole call.
    pub fn create_in(
        &self,
        ctx: &Ctx,
        parent: Capability,
        name: &str,
        columns: &[&str],
        col_rights: Vec<Rights>,
    ) -> Result<Capability, DirClientError> {
        let child_port = match &*self.route {
            Route::Single(p) => *p,
            Route::Sharded(m) => m.public_port(m.child_shard(&parent, name)),
        };
        // Step 1: keyed create on the child's home shard (idempotent).
        let child = self.expect_cap(
            ctx,
            child_port,
            &DirRequest::CreateKeyed {
                columns: columns.iter().map(|s| (*s).to_owned()).collect(),
                key: ShardMap::completion_key(&parent, name),
            },
        )?;
        // Step 2: link it into the parent (idempotent).
        match self.expect_ok(
            ctx,
            self.port_of_cap(&parent),
            &DirRequest::AppendLink {
                dir: parent,
                name: name.to_owned(),
                cap: child,
                col_rights,
            },
        ) {
            Ok(()) => Ok(child),
            // The row already holds a *different* directory: converge
            // on it ("ensure a child directory linked at name"). This
            // is the recovery path for a completion record lost to a
            // whole-shard disk salvage — the retry's fresh child is
            // orphaned (storage leak, reclaimable) but the namespace
            // converges on the originally linked directory instead of
            // failing DuplicateName forever.
            Err(DirClientError::Service(DirError::DuplicateName)) => {
                match self.lookup(ctx, parent, name)? {
                    Some(existing)
                        if match &*self.route {
                            Route::Single(p) => existing.port == *p,
                            Route::Sharded(m) => m.shard_of_cap(&existing).is_some(),
                        } =>
                    {
                        Ok(existing)
                    }
                    // A foreign (non-directory) capability under that
                    // name is a genuine conflict.
                    _ => Err(DirError::DuplicateName.into()),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Deletes the row `name` of `parent` *and the directory it points
    /// to* — the cross-shard two-step mirror of
    /// [`create_in`](DirClient::create_in), child first: delete the
    /// child directory on its home shard (already-gone is success),
    /// then unlink the row (already-unlinked is success). A crash
    /// between the steps leaves a visible dangling row; retrying
    /// converges. The resolved child capability must carry
    /// [`Rights::ADMIN`] for the delete; rows holding foreign
    /// (non-directory-service) capabilities only lose their row.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures; after a partial failure,
    /// retry the whole call.
    pub fn delete_from(
        &self,
        ctx: &Ctx,
        parent: Capability,
        name: &str,
    ) -> Result<(), DirClientError> {
        if let Some(child) = self.lookup(ctx, parent, name)? {
            let ours = match &*self.route {
                Route::Single(p) => child.port == *p,
                Route::Sharded(m) => m.shard_of_cap(&child).is_some(),
            };
            if ours {
                match self.delete_dir(ctx, child) {
                    Ok(()) => {}
                    // Already deleted by an earlier, partially failed
                    // attempt: converge.
                    Err(DirClientError::Service(DirError::BadCapability)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        self.expect_ok(
            ctx,
            self.port_of_cap(&parent),
            &DirRequest::Unlink {
                dir: parent,
                name: name.to_owned(),
            },
        )
    }

    /// Deletes a directory (needs [`Rights::ADMIN`]).
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn delete_dir(&self, ctx: &Ctx, cap: Capability) -> Result<(), DirClientError> {
        self.expect_ok(ctx, self.port_of_cap(&cap), &DirRequest::DeleteDir { cap })
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn list(&self, ctx: &Ctx, cap: Capability) -> Result<Listing, DirClientError> {
        match self.call(ctx, self.port_of_cap(&cap), &DirRequest::ListDir { cap })? {
            DirReply::Listing { columns, rows } => Ok(Listing { columns, rows }),
            DirReply::Err(e) => Err(e.into()),
            _ => Err(DirClientError::Protocol),
        }
    }

    /// Appends a row (needs [`Rights::MODIFY`] on `dir`).
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn append_row(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
        cap: Capability,
        col_rights: Vec<Rights>,
    ) -> Result<(), DirClientError> {
        self.expect_ok(
            ctx,
            self.port_of_cap(&dir),
            &DirRequest::AppendRow {
                dir,
                name: name.to_owned(),
                cap,
                col_rights,
            },
        )
    }

    /// Changes a row's per-column rights masks.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn chmod_row(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
        col_rights: Vec<Rights>,
    ) -> Result<(), DirClientError> {
        self.expect_ok(
            ctx,
            self.port_of_cap(&dir),
            &DirRequest::ChmodRow {
                dir,
                name: name.to_owned(),
                col_rights,
            },
        )
    }

    /// Deletes a row.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn delete_row(&self, ctx: &Ctx, dir: Capability, name: &str) -> Result<(), DirClientError> {
        self.expect_ok(
            ctx,
            self.port_of_cap(&dir),
            &DirRequest::DeleteRow {
                dir,
                name: name.to_owned(),
            },
        )
    }

    /// Looks up several (directory, name) pairs at once. On a sharded
    /// deployment the set is split per shard and the answers merged
    /// back into request order.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn lookup_set(
        &self,
        ctx: &Ctx,
        items: Vec<(Capability, String)>,
    ) -> Result<Vec<Option<Capability>>, DirClientError> {
        let mut groups: Vec<(Port, Vec<usize>)> = Vec::new();
        for (i, (cap, _)) in items.iter().enumerate() {
            let port = self.port_of_cap(cap);
            match groups.iter_mut().find(|(p, _)| *p == port) {
                Some((_, idxs)) => idxs.push(i),
                None => groups.push((port, vec![i])),
            }
        }
        let mut out = vec![None; items.len()];
        for (port, idxs) in groups {
            let sub: Vec<(Capability, String)> = idxs.iter().map(|i| items[*i].clone()).collect();
            match self.call(ctx, port, &DirRequest::LookupSet { items: sub })? {
                DirReply::Caps(v) if v.len() == idxs.len() => {
                    for (k, i) in idxs.into_iter().enumerate() {
                        out[i] = v[k];
                    }
                }
                DirReply::Err(e) => return Err(e.into()),
                _ => return Err(DirClientError::Protocol),
            }
        }
        Ok(out)
    }

    /// Looks up one name.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn lookup(
        &self,
        ctx: &Ctx,
        dir: Capability,
        name: &str,
    ) -> Result<Option<Capability>, DirClientError> {
        let mut v = self.lookup_set(ctx, vec![(dir, name.to_owned())])?;
        v.pop().ok_or(DirClientError::Protocol)
    }

    /// Replaces the capabilities in a set of rows. Indivisible within
    /// each shard; a set spanning shards is applied shard by shard (in
    /// shard-port order of first appearance) and is *convergent*, not
    /// atomic — a concurrent reader may observe a prefix.
    ///
    /// # Errors
    ///
    /// Service errors or transport failures.
    pub fn replace_set(
        &self,
        ctx: &Ctx,
        items: Vec<(Capability, String, Capability)>,
    ) -> Result<(), DirClientError> {
        type Replacement = (Capability, String, Capability);
        let mut groups: Vec<(Port, Vec<Replacement>)> = Vec::new();
        for item in items {
            let port = self.port_of_cap(&item.0);
            match groups.iter_mut().find(|(p, _)| *p == port) {
                Some((_, sub)) => sub.push(item),
                None => groups.push((port, vec![item])),
            }
        }
        for (port, sub) in groups {
            self.expect_ok(ctx, port, &DirRequest::ReplaceSet { items: sub })?;
        }
        Ok(())
    }
}

//! # amoeba-dir-core — the fault-tolerant directory service
//!
//! A full reproduction of *"Using Group Communication to Implement a
//! Fault-Tolerant Directory Service"* (Kaashoek, Tanenbaum & Verstoep,
//! ICDCS 1993): a replicated mapping from ASCII names to Amoeba
//! capabilities, built four ways so they can be compared experimentally:
//!
//! * **Group service** ([`start_group_server`]) — the paper's
//!   contribution: triplicated active replication over totally-ordered
//!   group communication (`SendToGroup`, r = 2), one-copy
//!   serializability, majority rule under partitions, Skeen-based
//!   recovery (Fig. 6).
//! * **Group + NVRAM** — the same protocol committing updates to a 24 KB
//!   NVRAM log instead of the disk (§4.1), with append/delete
//!   annihilation.
//! * **RPC service** ([`start_rpc_server`]) — the duplicated baseline
//!   with an intentions log and lazy replication (§1).
//! * **NFS-like** ([`start_nfs_server`]) — a single-copy,
//!   no-fault-tolerance stand-in for the paper's SunOS/NFS column.
//!
//! The [`cluster`] module assembles complete deployments (Fig. 3 columns:
//! directory + Bullet + disk server per replica) inside the deterministic
//! simulator, with crash, reboot, disk-destruction and partition controls.
//!
//! ## Sharding
//!
//! The group service scales past its single sequencer by splitting the
//! namespace across several replica groups
//! ([`ClusterParams::shards`](cluster::ClusterParams::shards)): each
//! shard is a complete directory service — its own columns, object
//! table, Bullet files and sequencer — on its own public port, routed
//! by the [`ShardMap`] (the shard is burned into every capability's
//! port). Cross-shard operations run a deterministic, idempotent
//! two-step protocol with replicated completion records; see the
//! [`shard`] module docs for the full contract and its invariants. A
//! single-shard deployment is bit-identical to the unsharded service.
//!
//! Placement is no longer static: [`DirClient::migrate`] moves a
//! directory between shards online as a crash-convergent
//! copy + tombstone two-step, the old shard keeps a **forwarding stub**
//! so old capabilities stay valid forever, and a load-driven
//! [`Rebalancer`](cluster::RebalancerParams) — fenced by the replicated
//! lease service ([`start_lease_server`], the fifth `amoeba-rsm`
//! consumer) — drains hot shards without a redeploy.
//!
//! ## The cached read path
//!
//! With [`ClusterParams::dir_cache`](cluster::ClusterParams::dir_cache)
//! set, every client machine runs a lease-fenced [`DirCache`]: a lookup
//! miss fetches the directory's visible rows plus a **read lease** from
//! its shard, and while the lease holds, lookups are served locally
//! with zero packets. Grants are ordered through the group like writes,
//! so any update — initiated at any replica — revokes the covering
//! leases *before it is acknowledged* (invalidation callbacks, with
//! full lease expiry as the fallback for unreachable holders). See the
//! [`cache`] module docs for the exact invariant and its cold-start
//! fence.
//!
//! ## The message pipeline (zero-copy invariants)
//!
//! A directory update travels flip → rpc → group → core as a shared
//! [`Payload`](amoeba_flip::Payload) — an `Arc`-backed buffer with
//! zero-copy slicing — and the pipeline maintains these invariants:
//!
//! 1. **Encode once.** [`DirOp::encode`] sizes its `WireWriter` exactly
//!    and produces the update's bytes in a single allocation; the same
//!    holds for every payload-bearing wire message (`RpcMsg`,
//!    `GroupMsg`, `BulletRequest`/`Reply`).
//! 2. **Never copy on the way down.** `RpcClient::trans`, `Group::send`
//!    and `BulletClient::create` accept `impl Into<Payload>`; retries,
//!    the sequencer's history buffer, BB stores and app-delivery queues
//!    all hold clones of the same buffer (`Payload::clone` is an `Arc`
//!    bump, never a byte copy).
//! 3. **Never copy on the way up.** Decoders run over the packet's
//!    shared buffer (`WireReader::of`) and return embedded byte strings
//!    as zero-copy sub-payloads (`WireReader::payload`), so the op bytes
//!    a replica applies alias the wire buffer they arrived in. Multicast
//!    fan-out clones [`Packet`](amoeba_flip::Packet)s at `Arc` cost.
//! 4. **Structured decode may allocate.** Parsing a `DirOp` or
//!    `Directory` into strings/capabilities allocates for the *parsed
//!    values* — never for the payload bytes themselves.
//!
//! The only deliberate byte copies on a hot path are at the storage
//! boundary (chunking file contents into simulated disk blocks) — see
//! `amoeba-bullet`. On top of the zero-copy spine, the group layer
//! coalesces accepts into `AcceptBatch` multicasts with cumulative acks
//! (see `amoeba_group::GroupConfig::max_batch`), which is what amortizes
//! per-packet protocol cost under concurrent update load.
//!
//! ## Quick start
//!
//! ```
//! use amoeba_dir_core::cluster::{Cluster, ClusterParams, Variant};
//! use amoeba_dir_core::Rights;
//! use amoeba_sim::Simulation;
//! use std::time::Duration;
//!
//! let mut sim = Simulation::new(7);
//! let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
//! let (client, _node) = cluster.client(&sim);
//! let out = sim.spawn("app", move |ctx| {
//!     // Retry until the triplicated service has formed its group.
//!     let root = loop {
//!         match client.create_dir(ctx, &["owner", "other"]) {
//!             Ok(cap) => break cap,
//!             Err(_) => ctx.sleep(Duration::from_millis(100)),
//!         }
//!     };
//!     let file_cap = root; // any capability can be stored
//!     client
//!         .append_row(ctx, root, "hello", file_cap, vec![Rights::ALL, Rights::NONE])
//!         .unwrap();
//!     client.lookup(ctx, root, "hello").unwrap().is_some()
//! });
//! sim.run_for(Duration::from_secs(10));
//! assert_eq!(out.take(), Some(true));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
mod capability;
pub mod cluster;
mod commit_block;
mod config;
mod dir_sm;
mod directory;
pub mod model;
mod object_table;
mod ops;
pub mod path;
pub mod report;
mod rights;
mod server_group;
mod server_lease;
mod server_lock;
mod server_nfs;
mod server_queue;
mod server_registry;
mod server_rpc;
pub mod shard;
mod state;

mod client;

pub use cache::{start_invalidation_listener, CacheParams, CacheStats, DirCache};
pub use capability::{one_way, Capability};
pub use client::{DirClient, DirClientError, Listing};
pub use commit_block::CommitBlock;
pub use config::{DirParams, ServiceConfig, StorageKind};
pub use dir_sm::DirectoryStateMachine;
pub use directory::{DirStructureError, Directory, Row};
pub use object_table::{ObjEntry, ObjectTable};
pub use ops::{DirError, DirOp, DirReply, DirRequest};
pub use report::{ClusterReport, MachineReport};
pub use rights::Rights;
pub use server_group::{start_group_server, GroupDirServer, GroupServerDeps};
pub use server_lease::{
    start_lease_server, LeaseClient, LeaseError, LeaseReply, LeaseRequest, LeaseServer,
    LeaseServerDeps, LeaseStateMachine, LEASE_PORT,
};
pub use server_lock::{
    start_lock_server, LockClient, LockError, LockReply, LockRequest, LockServer, LockServerDeps,
    LockStateMachine,
};
pub use server_nfs::{start_nfs_server, NfsDirServer, NfsServerDeps};
pub use server_queue::{
    start_queue_server, QueueClient, QueueError, QueueReply, QueueRequest, QueueServer,
    QueueServerDeps, QueueStateMachine, QUEUE_PORT,
};
pub use server_registry::{
    start_registry_server, RegistryClient, RegistryError, RegistryReply, RegistryRequest,
    RegistryServer, RegistryServerDeps, RegistryStateMachine, REGISTRY_PORT,
};
pub use server_rpc::{start_rpc_server, RpcDirServer, RpcServerDeps};
pub use shard::ShardMap;

//! # amoeba-dir-core — the fault-tolerant directory service
//!
//! A full reproduction of *"Using Group Communication to Implement a
//! Fault-Tolerant Directory Service"* (Kaashoek, Tanenbaum & Verstoep,
//! ICDCS 1993): a replicated mapping from ASCII names to Amoeba
//! capabilities, built four ways so they can be compared experimentally:
//!
//! * **Group service** ([`start_group_server`]) — the paper's
//!   contribution: triplicated active replication over totally-ordered
//!   group communication (`SendToGroup`, r = 2), one-copy
//!   serializability, majority rule under partitions, Skeen-based
//!   recovery (Fig. 6).
//! * **Group + NVRAM** — the same protocol committing updates to a 24 KB
//!   NVRAM log instead of the disk (§4.1), with append/delete
//!   annihilation.
//! * **RPC service** ([`start_rpc_server`]) — the duplicated baseline
//!   with an intentions log and lazy replication (§1).
//! * **NFS-like** ([`start_nfs_server`]) — a single-copy,
//!   no-fault-tolerance stand-in for the paper's SunOS/NFS column.
//!
//! The [`cluster`] module assembles complete deployments (Fig. 3 columns:
//! directory + Bullet + disk server per replica) inside the deterministic
//! simulator, with crash, reboot, disk-destruction and partition controls.
//!
//! ## Quick start
//!
//! ```
//! use amoeba_dir_core::cluster::{Cluster, ClusterParams, Variant};
//! use amoeba_dir_core::Rights;
//! use amoeba_sim::Simulation;
//! use std::time::Duration;
//!
//! let mut sim = Simulation::new(7);
//! let mut cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
//! let (client, _node) = cluster.client(&sim);
//! let out = sim.spawn("app", move |ctx| {
//!     // Retry until the triplicated service has formed its group.
//!     let root = loop {
//!         match client.create_dir(ctx, &["owner", "other"]) {
//!             Ok(cap) => break cap,
//!             Err(_) => ctx.sleep(Duration::from_millis(100)),
//!         }
//!     };
//!     let file_cap = root; // any capability can be stored
//!     client
//!         .append_row(ctx, root, "hello", file_cap, vec![Rights::ALL, Rights::NONE])
//!         .unwrap();
//!     client.lookup(ctx, root, "hello").unwrap().is_some()
//! });
//! sim.run_for(Duration::from_secs(10));
//! assert_eq!(out.take(), Some(true));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod capability;
pub mod cluster;
mod commit_block;
mod config;
mod directory;
pub mod model;
mod object_table;
mod ops;
pub mod path;
mod recovery;
mod rights;
mod server_group;
mod server_nfs;
mod server_rpc;
mod state;

mod client;

pub use capability::{one_way, Capability};
pub use client::{DirClient, DirClientError, Listing};
pub use commit_block::CommitBlock;
pub use config::{DirParams, ServiceConfig, StorageKind};
pub use directory::{DirStructureError, Directory, Row};
pub use object_table::{ObjEntry, ObjectTable};
pub use ops::{DirError, DirOp, DirReply, DirRequest};
pub use rights::Rights;
pub use server_group::{start_group_server, GroupDirServer, GroupServerDeps};
pub use server_nfs::{start_nfs_server, NfsDirServer, NfsServerDeps};
pub use server_rpc::{start_rpc_server, RpcDirServer, RpcServerDeps};

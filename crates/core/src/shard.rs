//! The shard map: how a sharded directory service is split across
//! several replica groups.
//!
//! One `Replica<DirectoryStateMachine>` group orders every update
//! through one sequencer, which caps update throughput. Sharding splits
//! the namespace across `S` independent groups — each with its own
//! columns, its own sequencer, its own object table and Bullet files —
//! and this module is the only thing that ties them back together.
//!
//! ## Placement and routing
//!
//! * Each shard is a complete directory service on its own public port
//!   ([`ShardMap::public_port`]). With `S == 1` the port is the classic
//!   `"amoeba.dir"`, so a single-shard deployment is bit-identical to
//!   the unsharded service; with `S > 1` shard `k` serves
//!   `"amoeba.dir.s{k}"`.
//! * A directory's **home shard is burned into its capability**: the
//!   capability's port *is* the shard's public port. Routing an
//!   operation on an existing capability is therefore a stable hash of
//!   the capability ([`ShardMap::shard_of_cap`] — a port-table lookup,
//!   never a rehash), and object numbers stay local to each shard's
//!   object table.
//! * A *fresh* root directory ([`crate::DirClient::create_dir`]) is
//!   placed round-robin by the creating client. A directory created
//!   **into a parent** ([`crate::DirClient::create_in`]) is placed by
//!   the stable hash of `(parent capability, name)`
//!   ([`ShardMap::child_shard`]) — deterministic, so a retry of the
//!   same logical create always targets the same shard.
//!
//! ## The cross-shard protocol (deterministic two-step)
//!
//! `create_in(parent, name)` whose child hashes to a different shard
//! than its parent cannot be one replicated op. It is two, each
//! idempotent, always in the same order:
//!
//! 1. **`CreateKeyed`** on the child's shard, carrying the
//!    *completion key* [`ShardMap::completion_key`]`(parent, name)`.
//!    The child shard's state machine keeps a replicated
//!    `key → object` completion record: a repeat of the same key
//!    returns the original directory's capability instead of creating
//!    a second one.
//! 2. **`AppendLink`** on the parent's shard: append the row, or
//!    succeed silently if the row already holds exactly that
//!    capability.
//!
//! A crash (of either shard's sequencer, or of the client) between the
//! steps leaves at most a created-but-unlinked child; *retrying the
//! whole operation* converges — step 1 replays to the same capability,
//! step 2 links it. `delete_from(parent, name)` is the mirror image,
//! child first: delete the child directory (already-gone is success),
//! then `Unlink` the row (already-unlinked is success) — so a crash
//! between the steps leaves a dangling *row* (visible, retryable)
//! rather than an unreachable orphan *directory*.
//!
//! ## Online migration (two-step copy + tombstone)
//!
//! Placement by capability port would pin a directory to its creation
//! shard forever; `migrate(dir, target_shard)`
//! ([`crate::DirClient::migrate`]) moves one online, reusing the
//! completion-record idiom. Two replicated ops, always in this order:
//!
//! 1. **`InstallDir`** on the *target* shard, keyed by
//!    [`ShardMap::migration_key`]`(home, target)`: a full copy of the
//!    directory's rows **and its raw check field**, installed as a dark
//!    object (nothing routes to it yet). The key makes it an idempotent
//!    *upsert* — a retry replaces the copy's contents and answers with
//!    the same capability, so re-copies after a lost race never leak a
//!    second object.
//! 2. **`InstallStub`** on the *source* shard, **conditional on the
//!    directory's sequence number** as of the export: atomically drop
//!    the contents and install a tombstone + forwarding stub
//!    (`object → (target port, target object)`). An update ordered
//!    between the export and this op bumps the seqno and fails the CAS
//!    with `Stale`; the coordinator re-exports and re-installs (step 1
//!    upserts), so **no acknowledged update is ever dropped**. An
//!    access ordered *after* the stub answers `Moved` and the client
//!    chases — every racing op lands on exactly one shard's answer.
//!
//! **Stub semantics.** The source keeps the object's table entry
//! forever: the object number stays reserved (never reallocated) and
//! the entry's check keeps validating old capabilities. Because the
//! migration carries the raw check verbatim, an old capability
//! `(src_port, o, rights, check)` translates to
//! `(dst_port, o', rights, check)` — same rights, same check — and
//! validates unchanged at the target, so **old capabilities stay valid
//! forever**, including ones stored in rows of other directories.
//! Stubs chain (A→B→C) and are chased with a bounded loop; they are
//! garbage only after every referencing capability is gone (stub GC is
//! an explicit non-goal of this layer, see ROADMAP).
//!
//! **Epoch rules.** Client-side, `ShardMap` is a *versioned* mapping:
//! learned forwarding hints accumulate in a relocation cache shared by
//! every clone of the map, and [`ShardMap::relocation_epoch`] bumps on
//! each newly learned hint. Hints only ever *extend* (a relocated
//! directory never moves back under its old identity — the old
//! `(port, object)` is tombstoned for good), so a cached hint is never
//! wrong about direction; at worst it is *short* (the chain grew) and
//! one more `Moved` round extends it, or *dangling* (the target was
//! deleted) and the final shard answers `BadCapability` exactly as a
//! deleted directory should.
//!
//! ## Invariants
//!
//! * Per-shard total order: every shard is an unmodified
//!   `Replica`-driven service, so one-copy serializability holds within
//!   a shard. Cross-shard operations are *convergent*, not atomic: a
//!   reader between the two steps can observe the child without the
//!   link (create) or the link without the child (delete), and a
//!   migration's dark copy before its stub.
//! * Completion records (of keyed creates *and* migration installs)
//!   live in the owning shard's replicated state and travel in its
//!   recovery snapshots, as do forwarding stubs; deleting a directory
//!   deletes its completion records. They survive any crash some
//!   replica of the shard survives. They are **not** written to disk:
//!   if *every* replica of a shard dies in the same flush window and
//!   boots from the salvaged disk prefix, its completion records and
//!   stubs are gone while the directories themselves survive. A
//!   `create_in` retry then creates a fresh (orphaned, reclaimable)
//!   child and hits `DuplicateName` on the link — which the client
//!   resolves by converging on the row's existing directory; a
//!   relocated capability loses its forwarding after such a disaster
//!   (the documented, accepted salvage loss).
//! * The *routing arithmetic* of `ShardMap` is pure over `shards`;
//!   every client and server of a deployment computes identical
//!   placement from the shard count alone. The relocation cache is
//!   advisory client-side state on top — never required for
//!   correctness, only for skipping already-learned hops.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use amoeba_flip::Port;
use parking_lot::Mutex;

use crate::capability::Capability;

/// The service-name prefix all shard ports derive from.
const SERVICE_BASE: &str = "amoeba.dir";

fn fnv1a(seed: u64, parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for part in parts {
        for b in *part {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

/// Routing arithmetic for a directory service of `shards` replica
/// groups, plus the client-side **versioned relocation cache** of
/// learned forwarding hints. See the [module docs](self) for the full
/// contract. Clones share one cache (and epoch); equality compares the
/// routing arithmetic only.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: usize,
    ports: Vec<Port>,
    /// Learned forwarding hints: old `(port, object)` → new location.
    reloc: Arc<Mutex<HashMap<Location, Location>>>,
    /// Bumped once per newly learned hint.
    epoch: Arc<AtomicU64>,
}

impl PartialEq for ShardMap {
    fn eq(&self, other: &Self) -> bool {
        self.shards == other.shards && self.ports == other.ports
    }
}

impl Eq for ShardMap {}

/// Longest forwarding chain [`ShardMap::resolve`] follows; longer
/// chains are finished by further `Moved` rounds, which extend the
/// cache as they go.
const MAX_RELOC_HOPS: usize = 16;

/// A `(port, object)` directory location, relocation-cache currency.
type Location = (Port, u64);

impl ShardMap {
    /// A map for `shards` shards (0 is treated as 1).
    pub fn new(shards: usize) -> ShardMap {
        let shards = shards.max(1);
        let ports = (0..shards)
            .map(|k| Port::from_name(&Self::name_of(k, shards)))
            .collect();
        ShardMap {
            shards,
            ports,
            reloc: Arc::new(Mutex::new(HashMap::new())),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    fn name_of(shard: usize, shards: usize) -> String {
        if shards == 1 {
            SERVICE_BASE.to_owned()
        } else {
            format!("{SERVICE_BASE}.s{shard}")
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The service name shard `shard` runs under (its group, internal
    /// and Bullet ports all derive from it). `"amoeba.dir"` when there
    /// is a single shard — identical to the unsharded service.
    pub fn service_name(&self, shard: usize) -> String {
        Self::name_of(shard % self.shards, self.shards)
    }

    /// The public port of shard `shard`.
    pub fn public_port(&self, shard: usize) -> Port {
        self.ports[shard % self.shards]
    }

    /// Which shard serves `port`, if it is one of ours.
    pub fn shard_of_port(&self, port: Port) -> Option<usize> {
        self.ports.iter().position(|p| *p == port)
    }

    /// The home shard of a capability (`None` for foreign services).
    /// Stable: the shard was burned into the capability's port at
    /// creation.
    pub fn shard_of_cap(&self, cap: &Capability) -> Option<usize> {
        self.shard_of_port(cap.port)
    }

    /// Where a directory created into `parent` under `name` lives: a
    /// stable hash, so every retry of the same logical create targets
    /// the same shard.
    pub fn child_shard(&self, parent: &Capability, name: &str) -> usize {
        (fnv1a(
            0x5AAD,
            &[
                &parent.port.as_raw().to_le_bytes(),
                &parent.object.to_le_bytes(),
                name.as_bytes(),
            ],
        ) % self.shards as u64) as usize
    }

    /// The idempotency key a [`CreateKeyed`](crate::DirOp::CreateKeyed)
    /// for `(parent, name)` carries — deterministic across retries (of
    /// the same parent capability), so the child shard's completion
    /// record can dedup them. The parent's **check field is folded
    /// in**: a completion replay answers with the child's owner
    /// capability, so the key must be computable only by someone
    /// actually holding a valid parent capability — the child's shard
    /// cannot validate the (foreign-shard) parent itself.
    pub fn completion_key(parent: &Capability, name: &str) -> u64 {
        fnv1a(
            0xC0_4471,
            &[
                &parent.port.as_raw().to_le_bytes(),
                &parent.object.to_le_bytes(),
                &parent.check.to_le_bytes(),
                name.as_bytes(),
            ],
        )
    }

    /// The idempotency key a migration's
    /// [`InstallDir`](crate::DirOp::InstallDir) carries: deterministic
    /// for `(current home, target shard)` — across retries *and* across
    /// coordinators, so two racing coordinators upsert the same dark
    /// copy instead of leaking two. The home capability's check is
    /// folded in: the key is computable only by a holder of the owner
    /// capability (a replay answers with the copy's owner capability).
    pub fn migration_key(home: &Capability, target: Port) -> u64 {
        fnv1a(
            0x319_4A7E,
            &[
                &home.port.as_raw().to_le_bytes(),
                &home.object.to_le_bytes(),
                &home.check.to_le_bytes(),
                &target.as_raw().to_le_bytes(),
            ],
        )
    }

    // -----------------------------------------------------------------
    // The versioned relocation cache (client-side forwarding hints).
    // -----------------------------------------------------------------

    /// Records a learned forwarding hint (`from` moved to `to`).
    /// Returns true — and bumps [`relocation_epoch`](Self::relocation_epoch)
    /// — iff the hint was new or changed (chains only ever extend, but a
    /// hint may be *replaced* when a `Moved` answer supersedes a hop the
    /// cache skipped).
    pub fn learn(&self, from: (Port, u64), to: (Port, u64)) -> bool {
        if from == to {
            return false;
        }
        let changed = {
            let mut reloc = self.reloc.lock();
            reloc.insert(from, to) != Some(to)
        };
        if changed {
            self.epoch.fetch_add(1, Ordering::Relaxed);
        }
        changed
    }

    /// How many hints have been learned (monotone): callers caching
    /// derived routing state re-derive when this moves.
    pub fn relocation_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// Translates a capability through the relocation cache: follows
    /// the learned chain from `(cap.port, cap.object)` and rebuilds the
    /// capability at the final hop. Rights and check are preserved —
    /// migration carries the raw check, so the translated capability
    /// validates unchanged. A cap with no hints (or a foreign cap)
    /// comes back untouched.
    pub fn resolve(&self, cap: &Capability) -> Capability {
        let reloc = self.reloc.lock();
        let mut at = (cap.port, cap.object);
        for _ in 0..MAX_RELOC_HOPS {
            match reloc.get(&at) {
                Some(next) => at = *next,
                None => break,
            }
        }
        Capability {
            port: at.0,
            object: at.1,
            ..*cap
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(shards: usize, shard: usize, object: u64) -> Capability {
        Capability::owner(ShardMap::new(shards).public_port(shard), object, 7)
    }

    #[test]
    fn single_shard_uses_the_classic_port() {
        let m = ShardMap::new(1);
        assert_eq!(m.public_port(0), Port::from_name("amoeba.dir"));
        assert_eq!(m.service_name(0), "amoeba.dir");
        let m0 = ShardMap::new(0);
        assert_eq!(m0.shards(), 1);
        assert_eq!(m0.public_port(0), m.public_port(0));
    }

    #[test]
    fn shard_ports_are_distinct_and_resolve_back() {
        let m = ShardMap::new(4);
        for a in 0..4 {
            assert_eq!(m.shard_of_port(m.public_port(a)), Some(a));
            for b in (a + 1)..4 {
                assert_ne!(m.public_port(a), m.public_port(b));
            }
        }
        assert_eq!(m.shard_of_port(Port::from_name("amoeba.dir")), None);
    }

    #[test]
    fn cap_routing_is_stable() {
        let m = ShardMap::new(3);
        let c = cap(3, 2, 9);
        assert_eq!(m.shard_of_cap(&c), Some(2));
        let foreign = Capability::owner(Port::from_name("bullet"), 1, 2);
        assert_eq!(m.shard_of_cap(&foreign), None);
    }

    #[test]
    fn child_placement_and_keys_are_deterministic() {
        let m = ShardMap::new(4);
        let parent = cap(4, 1, 5);
        assert_eq!(m.child_shard(&parent, "x"), m.child_shard(&parent, "x"));
        assert_eq!(
            ShardMap::completion_key(&parent, "x"),
            ShardMap::completion_key(&parent, "x")
        );
        assert_ne!(
            ShardMap::completion_key(&parent, "x"),
            ShardMap::completion_key(&parent, "y")
        );
        // The key is secret-bearing: without the parent's check field
        // it cannot be computed (a replay answers with the child's
        // owner capability, so guessable keys would leak it).
        let forged = Capability { check: 0, ..parent };
        assert_ne!(
            ShardMap::completion_key(&parent, "x"),
            ShardMap::completion_key(&forged, "x")
        );
        // Names spread over shards (not all in one bucket).
        let hit: std::collections::BTreeSet<usize> = (0..32)
            .map(|i| m.child_shard(&parent, &format!("n{i}")))
            .collect();
        assert!(hit.len() > 1, "hashing must spread children across shards");
    }

    #[test]
    fn relocation_cache_follows_chains_and_versions() {
        let m = ShardMap::new(4);
        let c = cap(4, 0, 9);
        // Nothing learned: identity.
        assert_eq!(m.resolve(&c), c);
        assert_eq!(m.relocation_epoch(), 0);
        // One hop.
        assert!(m.learn((m.public_port(0), 9), (m.public_port(2), 5)));
        assert_eq!(m.relocation_epoch(), 1);
        let r = m.resolve(&c);
        assert_eq!((r.port, r.object), (m.public_port(2), 5));
        assert_eq!(
            (r.rights, r.check),
            (c.rights, c.check),
            "identity preserved"
        );
        // The chain extends; resolve follows it end to end.
        assert!(m.learn((m.public_port(2), 5), (m.public_port(3), 8)));
        let r = m.resolve(&c);
        assert_eq!((r.port, r.object), (m.public_port(3), 8));
        // Re-learning the same hint neither bumps the epoch nor loops.
        let epoch = m.relocation_epoch();
        assert!(!m.learn((m.public_port(0), 9), (m.public_port(2), 5)));
        assert_eq!(m.relocation_epoch(), epoch);
        // Clones share the cache.
        let clone = m.clone();
        assert_eq!(
            clone.resolve(&c).port,
            m.public_port(3),
            "clones see learned hints"
        );
        // Unrelated caps stay put.
        let other = cap(4, 1, 9);
        assert_eq!(m.resolve(&other), other);
    }

    #[test]
    fn migration_keys_are_deterministic_and_secret_bearing() {
        let m = ShardMap::new(4);
        let home = cap(4, 1, 5);
        let t2 = m.public_port(2);
        let t3 = m.public_port(3);
        assert_eq!(
            ShardMap::migration_key(&home, t2),
            ShardMap::migration_key(&home, t2),
            "same (home, target) → same key, across coordinators"
        );
        assert_ne!(
            ShardMap::migration_key(&home, t2),
            ShardMap::migration_key(&home, t3)
        );
        let forged = Capability { check: 0, ..home };
        assert_ne!(
            ShardMap::migration_key(&home, t2),
            ShardMap::migration_key(&forged, t2),
            "key uncomputable without the owner capability"
        );
    }
}

//! The shard map: how a sharded directory service is split across
//! several replica groups.
//!
//! One `Replica<DirectoryStateMachine>` group orders every update
//! through one sequencer, which caps update throughput. Sharding splits
//! the namespace across `S` independent groups — each with its own
//! columns, its own sequencer, its own object table and Bullet files —
//! and this module is the only thing that ties them back together.
//!
//! ## Placement and routing
//!
//! * Each shard is a complete directory service on its own public port
//!   ([`ShardMap::public_port`]). With `S == 1` the port is the classic
//!   `"amoeba.dir"`, so a single-shard deployment is bit-identical to
//!   the unsharded service; with `S > 1` shard `k` serves
//!   `"amoeba.dir.s{k}"`.
//! * A directory's **home shard is burned into its capability**: the
//!   capability's port *is* the shard's public port. Routing an
//!   operation on an existing capability is therefore a stable hash of
//!   the capability ([`ShardMap::shard_of_cap`] — a port-table lookup,
//!   never a rehash), and object numbers stay local to each shard's
//!   object table.
//! * A *fresh* root directory ([`crate::DirClient::create_dir`]) is
//!   placed round-robin by the creating client. A directory created
//!   **into a parent** ([`crate::DirClient::create_in`]) is placed by
//!   the stable hash of `(parent capability, name)`
//!   ([`ShardMap::child_shard`]) — deterministic, so a retry of the
//!   same logical create always targets the same shard.
//!
//! ## The cross-shard protocol (deterministic two-step)
//!
//! `create_in(parent, name)` whose child hashes to a different shard
//! than its parent cannot be one replicated op. It is two, each
//! idempotent, always in the same order:
//!
//! 1. **`CreateKeyed`** on the child's shard, carrying the
//!    *completion key* [`ShardMap::completion_key`]`(parent, name)`.
//!    The child shard's state machine keeps a replicated
//!    `key → object` completion record: a repeat of the same key
//!    returns the original directory's capability instead of creating
//!    a second one.
//! 2. **`AppendLink`** on the parent's shard: append the row, or
//!    succeed silently if the row already holds exactly that
//!    capability.
//!
//! A crash (of either shard's sequencer, or of the client) between the
//! steps leaves at most a created-but-unlinked child; *retrying the
//! whole operation* converges — step 1 replays to the same capability,
//! step 2 links it. `delete_from(parent, name)` is the mirror image,
//! child first: delete the child directory (already-gone is success),
//! then `Unlink` the row (already-unlinked is success) — so a crash
//! between the steps leaves a dangling *row* (visible, retryable)
//! rather than an unreachable orphan *directory*.
//!
//! ## Invariants
//!
//! * Per-shard total order: every shard is an unmodified
//!   `Replica`-driven service, so one-copy serializability holds within
//!   a shard. Cross-shard operations are *convergent*, not atomic: a
//!   reader between the two steps can observe the child without the
//!   link (create) or the link without the child (delete).
//! * Completion records live in the child shard's replicated state and
//!   travel in its recovery snapshots; deleting a directory deletes its
//!   completion records. They survive any crash some replica of the
//!   shard survives. They are **not** written to disk: if *every*
//!   replica of a shard dies in the same flush window and boots from
//!   the salvaged disk prefix, its completion records are gone while
//!   the directories themselves survive. A `create_in` retry then
//!   creates a fresh (orphaned, reclaimable) child and hits
//!   `DuplicateName` on the link — which the client resolves by
//!   converging on the row's existing directory, so the namespace
//!   heals even through total-shard disasters.
//! * `ShardMap` is pure arithmetic over `shards`; every client and
//!   server of a deployment computes identical placement from the
//!   shard count alone.

use amoeba_flip::Port;

use crate::capability::Capability;

/// The service-name prefix all shard ports derive from.
const SERVICE_BASE: &str = "amoeba.dir";

fn fnv1a(seed: u64, parts: &[&[u8]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for part in parts {
        for b in *part {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
    }
    h
}

/// Routing arithmetic for a directory service of `shards` replica
/// groups. See the [module docs](self) for the full contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: usize,
    ports: Vec<Port>,
}

impl ShardMap {
    /// A map for `shards` shards (0 is treated as 1).
    pub fn new(shards: usize) -> ShardMap {
        let shards = shards.max(1);
        let ports = (0..shards)
            .map(|k| Port::from_name(&Self::name_of(k, shards)))
            .collect();
        ShardMap { shards, ports }
    }

    fn name_of(shard: usize, shards: usize) -> String {
        if shards == 1 {
            SERVICE_BASE.to_owned()
        } else {
            format!("{SERVICE_BASE}.s{shard}")
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The service name shard `shard` runs under (its group, internal
    /// and Bullet ports all derive from it). `"amoeba.dir"` when there
    /// is a single shard — identical to the unsharded service.
    pub fn service_name(&self, shard: usize) -> String {
        Self::name_of(shard % self.shards, self.shards)
    }

    /// The public port of shard `shard`.
    pub fn public_port(&self, shard: usize) -> Port {
        self.ports[shard % self.shards]
    }

    /// Which shard serves `port`, if it is one of ours.
    pub fn shard_of_port(&self, port: Port) -> Option<usize> {
        self.ports.iter().position(|p| *p == port)
    }

    /// The home shard of a capability (`None` for foreign services).
    /// Stable: the shard was burned into the capability's port at
    /// creation.
    pub fn shard_of_cap(&self, cap: &Capability) -> Option<usize> {
        self.shard_of_port(cap.port)
    }

    /// Where a directory created into `parent` under `name` lives: a
    /// stable hash, so every retry of the same logical create targets
    /// the same shard.
    pub fn child_shard(&self, parent: &Capability, name: &str) -> usize {
        (fnv1a(
            0x5AAD,
            &[
                &parent.port.as_raw().to_le_bytes(),
                &parent.object.to_le_bytes(),
                name.as_bytes(),
            ],
        ) % self.shards as u64) as usize
    }

    /// The idempotency key a [`CreateKeyed`](crate::DirOp::CreateKeyed)
    /// for `(parent, name)` carries — deterministic across retries (of
    /// the same parent capability), so the child shard's completion
    /// record can dedup them. The parent's **check field is folded
    /// in**: a completion replay answers with the child's owner
    /// capability, so the key must be computable only by someone
    /// actually holding a valid parent capability — the child's shard
    /// cannot validate the (foreign-shard) parent itself.
    pub fn completion_key(parent: &Capability, name: &str) -> u64 {
        fnv1a(
            0xC0_4471,
            &[
                &parent.port.as_raw().to_le_bytes(),
                &parent.object.to_le_bytes(),
                &parent.check.to_le_bytes(),
                name.as_bytes(),
            ],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap(shards: usize, shard: usize, object: u64) -> Capability {
        Capability::owner(ShardMap::new(shards).public_port(shard), object, 7)
    }

    #[test]
    fn single_shard_uses_the_classic_port() {
        let m = ShardMap::new(1);
        assert_eq!(m.public_port(0), Port::from_name("amoeba.dir"));
        assert_eq!(m.service_name(0), "amoeba.dir");
        let m0 = ShardMap::new(0);
        assert_eq!(m0.shards(), 1);
        assert_eq!(m0.public_port(0), m.public_port(0));
    }

    #[test]
    fn shard_ports_are_distinct_and_resolve_back() {
        let m = ShardMap::new(4);
        for a in 0..4 {
            assert_eq!(m.shard_of_port(m.public_port(a)), Some(a));
            for b in (a + 1)..4 {
                assert_ne!(m.public_port(a), m.public_port(b));
            }
        }
        assert_eq!(m.shard_of_port(Port::from_name("amoeba.dir")), None);
    }

    #[test]
    fn cap_routing_is_stable() {
        let m = ShardMap::new(3);
        let c = cap(3, 2, 9);
        assert_eq!(m.shard_of_cap(&c), Some(2));
        let foreign = Capability::owner(Port::from_name("bullet"), 1, 2);
        assert_eq!(m.shard_of_cap(&foreign), None);
    }

    #[test]
    fn child_placement_and_keys_are_deterministic() {
        let m = ShardMap::new(4);
        let parent = cap(4, 1, 5);
        assert_eq!(m.child_shard(&parent, "x"), m.child_shard(&parent, "x"));
        assert_eq!(
            ShardMap::completion_key(&parent, "x"),
            ShardMap::completion_key(&parent, "x")
        );
        assert_ne!(
            ShardMap::completion_key(&parent, "x"),
            ShardMap::completion_key(&parent, "y")
        );
        // The key is secret-bearing: without the parent's check field
        // it cannot be computed (a replay answers with the child's
        // owner capability, so guessable keys would leak it).
        let forged = Capability { check: 0, ..parent };
        assert_ne!(
            ShardMap::completion_key(&parent, "x"),
            ShardMap::completion_key(&forged, "x")
        );
        // Names spread over shards (not all in one bucket).
        let hit: std::collections::BTreeSet<usize> = (0..32)
            .map(|i| m.child_shard(&parent, &format!("n{i}")))
            .collect();
        assert!(hit.len() > 1, "hashing must spread children across shards");
    }
}

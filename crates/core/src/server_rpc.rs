//! The RPC directory service: the paper's previous design (§1), used as
//! the experimental baseline.
//!
//! Two servers. Reads are served by either server without communication.
//! An update is coordinated with an **intentions** record: the initiator
//! performs an RPC to the other server, which — unless it is busy with a
//! conflicting operation — appends the intention to its log (a sequential
//! disk write) and answers OK; the initiator then performs the update
//! (new Bullet file + object-table write) and replies to the client. The
//! second replica of the directory is produced **lazily** in the
//! background. No partition tolerance: the paper's RPC service assumes
//! partitions do not happen.

use std::collections::HashSet;
use std::sync::Arc;

use amoeba_bullet::BulletClient;
use amoeba_disk::RawPartition;
use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::Payload;
use amoeba_rpc::{RpcClient, RpcNode, RpcServer};
use amoeba_sim::{Ctx, MailboxTx, NodeId, Resource, Spawn};
use parking_lot::Mutex;

use crate::config::{DirParams, ServiceConfig, StorageKind};
use crate::object_table::ObjectTable;
use crate::ops::{DirError, DirOp, DirReply, DirRequest};
use crate::state::{Applier, Mode, Shared};

/// Peer-coordination messages of the RPC service.
#[derive(Debug, Clone, PartialEq)]
enum PeerMsg {
    /// "I intend to perform this update" (locks the directory remotely).
    Intent {
        useq: u64,
        op: Payload,
    },
    IntentOk,
    /// A conflicting operation is in progress; retry.
    IntentBusy,
    /// Lazy replication: apply this update for real.
    ApplyLazy {
        useq: u64,
        op: Payload,
    },
    ApplyOk,
}

const P_INTENT: u8 = 1;
const P_INTENT_OK: u8 = 2;
const P_INTENT_BUSY: u8 = 3;
const P_APPLY: u8 = 4;
const P_APPLY_OK: u8 = 5;

impl PeerMsg {
    fn encode(&self) -> Payload {
        let mut w = WireWriter::with_capacity(match self {
            PeerMsg::Intent { op, .. } | PeerMsg::ApplyLazy { op, .. } => 1 + 8 + 4 + op.len(),
            _ => 1,
        });
        match self {
            PeerMsg::Intent { useq, op } => {
                w.u8(P_INTENT).u64(*useq).bytes(op);
            }
            PeerMsg::IntentOk => {
                w.u8(P_INTENT_OK);
            }
            PeerMsg::IntentBusy => {
                w.u8(P_INTENT_BUSY);
            }
            PeerMsg::ApplyLazy { useq, op } => {
                w.u8(P_APPLY).u64(*useq).bytes(op);
            }
            PeerMsg::ApplyOk => {
                w.u8(P_APPLY_OK);
            }
        }
        w.finish_payload()
    }

    fn decode(buf: &Payload) -> Result<PeerMsg, DecodeError> {
        let mut r = WireReader::of(buf);
        let m = match r.u8("peer tag")? {
            P_INTENT => PeerMsg::Intent {
                useq: r.u64("useq")?,
                op: r.payload("op")?,
            },
            P_INTENT_OK => PeerMsg::IntentOk,
            P_INTENT_BUSY => PeerMsg::IntentBusy,
            P_APPLY => PeerMsg::ApplyLazy {
                useq: r.u64("useq")?,
                op: r.payload("op")?,
            },
            P_APPLY_OK => PeerMsg::ApplyOk,
            _ => return Err(DecodeError::new("peer tag")),
        };
        r.expect_end("peer trailing")?;
        Ok(m)
    }
}

/// Per-server coordination state of the RPC service.
struct RpcCoord {
    /// Directories currently locked by an in-flight update (object 0 is
    /// the allocation lock taken by creates).
    locked: HashSet<u64>,
    /// Intentions accepted from the peer and not yet applied lazily.
    pending_intents: Vec<(u64, Payload)>,
}

/// Handle to one running RPC directory server.
#[derive(Clone)]
pub struct RpcDirServer {
    pub(crate) shared: Arc<Mutex<Shared>>,
    coord: Arc<Mutex<RpcCoord>>,
    cfg: ServiceConfig,
}

impl std::fmt::Debug for RpcDirServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RpcDirServer({})", self.cfg.me)
    }
}

impl RpcDirServer {
    /// The current logical version (diagnostics/tests).
    pub fn update_seq(&self) -> u64 {
        self.shared.lock().update_seq
    }

    /// How many peer intentions are logged but not yet applied lazily.
    pub fn pending_intents(&self) -> usize {
        self.coord.lock().pending_intents.len()
    }
}

/// Everything needed to start one replica of the RPC directory service.
pub struct RpcServerDeps {
    /// Service configuration (`n` must be 2).
    pub cfg: ServiceConfig,
    /// Performance parameters.
    pub params: DirParams,
    /// The machine.
    pub sim_node: NodeId,
    /// The machine's RPC kernel.
    pub rpc: RpcNode,
    /// This column's Bullet client.
    pub bullet: BulletClient,
    /// The raw partition (commit block + object table).
    pub partition: RawPartition,
    /// The machine's CPU.
    pub cpu: Resource,
}

impl std::fmt::Debug for RpcServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RpcServerDeps(server {})", self.cfg.me)
    }
}

/// Starts one replica of the duplicated RPC directory service.
pub fn start_rpc_server(spawner: &impl Spawn, deps: RpcServerDeps) -> RpcDirServer {
    let RpcServerDeps {
        cfg,
        params,
        sim_node,
        rpc,
        bullet,
        partition,
        cpu,
    } = deps;
    assert_eq!(cfg.n, 2, "the RPC directory service is duplicated");
    let table = ObjectTable::new(partition.clone());
    let mut shared0 = Shared::new(table, cfg.n);
    shared0.mode = Mode::Normal; // no group machinery
    let shared = Arc::new(Mutex::new(shared0));
    let applier = Arc::new(Applier {
        cfg: cfg.clone(),
        storage: StorageKind::Disk,
        shared: Arc::clone(&shared),
        bullet,
        partition,
        nvram: None,
        journal: None,
        max_lease_us: params.max_lease.as_micros() as u64,
        lease_renewals: params.lease_renewals,
    });
    let coord = Arc::new(Mutex::new(RpcCoord {
        locked: HashSet::new(),
        pending_intents: Vec::new(),
    }));
    let server = RpcDirServer {
        shared: Arc::clone(&shared),
        coord: Arc::clone(&coord),
        cfg: cfg.clone(),
    };
    // Lazy-apply queue: the background thread that creates the second
    // replica of updated directories.
    let (lazy_tx, lazy_rx) = spawner.sim_handle().channel::<(u64, Payload)>();

    // Peer service: intentions and lazy applies from the other server.
    // ApplyLazy is queued to a background worker so producing the second
    // replica never delays the next update's intentions (the "lazy
    // replication" of §1); two threads keep the port listening while an
    // intention's log write is in progress.
    let (apply_tx, apply_rx) = spawner.sim_handle().channel::<(u64, Payload)>();
    {
        let applier = Arc::clone(&applier);
        let coord = Arc::clone(&coord);
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("rpcdir{}-applyworker", cfg.me),
            Box::new(move |ctx| loop {
                let (useq, op) = apply_rx.recv(ctx);
                if let Ok(op) = DirOp::decode(&op) {
                    let _ = applier.apply_with_seq(ctx, useq, &op);
                }
                coord.lock().pending_intents.retain(|(s, _)| *s != useq);
            }),
        );
    }
    for pt in 0..2 {
        let srv = RpcServer::new(&rpc, cfg.internal_port(cfg.me));
        let coord = Arc::clone(&coord);
        let params2 = params.clone();
        let apply_tx = apply_tx.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("rpcdir{}-peer{pt}", cfg.me),
            Box::new(move |ctx| loop {
                let incoming = srv.getreq(ctx);
                let reply = match PeerMsg::decode(&incoming.data) {
                    Ok(PeerMsg::Intent { useq, op }) => {
                        let object = DirOp::decode(&op)
                            .map(|o| crate::server_rpc::op_lock_object(&o))
                            .unwrap_or(0);
                        let busy = { coord.lock().locked.contains(&object) };
                        if busy {
                            PeerMsg::IntentBusy
                        } else {
                            // Sequential log append: rotation + transfer,
                            // no full seek (see DirParams).
                            ctx.sleep(params2.intentions_latency);
                            coord.lock().pending_intents.push((useq, op));
                            PeerMsg::IntentOk
                        }
                    }
                    Ok(PeerMsg::ApplyLazy { useq, op }) => {
                        apply_tx.send((useq, op));
                        PeerMsg::ApplyOk
                    }
                    _ => PeerMsg::IntentBusy,
                };
                srv.putrep(&incoming, reply.encode());
            }),
        );
    }

    // Lazy replication sender.
    {
        let rpc_client = RpcClient::new(&rpc);
        let peer_port = cfg.internal_port(1 - cfg.me);
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("rpcdir{}-lazy", cfg.me),
            Box::new(move |ctx| loop {
                let (useq, op) = lazy_rx.recv(ctx);
                let msg = PeerMsg::ApplyLazy { useq, op };
                let _ = rpc_client.trans(ctx, peer_port, msg.encode());
            }),
        );
    }

    // Server (initiator) threads.
    for t in 0..params.server_threads.max(1) {
        let srv = RpcServer::new(&rpc, cfg.public_port);
        let applier = Arc::clone(&applier);
        let coord = Arc::clone(&coord);
        let params = params.clone();
        let cpu = cpu.clone();
        let rpc_client = RpcClient::new(&rpc);
        let peer_port = cfg.internal_port(1 - cfg.me);
        let lazy_tx = lazy_tx.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("rpcdir{}-srv{t}", cfg.me),
            Box::new(move |ctx| {
                rpc_initiator_loop(
                    ctx,
                    &srv,
                    &applier,
                    &coord,
                    &params,
                    &cpu,
                    &rpc_client,
                    peer_port,
                    &lazy_tx,
                )
            }),
        );
    }
    server
}

impl Applier {
    /// Applies an op under an externally supplied sequence number (used by
    /// the RPC service, whose two replicas exchange originator seqnos).
    pub(crate) fn apply_with_seq(&self, ctx: &Ctx, useq: u64, op: &DirOp) -> DirReply {
        // Pre-load the affected directory, mirroring `apply`.
        let object = op_lock_object(op);
        if object != 0 {
            let _ = self.load_dir(ctx, object);
        }
        let planned = {
            let mut shared = self.shared.lock();
            self.plan(&mut shared, op, Some(useq))
        };
        match planned {
            Ok((reply, effects, _)) => {
                for e in effects {
                    self.perform_disk(ctx, e);
                }
                reply
            }
            Err(e) => DirReply::Err(e),
        }
    }
}

/// The object an op locks (creates lock the allocator, object 0).
pub(crate) fn op_lock_object(op: &DirOp) -> u64 {
    match op {
        DirOp::Create { .. } | DirOp::CreateKeyed { .. } | DirOp::InstallDir { .. } => 0,
        DirOp::Delete { object }
        | DirOp::Append { object, .. }
        | DirOp::Chmod { object, .. }
        | DirOp::DeleteRow { object, .. }
        | DirOp::AppendLink { object, .. }
        | DirOp::Unlink { object, .. }
        | DirOp::InstallStub { object, .. } => *object,
        DirOp::GrantRead { cap, .. } => cap.object,
        DirOp::ReplaceSet { items } => items.first().map(|(o, _, _)| *o).unwrap_or(0),
    }
}

#[allow(clippy::too_many_arguments)]
fn rpc_initiator_loop(
    ctx: &Ctx,
    srv: &RpcServer,
    applier: &Applier,
    coord: &Mutex<RpcCoord>,
    params: &DirParams,
    cpu: &Resource,
    rpc_client: &RpcClient,
    peer_port: amoeba_flip::Port,
    lazy_tx: &MailboxTx<(u64, Payload)>,
) {
    loop {
        let incoming = srv.getreq(ctx);
        let req = match DirRequest::decode(&incoming.data) {
            Ok(r) => r,
            Err(_) => {
                srv.putrep(&incoming, DirReply::Err(DirError::Malformed).encode());
                continue;
            }
        };
        let reply = if req.is_read() {
            // Reads: local, no coordination (the RPC service's semantics).
            cpu.use_for(ctx, params.read_cpu);
            applier.serve_read(ctx, &req)
        } else {
            cpu.use_for(ctx, params.write_cpu);
            rpc_write(ctx, applier, coord, rpc_client, peer_port, lazy_tx, &req)
        };
        srv.putrep(&incoming, reply.encode());
    }
}

fn rpc_write(
    ctx: &Ctx,
    applier: &Applier,
    coord: &Mutex<RpcCoord>,
    rpc_client: &RpcClient,
    peer_port: amoeba_flip::Port,
    lazy_tx: &MailboxTx<(u64, Payload)>,
    req: &DirRequest,
) -> DirReply {
    let op = match applier.prepare_write(ctx, req) {
        Ok(op) => op,
        Err(e) => return DirReply::Err(e),
    };
    let lock_object = op_lock_object(&op);
    // Local conflict lock.
    {
        let mut c = coord.lock();
        if c.locked.contains(&lock_object) {
            return DirReply::Err(DirError::Internal); // busy; client retries
        }
        c.locked.insert(lock_object);
    }
    let useq = { applier.shared.lock().update_seq + 1 };
    let op_bytes = op.encode();
    // Phase 1: intentions at the peer (synchronous, the extra disk
    // operation the paper charges the RPC service for).
    let intent = PeerMsg::Intent {
        useq,
        op: op_bytes.clone(),
    };
    let peer_ok = match rpc_client.trans(ctx, peer_port, intent.encode()) {
        Ok(bytes) => matches!(PeerMsg::decode(&bytes), Ok(PeerMsg::IntentOk)),
        Err(_) => {
            // Peer down: the duplicated service carries on alone
            // (no partition tolerance — exactly the paper's caveat).
            true
        }
    };
    if !peer_ok {
        coord.lock().locked.remove(&lock_object);
        return DirReply::Err(DirError::Internal);
    }
    // Phase 2: perform the update locally (Bullet file + table write).
    let reply = applier.apply_with_seq(ctx, useq, &op);
    coord.lock().locked.remove(&lock_object);
    // Phase 3: lazy replication in the background.
    lazy_tx.send((useq, op_bytes));
    reply
}

//! Path utilities: multi-component name resolution over the single-level
//! directory operations, the way Amoeba user programs used SOAP.

use amoeba_sim::Ctx;

use crate::capability::Capability;
use crate::client::{DirClient, DirClientError};
use crate::ops::DirError;
use crate::rights::Rights;

/// Splits a slash-separated path into components, ignoring empty ones.
///
/// # Examples
///
/// ```
/// use amoeba_dir_core::path::components;
///
/// assert_eq!(components("/a//b/c/"), vec!["a", "b", "c"]);
/// assert!(components("/").is_empty());
/// ```
pub fn components(path: &str) -> Vec<&str> {
    path.split('/').filter(|c| !c.is_empty()).collect()
}

/// Resolves `path` starting from `root`, one lookup per component.
///
/// # Errors
///
/// [`DirError::NoSuchName`] (wrapped) if a component is missing, plus any
/// service/transport error.
pub fn resolve(
    ctx: &Ctx,
    client: &DirClient,
    root: Capability,
    path: &str,
) -> Result<Capability, DirClientError> {
    let mut cur = root;
    for comp in components(path) {
        match client.lookup(ctx, cur, comp)? {
            Some(cap) => cur = cap,
            None => return Err(DirClientError::Service(DirError::NoSuchName)),
        }
    }
    Ok(cur)
}

/// Creates every missing directory along `path` (like `mkdir -p`),
/// returning the capability of the final one. Each created directory gets
/// the same protection `columns`; links are registered with all rights in
/// column 0 and lookup-only rights elsewhere.
///
/// # Errors
///
/// Service or transport errors; also fails if an existing component
/// resolves to something this client cannot descend into.
pub fn create_all(
    ctx: &Ctx,
    client: &DirClient,
    root: Capability,
    path: &str,
    columns: &[&str],
) -> Result<Capability, DirClientError> {
    let mut cur = root;
    for comp in components(path) {
        match client.lookup(ctx, cur, comp)? {
            Some(cap) => cur = cap,
            None => {
                let new_dir = client.create_dir(ctx, columns)?;
                let mut masks = vec![Rights::columns(columns.len()); columns.len()];
                masks[0] = Rights::ALL;
                match client.append_row(ctx, cur, comp, new_dir, masks) {
                    Ok(()) => cur = new_dir,
                    Err(DirClientError::Service(DirError::DuplicateName)) => {
                        // Concurrent creator won the race; clean up and
                        // follow their entry.
                        let _ = client.delete_dir(ctx, new_dir);
                        match client.lookup(ctx, cur, comp)? {
                            Some(cap) => cur = cap,
                            None => return Err(DirClientError::Service(DirError::NoSuchName)),
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_splits_and_skips_empties() {
        assert_eq!(components("a/b"), vec!["a", "b"]);
        assert_eq!(components("/a//b/"), vec!["a", "b"]);
        assert!(components("").is_empty());
        assert!(components("///").is_empty());
    }
}

//! A replicated lease service — the fifth consumer of the
//! [`amoeba_rsm`] API: TTL-bounded exclusive grants over **logical
//! time**, used by the cluster's rebalancer to ensure at most one
//! migration coordinator per directory.
//!
//! Like the lock and queue services, the whole service is this file: a
//! wire format, a deterministic state machine over a `HashMap`, and an
//! RPC front end calling [`Replica::submit`] /
//! [`Replica::read_barrier`]. There is **zero group-protocol code**
//! here. The machine is fully volatile — a rebooted replica recovers
//! purely from a peer's snapshot — so it uses the §3.2 improved
//! recovery rule (a volatile machine mourns no one).
//!
//! ## Logical time
//!
//! The state machine keeps no wall clock (a replicated machine must be
//! deterministic, and the simulator's clock is not part of the
//! replicated state). Instead it counts **applied operations**: every
//! replicated op ticks the clock by one, and a grant with TTL `t`
//! expires once `t` further operations have been ordered. A crashed
//! coordinator therefore blocks a contender for at most `ttl` of the
//! contender's own (clock-ticking) grant attempts — deterministic,
//! identical on every replica, and free of clock-skew semantics. The
//! price is that an *idle* service never expires anything, which is
//! exactly right for a fencing lease: with no contention, nobody cares.
//!
//! ## Why directory *read* leases do not live here
//!
//! The client cache ([`crate::cache`]) also runs on leases, but those
//! grants live inside each **directory shard's own** replicated state
//! ([`DirRequest::FetchDir`](crate::DirRequest::FetchDir) →
//! `DirOp::GrantRead`), not in this service. The cache's fence is an
//! ordering property: *every* write to a directory must revoke the
//! covering leases **before it is acknowledged**. Had the grants lived
//! here — a separate replica group with its own sequencer — there
//! would be no total order between "lease granted" and "row written":
//! a grant could race a write, with neither side obliged to see the
//! other, and a just-granted snapshot could outlive an acknowledged
//! update it never saw. Keeping the grant in the same totally-ordered
//! op stream as the writes it fences makes the revocation protocol a
//! local, deterministic step of `apply`:
//!
//! 1. `GrantRead` is ordered through the shard's group like any write;
//!    every replica records `(owner, callback port, deadline)`.
//! 2. A later write's `apply` moves the directory's live leases to a
//!    volatile revocation queue — on every replica, at the same point
//!    in the op stream.
//! 3. The replica that *initiated* the write then drains that queue —
//!    invalidation callback per holder, bounded retries, full lease
//!    expiry as the fallback for unreachable holders — **before**
//!    replying to the client.
//!
//! Expiry for those leases is real (simulated) time, not logical time:
//! a read lease must die on an *idle* deadline too, because its holder
//! serves lookups locally without ticking anything. The two designs
//! coexist deliberately: logical time for mutual-exclusion fencing
//! (this file), wall-clock deadlines for read caching ([`crate::cache`]).

use std::collections::HashMap;
use std::sync::Arc;

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::{Payload, Port};
use amoeba_group::GroupPeer;
use amoeba_rpc::{RpcClient, RpcError, RpcNode, RpcServer};
use amoeba_rsm::{RecoveryInfo, Replica, ReplicaDeps, RsmConfig, RsmError, StateMachine};
use amoeba_sim::{Ctx, NodeId, Spawn};
use parking_lot::Mutex;

/// The public FLIP port of the lease service.
pub const LEASE_PORT: Port = Port::from_raw(0x004C_5345); // "LSE"

/// Client-visible operations of the lease service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseRequest {
    /// Acquire (or renew) `name` for `owner`, expiring after `ttl`
    /// further applied operations.
    Grant {
        /// Lease name.
        name: String,
        /// Owner token (client-chosen).
        owner: u64,
        /// Lifetime in logical ticks (applied ops).
        ttl: u64,
    },
    /// Release `name` held by `owner`.
    Release {
        /// Lease name.
        name: String,
        /// Owner token.
        owner: u64,
    },
    /// Read who holds `name` (a local read behind the read barrier).
    Query {
        /// Lease name.
        name: String,
    },
}

/// Replies of the lease service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseReply {
    /// Granted (or renewed); expires at this logical time.
    Granted {
        /// Logical expiry (applied-op count).
        expires: u64,
    },
    /// Grant refused: held by this other owner until `expires`.
    Busy {
        /// Current holder's token.
        holder: u64,
        /// Logical expiry.
        expires: u64,
    },
    /// Release done.
    Ok,
    /// Release refused: not held by the caller (or already expired).
    NotHeld,
    /// Query: held by this owner until `expires`.
    Held {
        /// Holder's token.
        holder: u64,
        /// Logical expiry.
        expires: u64,
    },
    /// Query: free (never granted, released, or expired).
    Free,
    /// Malformed request.
    Malformed,
    /// The replica is recovering or without a majority.
    NoMajority,
}

const LS_GRANT: u8 = 1;
const LS_RELEASE: u8 = 2;
const LS_QUERY: u8 = 3;

const LR_GRANTED: u8 = 1;
const LR_BUSY: u8 = 2;
const LR_OK: u8 = 3;
const LR_NOT_HELD: u8 = 4;
const LR_HELD: u8 = 5;
const LR_FREE: u8 = 6;
const LR_MALFORMED: u8 = 7;
const LR_NO_MAJORITY: u8 = 8;

impl LeaseRequest {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::new();
        match self {
            LeaseRequest::Grant { name, owner, ttl } => {
                w.u8(LS_GRANT).string(name).u64(*owner).u64(*ttl);
            }
            LeaseRequest::Release { name, owner } => {
                w.u8(LS_RELEASE).string(name).u64(*owner);
            }
            LeaseRequest::Query { name } => {
                w.u8(LS_QUERY).string(name);
            }
        }
        w.finish_payload()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<LeaseRequest, DecodeError> {
        let mut r = WireReader::new(buf);
        let m = match r.u8("lease req tag")? {
            LS_GRANT => LeaseRequest::Grant {
                name: r.string("lease name")?,
                owner: r.u64("lease owner")?,
                ttl: r.u64("lease ttl")?,
            },
            LS_RELEASE => LeaseRequest::Release {
                name: r.string("lease name")?,
                owner: r.u64("lease owner")?,
            },
            LS_QUERY => LeaseRequest::Query {
                name: r.string("lease name")?,
            },
            _ => return Err(DecodeError::new("lease req tag")),
        };
        r.expect_end("lease req trailing")?;
        Ok(m)
    }
}

impl LeaseReply {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::new();
        match self {
            LeaseReply::Granted { expires } => {
                w.u8(LR_GRANTED).u64(*expires);
            }
            LeaseReply::Busy { holder, expires } => {
                w.u8(LR_BUSY).u64(*holder).u64(*expires);
            }
            LeaseReply::Ok => {
                w.u8(LR_OK);
            }
            LeaseReply::NotHeld => {
                w.u8(LR_NOT_HELD);
            }
            LeaseReply::Held { holder, expires } => {
                w.u8(LR_HELD).u64(*holder).u64(*expires);
            }
            LeaseReply::Free => {
                w.u8(LR_FREE);
            }
            LeaseReply::Malformed => {
                w.u8(LR_MALFORMED);
            }
            LeaseReply::NoMajority => {
                w.u8(LR_NO_MAJORITY);
            }
        }
        w.finish_payload()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<LeaseReply, DecodeError> {
        let mut r = WireReader::new(buf);
        let m = match r.u8("lease rep tag")? {
            LR_GRANTED => LeaseReply::Granted {
                expires: r.u64("lease expires")?,
            },
            LR_BUSY => LeaseReply::Busy {
                holder: r.u64("lease holder")?,
                expires: r.u64("lease expires")?,
            },
            LR_OK => LeaseReply::Ok,
            LR_NOT_HELD => LeaseReply::NotHeld,
            LR_HELD => LeaseReply::Held {
                holder: r.u64("lease holder")?,
                expires: r.u64("lease expires")?,
            },
            LR_FREE => LeaseReply::Free,
            LR_MALFORMED => LeaseReply::Malformed,
            LR_NO_MAJORITY => LeaseReply::NoMajority,
            _ => return Err(DecodeError::new("lease rep tag")),
        };
        r.expect_end("lease rep trailing")?;
        Ok(m)
    }
}

// ---------------------------------------------------------------------
// The state machine.
// ---------------------------------------------------------------------

struct LeaseState {
    /// Logical clock: one tick per applied (replicated) operation.
    clock: u64,
    /// name → (owner token, logical expiry).
    leases: HashMap<String, (u64, u64)>,
    /// Logical version, for recovery's source election.
    update_seq: u64,
    /// Applied cursor, kept in the same critical section as the state.
    applied_seq: u64,
}

/// The replicated lease table: a volatile, deterministic
/// [`StateMachine`]. Durability comes entirely from replication.
pub struct LeaseStateMachine {
    n: usize,
    state: Mutex<LeaseState>,
}

impl std::fmt::Debug for LeaseStateMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LeaseStateMachine")
    }
}

impl LeaseStateMachine {
    /// An empty lease table for an `n`-replica service.
    pub fn new(n: usize) -> LeaseStateMachine {
        LeaseStateMachine {
            n,
            state: Mutex::new(LeaseState {
                clock: 0,
                leases: HashMap::new(),
                update_seq: 0,
                applied_seq: 0,
            }),
        }
    }

    /// Who holds `name`, if unexpired (serve only behind a read
    /// barrier).
    pub fn holder(&self, name: &str) -> Option<(u64, u64)> {
        let st = self.state.lock();
        st.leases
            .get(name)
            .copied()
            .filter(|(_, expires)| *expires > st.clock)
    }

    /// The current logical clock (diagnostics/tests).
    pub fn clock(&self) -> u64 {
        self.state.lock().clock
    }
}

impl StateMachine for LeaseStateMachine {
    fn apply(&self, _ctx: &Ctx, seq: u64, op: &Payload) -> Payload {
        let mut st = self.state.lock();
        st.applied_seq = st.applied_seq.max(seq);
        st.update_seq += 1;
        // Every ordered operation ticks logical time — this is what
        // lets a contender's own retries age a dead holder's grant out.
        st.clock += 1;
        let clock = st.clock;
        let reply = match LeaseRequest::decode(op) {
            Ok(LeaseRequest::Grant { name, owner, ttl }) => {
                match st.leases.get(&name).copied() {
                    // An unexpired lease held by someone else wins.
                    Some((holder, expires)) if expires > clock && holder != owner => {
                        LeaseReply::Busy { holder, expires }
                    }
                    // Free, expired, or our own (renew): (re)grant.
                    _ => {
                        let expires = clock + ttl.max(1);
                        st.leases.insert(name, (owner, expires));
                        LeaseReply::Granted { expires }
                    }
                }
            }
            Ok(LeaseRequest::Release { name, owner }) => match st.leases.get(&name).copied() {
                Some((holder, expires)) if expires > clock && holder == owner => {
                    st.leases.remove(&name);
                    LeaseReply::Ok
                }
                _ => LeaseReply::NotHeld,
            },
            _ => LeaseReply::Malformed, // queries are never replicated
        };
        // Expired residue is garbage; drop it eagerly (deterministic:
        // depends only on replicated state and the clock).
        st.leases.retain(|_, (_, expires)| *expires > clock);
        reply.encode()
    }

    fn recovery_info(&self) -> RecoveryInfo {
        RecoveryInfo {
            update_seq: self.state.lock().update_seq,
            // Volatile state: we cannot know who crashed before us.
            mourned: vec![false; self.n],
        }
    }

    fn snapshot(&self, _ctx: &Ctx) -> (u64, Payload) {
        let st = self.state.lock();
        let mut names: Vec<&String> = st.leases.keys().collect();
        names.sort_unstable(); // deterministic encoding
        let mut w = WireWriter::new();
        w.u64(st.update_seq).u64(st.clock).u32(names.len() as u32);
        for name in names {
            let (owner, expires) = st.leases[name];
            w.string(name).u64(owner).u64(expires);
        }
        (st.applied_seq, w.finish_payload())
    }

    fn install(&self, _ctx: &Ctx, cursor: u64, snap: &Payload) -> bool {
        let mut r = WireReader::of(snap);
        let (update_seq, clock, n) = match (r.u64("update seq"), r.u64("clock"), r.u32("leases")) {
            (Ok(u), Ok(c), Ok(n)) if (n as usize) <= 1_000_000 => (u, c, n),
            _ => return false,
        };
        let mut leases = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            match (
                r.string("lease name"),
                r.u64("lease owner"),
                r.u64("lease expires"),
            ) {
                (Ok(name), Ok(owner), Ok(expires)) => {
                    leases.insert(name, (owner, expires));
                }
                _ => return false,
            }
        }
        let mut st = self.state.lock();
        st.leases = leases;
        st.clock = clock;
        st.update_seq = update_seq;
        st.applied_seq = cursor;
        true
    }

    fn align_cursor(&self, _ctx: &Ctx, cursor: u64) {
        // A new instance's order restarts: set absolutely.
        self.state.lock().applied_seq = cursor;
    }

    fn on_membership(&self, _ctx: &Ctx, seq: u64, _config: &[bool]) {
        if seq > 0 {
            let mut st = self.state.lock();
            st.applied_seq = st.applied_seq.max(seq);
        }
    }
}

// ---------------------------------------------------------------------
// Server wiring and client stub.
// ---------------------------------------------------------------------

/// Everything needed to start one lease-service replica: like the lock
/// and queue services, no disk, no Bullet, no NVRAM — replication is
/// the only durability.
pub struct LeaseServerDeps {
    /// Total replicas.
    pub n: usize,
    /// This replica's index in `0..n`.
    pub me: usize,
    /// The machine this replica runs on.
    pub sim_node: NodeId,
    /// RPC kernel of the machine (shared with other services).
    pub rpc: RpcNode,
    /// Group kernel of the machine (shared with other services; the
    /// lease group forms on its own port).
    pub peer: GroupPeer,
    /// Request threads to spawn.
    pub threads: usize,
}

impl std::fmt::Debug for LeaseServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LeaseServerDeps(replica {})", self.me)
    }
}

/// Handle to one running lease-service replica.
#[derive(Clone, Debug)]
pub struct LeaseServer {
    replica: Replica<LeaseStateMachine>,
}

impl LeaseServer {
    /// Whether the replica is serving.
    pub fn is_normal(&self) -> bool {
        self.replica.is_normal()
    }

    /// The replica's lease table (diagnostics/tests).
    pub fn machine(&self) -> &Arc<LeaseStateMachine> {
        self.replica.machine()
    }
}

/// Starts one replica of the lease service.
pub fn start_lease_server(spawner: &impl Spawn, deps: LeaseServerDeps) -> LeaseServer {
    let LeaseServerDeps {
        n,
        me,
        sim_node,
        rpc,
        peer,
        threads,
    } = deps;
    let sm = Arc::new(LeaseStateMachine::new(n));
    let mut cfg = RsmConfig::new("amoeba.lease", n, me);
    // Volatile machine: only the §3.2 improved rule can ever let it
    // recover from less than the full replica set (see the lock
    // service for the full argument).
    cfg.improved_recovery = true;
    let replica = Replica::start(
        spawner,
        ReplicaDeps {
            cfg,
            sim_node,
            rpc: rpc.clone(),
            peer,
            sm,
        },
    );
    for t in 0..threads.max(1) {
        let srv = RpcServer::new(&rpc, LEASE_PORT);
        let replica = replica.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("lease{me}-srv{t}"),
            Box::new(move |ctx| loop {
                let incoming = srv.getreq(ctx);
                let reply = match LeaseRequest::decode(&incoming.data) {
                    Ok(LeaseRequest::Query { name }) => match replica.read_barrier(ctx) {
                        Ok(()) => match replica.machine().holder(&name) {
                            Some((holder, expires)) => LeaseReply::Held { holder, expires },
                            None => LeaseReply::Free,
                        },
                        Err(_) => LeaseReply::NoMajority,
                    },
                    Ok(op) => match replica.submit(ctx, op.encode()) {
                        Ok(bytes) => LeaseReply::decode(&bytes).unwrap_or(LeaseReply::Malformed),
                        Err(RsmError::NotInService | RsmError::Aborted) => LeaseReply::NoMajority,
                        Err(RsmError::ResultLost) => LeaseReply::Malformed,
                    },
                    Err(_) => LeaseReply::Malformed,
                };
                srv.putrep(&incoming, reply.encode());
            }),
        );
    }
    LeaseServer { replica }
}

/// Errors surfaced by [`LeaseClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeaseError {
    /// The service has no majority (retry later).
    NoMajority,
    /// The service refused or mangled the request.
    Service,
    /// Transport failure.
    Rpc(RpcError),
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::NoMajority => f.write_str("lease service has no majority"),
            LeaseError::Service => f.write_str("lease service refused the request"),
            LeaseError::Rpc(e) => write!(f, "lease transport: {e}"),
        }
    }
}

impl std::error::Error for LeaseError {}

/// Client stub for the lease service.
#[derive(Clone, Debug)]
pub struct LeaseClient {
    rpc: RpcClient,
}

impl LeaseClient {
    /// Creates a stub talking to the service through `rpc`.
    pub fn new(rpc: RpcClient) -> LeaseClient {
        LeaseClient { rpc }
    }

    fn call(&self, ctx: &Ctx, req: LeaseRequest) -> Result<LeaseReply, LeaseError> {
        let bytes = self
            .rpc
            .trans(ctx, LEASE_PORT, req.encode())
            .map_err(LeaseError::Rpc)?;
        LeaseReply::decode(&bytes).map_err(|_| LeaseError::Service)
    }

    /// Acquires (or renews) `name` for `owner`. Returns the logical
    /// expiry on success, `None` if another owner holds it.
    ///
    /// # Errors
    ///
    /// [`LeaseError::NoMajority`] while the service is recovering.
    pub fn grant(
        &self,
        ctx: &Ctx,
        name: &str,
        owner: u64,
        ttl: u64,
    ) -> Result<Option<u64>, LeaseError> {
        match self.call(
            ctx,
            LeaseRequest::Grant {
                name: name.to_owned(),
                owner,
                ttl,
            },
        )? {
            LeaseReply::Granted { expires } => Ok(Some(expires)),
            LeaseReply::Busy { .. } => Ok(None),
            LeaseReply::NoMajority => Err(LeaseError::NoMajority),
            _ => Err(LeaseError::Service),
        }
    }

    /// Releases `name` held by `owner` (releasing an expired or foreign
    /// lease reports `false`).
    ///
    /// # Errors
    ///
    /// [`LeaseError::NoMajority`] while the service is recovering.
    pub fn release(&self, ctx: &Ctx, name: &str, owner: u64) -> Result<bool, LeaseError> {
        match self.call(
            ctx,
            LeaseRequest::Release {
                name: name.to_owned(),
                owner,
            },
        )? {
            LeaseReply::Ok => Ok(true),
            LeaseReply::NotHeld => Ok(false),
            LeaseReply::NoMajority => Err(LeaseError::NoMajority),
            _ => Err(LeaseError::Service),
        }
    }

    /// Who holds `name`, if unexpired: `(owner, logical expiry)`.
    ///
    /// # Errors
    ///
    /// [`LeaseError::NoMajority`] while the service is recovering.
    pub fn query(&self, ctx: &Ctx, name: &str) -> Result<Option<(u64, u64)>, LeaseError> {
        match self.call(
            ctx,
            LeaseRequest::Query {
                name: name.to_owned(),
            },
        )? {
            LeaseReply::Held { holder, expires } => Ok(Some((holder, expires))),
            LeaseReply::Free => Ok(None),
            LeaseReply::NoMajority => Err(LeaseError::NoMajority),
            _ => Err(LeaseError::Service),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_replies_round_trip() {
        let reqs = [
            LeaseRequest::Grant {
                name: "mig:1:2".into(),
                owner: 77,
                ttl: 32,
            },
            LeaseRequest::Release {
                name: "mig:1:2".into(),
                owner: 77,
            },
            LeaseRequest::Query { name: "x".into() },
        ];
        for m in reqs {
            assert_eq!(LeaseRequest::decode(&m.encode()).unwrap(), m);
        }
        let reps = [
            LeaseReply::Granted { expires: 40 },
            LeaseReply::Busy {
                holder: 9,
                expires: 40,
            },
            LeaseReply::Ok,
            LeaseReply::NotHeld,
            LeaseReply::Held {
                holder: 9,
                expires: 40,
            },
            LeaseReply::Free,
            LeaseReply::Malformed,
            LeaseReply::NoMajority,
        ];
        for m in reps {
            assert_eq!(LeaseReply::decode(&m.encode()).unwrap(), m);
        }
        assert!(LeaseRequest::decode(&[99]).is_err());
        assert!(LeaseReply::decode(&[]).is_err());
    }
}

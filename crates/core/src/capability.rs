//! Amoeba capabilities: 128-bit unforgeable object references.
//!
//! A capability has four parts (paper §2): the *port* of the service, the
//! *object* number at that service, a *rights* field, and a *check* field
//! that makes capabilities unforgeable. Rights restriction uses Amoeba's
//! one-way-function scheme: the owner capability carries the raw random
//! check `C`; a capability restricted to rights `R` carries `F(C xor R)`.
//! Only the server (which knows `C`) can verify or further restrict.

use std::fmt;

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::Port;

use crate::rights::Rights;

/// A 128-bit Amoeba capability: (port, object, rights, check).
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Capability {
    /// Identifies the service.
    pub port: Port,
    /// Identifies the object at the service.
    pub object: u64,
    /// What the holder may do.
    pub rights: Rights,
    /// Proof of authority.
    pub check: u64,
}

/// The one-way function protecting check fields (a 64-bit finalizer; not
/// cryptographic, but unguessable enough for a simulation — Amoeba used a
/// similarly lightweight F).
pub fn one_way(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Capability {
    /// A capability no service ever issues.
    pub const NULL: Capability = Capability {
        port: Port::NULL,
        object: 0,
        rights: Rights::NONE,
        check: 0,
    };

    /// Whether this is the null capability.
    pub fn is_null(&self) -> bool {
        *self == Capability::NULL
    }

    /// Builds the owner (all-rights) capability given the raw check `c`.
    pub fn owner(port: Port, object: u64, c: u64) -> Capability {
        Capability {
            port,
            object,
            rights: Rights::ALL,
            check: c,
        }
    }

    /// The check field a capability with `rights` must carry, given the
    /// raw check `c` (server side).
    pub fn check_for(c: u64, rights: Rights) -> u64 {
        if rights == Rights::ALL {
            c
        } else {
            one_way(c ^ u64::from(rights.0))
        }
    }

    /// Server-side validation against the stored raw check `c`.
    pub fn validate(&self, c: u64) -> bool {
        self.check == Self::check_for(c, self.rights)
    }

    /// Restricts an **owner** capability to `new_rights` without server
    /// help. Returns `None` if `self` is not an owner capability (only the
    /// server can restrict an already-restricted capability).
    pub fn restrict(&self, new_rights: Rights) -> Option<Capability> {
        if self.rights != Rights::ALL {
            return None;
        }
        Some(Capability {
            port: self.port,
            object: self.object,
            rights: new_rights,
            check: Self::check_for(self.check, new_rights),
        })
    }

    /// Server-side restriction: produce the capability for `new_rights`
    /// from the raw check.
    pub fn issue(port: Port, object: u64, c: u64, rights: Rights) -> Capability {
        Capability {
            port,
            object,
            rights,
            check: Self::check_for(c, rights),
        }
    }

    /// Appends to a wire buffer.
    pub fn write(&self, w: &mut WireWriter) {
        w.u64(self.port.as_raw())
            .u64(self.object)
            .u8(self.rights.0)
            .u64(self.check);
    }

    /// Reads from a wire buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation.
    pub fn read(r: &mut WireReader<'_>) -> Result<Capability, DecodeError> {
        Ok(Capability {
            port: Port::from_raw(r.u64("cap port")?),
            object: r.u64("cap object")?,
            rights: Rights(r.u8("cap rights")?),
            check: r.u64("cap check")?,
        })
    }
}

impl fmt::Debug for Capability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cap<{}:{} r={} chk={:08x}>",
            self.port, self.object, self.rights, self.check as u32
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_testkit::{check, Gen};

    fn port() -> Port {
        Port::from_name("dir")
    }

    #[test]
    fn owner_validates() {
        let c = 0xDEAD_BEEF_u64;
        let cap = Capability::owner(port(), 5, c);
        assert!(cap.validate(c));
        assert!(!cap.validate(c + 1));
    }

    #[test]
    fn restricted_cap_validates_and_cannot_escalate() {
        let c = 12345;
        let owner = Capability::owner(port(), 5, c);
        let ro = owner.restrict(Rights::column(2)).unwrap();
        assert!(ro.validate(c));
        // Forging more rights with the restricted check fails validation.
        let forged = Capability {
            rights: Rights::ALL,
            ..ro
        };
        assert!(!forged.validate(c));
        let forged2 = Capability {
            rights: Rights::column(2) | Rights::MODIFY,
            ..ro
        };
        assert!(!forged2.validate(c));
    }

    #[test]
    fn restricting_a_restricted_cap_fails_client_side() {
        let owner = Capability::owner(port(), 1, 7);
        let ro = owner.restrict(Rights::column(0)).unwrap();
        assert!(ro.restrict(Rights::NONE).is_none());
    }

    #[test]
    fn issue_matches_restrict() {
        let c = 999;
        let owner = Capability::owner(port(), 2, c);
        let a = owner.restrict(Rights::MODIFY).unwrap();
        let b = Capability::issue(port(), 2, c, Rights::MODIFY);
        assert_eq!(a, b);
    }

    #[test]
    fn wire_round_trip() {
        let cap = Capability::issue(port(), 42, 7, Rights::column(1));
        let mut w = WireWriter::new();
        cap.write(&mut w);
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(Capability::read(&mut r).unwrap(), cap);
    }

    #[test]
    fn prop_no_rights_escalation() {
        check("no rights escalation", 512, |g: &mut Gen| {
            // Someone holding a capability with rights `have` cannot build
            // a valid capability with rights `want` ⊋ `have` by reusing
            // the check field they possess.
            let c = g.u64();
            let have = Rights(g.u8());
            let want = Rights(g.u8());
            if have.covers(want) || have == Rights::ALL {
                return; // vacuous case
            }
            let held = Capability::issue(port(), 1, c, have);
            let forged = Capability {
                rights: want,
                ..held
            };
            // The forged capability validates only with negligible
            // probability (hash collision); assert it does not validate.
            assert!(!forged.validate(c));
        });
    }

    #[test]
    fn prop_issued_caps_validate() {
        check("issued caps validate", 256, |g: &mut Gen| {
            let c = g.u64();
            let cap = Capability::issue(port(), 3, c, Rights(g.u8()));
            assert!(cap.validate(c));
        });
    }
}

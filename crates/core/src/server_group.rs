//! The group directory server: the paper's Fig. 5 protocol, as a thin
//! service layer over the generic [`amoeba_rsm::Replica`] driver.
//!
//! Each server machine runs several **server threads** (initiators) and
//! one replica driver. Reads are served locally after the driver's read
//! barrier (drain buffered group messages); writes are validated here,
//! then replicated through [`Replica::submit`] with resilience r = 2 —
//! the initiator blocks until its own replica has applied *and
//! group-committed* the operation. View changes, reset, recovery and
//! apply batching all live in the driver; this file contains **zero
//! group-protocol code**.

use std::sync::Arc;
use std::time::Duration;

use amoeba_bullet::BulletClient;
use amoeba_disk::{Nvram, RawPartition};
use amoeba_flip::Port;
use amoeba_group::GroupPeer;
use amoeba_rpc::{RpcClient, RpcNode, RpcParams, RpcServer};
use amoeba_rsm::{Replica, ReplicaDeps, RsmConfig, RsmError};
use amoeba_sim::{Ctx, NodeId, Resource, Spawn};
use parking_lot::Mutex;

use crate::cache::encode_invalidation;
use crate::config::{DirParams, ServiceConfig, StorageKind};
use crate::dir_sm::DirectoryStateMachine;
use crate::object_table::ObjectTable;
use crate::ops::{DirError, DirOp, DirReply, DirRequest};
use crate::state::{op_object, Applier, ReadLease, Shared};

/// Handle to one running group directory server (one replica column).
#[derive(Clone)]
pub struct GroupDirServer {
    pub(crate) applier: Arc<Applier>,
    replica: Replica<DirectoryStateMachine>,
    cfg: ServiceConfig,
}

impl std::fmt::Debug for GroupDirServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupDirServer({})", self.cfg.me)
    }
}

/// Everything needed to start one replica of the group directory service.
pub struct GroupServerDeps {
    /// Static service configuration.
    pub cfg: ServiceConfig,
    /// Performance/behaviour parameters.
    pub params: DirParams,
    /// The machine this replica runs on.
    pub sim_node: NodeId,
    /// RPC kernel of the machine.
    pub rpc: RpcNode,
    /// Group-communication kernel of the machine.
    pub peer: GroupPeer,
    /// Client stub for this column's Bullet server.
    pub bullet: BulletClient,
    /// The raw partition holding commit block + object table.
    pub partition: RawPartition,
    /// The machine's NVRAM, if the NVRAM commit path is configured.
    pub nvram: Option<Nvram>,
    /// The group log's journal, when `params.journal` is on (backed by
    /// the disk's reserved journal region, or by NVRAM with
    /// `params.journal_nvram`).
    pub journal: Option<amoeba_disk::Journal>,
    /// The machine's CPU.
    pub cpu: Resource,
}

impl std::fmt::Debug for GroupServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupServerDeps(server {})", self.cfg.me)
    }
}

/// Maps the directory service's parameters onto the generic driver's.
/// Each shard derives its ports from its own service name, so every
/// shard forms its own group with its own sequencer.
fn rsm_config(cfg: &ServiceConfig, params: &DirParams) -> RsmConfig {
    let mut rsm = RsmConfig::new(&cfg.service, cfg.n, cfg.me);
    debug_assert_eq!(rsm.group_port, cfg.group_port);
    debug_assert_eq!(rsm.internal_ports[cfg.me], cfg.internal_port(cfg.me));
    rsm.apply_batch = params.apply_batch;
    // Historically the NVRAM commit path forced the serial loop (its
    // log append inside `apply` is already the durable commit, so the
    // pipeline bought nothing and `flush` had to police the fill
    // threshold inline). The staged path now polices the threshold too,
    // so both storage kinds honour the configured window — on NVRAM the
    // overlap is between apply CPU and the background disk writeback.
    rsm.flush_window = params.flush_window;
    rsm.flush_gather = if params.storage == StorageKind::Disk {
        rsm.flush_gather
    } else {
        // NVRAM appends are µs-scale: gathering milliseconds to save a
        // seek that is never paid would only add latency.
        Duration::ZERO
    };
    rsm.adaptive_gather = params.adaptive_gather;
    // The checkpointer exists to drain the journal; without a journal
    // there is nothing to drain.
    rsm.checkpoint_interval = if params.journal && params.storage == StorageKind::Disk {
        Some(params.checkpoint_interval)
    } else {
        None
    };
    rsm.idle_timeout = params.nvram_idle_flush;
    rsm.join_timeout = params.recovery_join_timeout;
    rsm.majority_timeout = params.recovery_majority_timeout;
    rsm.retry_jitter = params.recovery_retry_jitter;
    rsm.improved_recovery = params.improved_recovery;
    rsm
}

/// Starts all processes of one group directory server replica.
pub fn start_group_server(spawner: &impl Spawn, deps: GroupServerDeps) -> GroupDirServer {
    let GroupServerDeps {
        cfg,
        params,
        sim_node,
        rpc,
        peer,
        bullet,
        partition,
        nvram,
        journal,
        cpu,
    } = deps;
    if params.storage == StorageKind::Nvram {
        assert!(nvram.is_some(), "NVRAM storage configured without a device");
    }
    if params.journal && params.storage == StorageKind::Disk {
        assert!(journal.is_some(), "journaled commit path without a journal");
    }
    let table = ObjectTable::new(partition.clone());
    let shared = Arc::new(Mutex::new(Shared::new(table, cfg.n)));
    let applier = Arc::new(Applier {
        cfg: cfg.clone(),
        storage: params.storage,
        shared: Arc::clone(&shared),
        bullet,
        partition,
        nvram: nvram.clone(),
        journal: if params.storage == StorageKind::Disk {
            journal
        } else {
            None
        },
        max_lease_us: params.max_lease.as_micros() as u64,
        lease_renewals: params.lease_renewals,
    });
    let sm = Arc::new(DirectoryStateMachine::new(
        Arc::clone(&applier),
        params.clone(),
        cpu.clone(),
    ));
    let replica = Replica::start(
        spawner,
        ReplicaDeps {
            cfg: rsm_config(&cfg, &params),
            sim_node,
            rpc: rpc.clone(),
            peer,
            sm,
        },
    );
    let server = GroupDirServer {
        applier: Arc::clone(&applier),
        replica: replica.clone(),
        cfg: cfg.clone(),
    };

    // Initiator (server) threads.
    for t in 0..params.server_threads.max(1) {
        let srv = RpcServer::new(&rpc, cfg.public_port);
        let applier = Arc::clone(&applier);
        let replica = replica.clone();
        // Invalidation callbacks use tightly bounded transports: a
        // crashed lease holder must cost the write a couple of short
        // attempts, not the default 100-second client retry budget —
        // the fallback for an unreachable holder is waiting out its
        // lease, which `max_lease` caps.
        let inval = RpcClient::with_params(
            &rpc,
            RpcParams {
                locate_timeout: Duration::from_millis(20),
                reply_timeout: Duration::from_millis(40),
                max_attempts: 2,
                relocate_jitter: Duration::from_millis(1),
            },
        );
        let params = params.clone();
        let cpu = cpu.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("dir{}-srv{t}", cfg.me),
            Box::new(move |ctx| {
                initiator_loop(ctx, &srv, &applier, &replica, &params, &cpu, &inval)
            }),
        );
    }
    server
}

impl GroupDirServer {
    /// The current logical version (diagnostics/tests).
    pub fn update_seq(&self) -> u64 {
        self.applier.shared.lock().update_seq
    }

    /// Forces any pending NVRAM records to disk (diagnostics/tests).
    pub fn flush_storage(&self, ctx: &amoeba_sim::Ctx) {
        self.applier.flush_nvram(ctx);
    }

    /// Whether the server is in normal operation.
    pub fn is_normal(&self) -> bool {
        self.replica.is_normal()
    }

    /// The shard this server belongs to.
    pub fn shard(&self) -> usize {
        self.cfg.shard
    }

    /// This replica's driver counters — scoped to this shard's group
    /// alone, however many replicas share the machine.
    pub fn replica_stats(&self) -> amoeba_rsm::ReplicaStats {
        self.replica.stats()
    }

    /// This replica's group-engine counters (`None` while recovering).
    pub fn group_stats(&self) -> Option<amoeba_group::GroupStats> {
        self.replica.group_stats()
    }

    /// Mints the owner capability of a directory this shard stores —
    /// **cluster-management access** (the server knows every raw
    /// check), used by the rebalancer to coordinate migrations of
    /// directories it never held a capability for. `None` for unknown
    /// or already-relocated objects.
    pub fn owner_cap(&self, object: u64) -> Option<crate::Capability> {
        let shared = self.applier.shared.lock();
        if shared.stubs.contains_key(&object) {
            return None;
        }
        shared
            .table
            .get(object)
            .map(|e| crate::Capability::owner(self.cfg.public_port, object, e.check))
    }

    /// Drains this replica's per-directory operation counters and
    /// returns the `k` hottest live directories as `(object, ops)` —
    /// the rebalancer's advisory load signal. Counters are
    /// replica-local (reads count where they are served) and reset by
    /// the drain, so successive calls report per-interval deltas.
    pub fn hot_dirs(&self, k: usize) -> Vec<(u64, u64)> {
        let mut shared = self.applier.shared.lock();
        let heat = std::mem::take(&mut shared.heat);
        let mut v: Vec<(u64, u64)> = heat
            .into_iter()
            .filter(|(o, _)| !shared.stubs.contains_key(o) && shared.table.get(*o).is_some())
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Number of forwarding stubs (migrated-away directories) this
    /// shard currently holds (diagnostics/tests).
    pub fn stub_count(&self) -> usize {
        self.applier.shared.lock().stubs.len()
    }
}

/// The Fig. 5 initiator logic, one thread.
#[allow(clippy::too_many_arguments)]
fn initiator_loop(
    ctx: &Ctx,
    srv: &RpcServer,
    applier: &Applier,
    replica: &Replica<DirectoryStateMachine>,
    params: &DirParams,
    cpu: &Resource,
    inval: &RpcClient,
) {
    loop {
        let incoming = srv.getreq(ctx);
        let req = match DirRequest::decode(&incoming.data) {
            Ok(r) => r,
            Err(_) => {
                srv.putrep(&incoming, DirReply::Err(DirError::Malformed).encode());
                continue;
            }
        };
        // The server-side span: parented to the client's request
        // context (silent when the request is untraced). The ambient
        // context makes the replica submit and the revocation fan-out
        // RPCs below part of the same tree.
        let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
        let span = tele.begin_child("srv.handle", u64::from(srv.addr().0), incoming.trace);
        let prev = amoeba_telemetry::set_current_ctx(span);
        let reply = handle_request(ctx, applier, replica, params, cpu, inval, &req);
        amoeba_telemetry::set_current_ctx(prev);
        tele.end(span);
        srv.putrep(&incoming, reply.encode());
    }
}

/// One request through the Fig. 5 protocol.
#[allow(clippy::too_many_arguments)]
fn handle_request(
    ctx: &Ctx,
    applier: &Applier,
    replica: &Replica<DirectoryStateMachine>,
    params: &DirParams,
    cpu: &Resource,
    inval: &RpcClient,
    req: &DirRequest,
) -> DirReply {
    // Piggybacked lease renewal: a `FetchDir` from a holder whose lease
    // is still registered (the write that revoked its previous lease
    // reinstated a successor under the grant's renewal budget) is served
    // off the read path — the same barrier any read takes — instead of a
    // full `GrantRead` group round.
    if let DirRequest::FetchDir {
        cap, owner, ttl_us, ..
    } = req
    {
        if applier.has_renewable_lease(ctx, cap, *owner, *ttl_us) {
            if let Err(e) = replica.read_barrier(ctx) {
                return DirReply::Err(rsm_err(e));
            }
            cpu.use_for(ctx, params.read_cpu);
            if let Some(rep) = applier.serve_renewed_fetch(ctx, cap, *owner, *ttl_us) {
                return rep;
            }
            // The lease vanished between the pre-check and the barrier —
            // fall through to the normal grant round.
        }
    }
    if req.is_read() {
        // "any buffered messages? … wait until seqno == buffered_seqno":
        // drain everything the kernel has ordered before us. The
        // barrier also performs the majority check ("if (!majority())
        // return failure").
        if let Err(e) = replica.read_barrier(ctx) {
            return DirReply::Err(rsm_err(e));
        }
        cpu.use_for(ctx, params.read_cpu);
        applier.serve_read(ctx, req)
    } else {
        cpu.use_for(ctx, params.write_cpu);
        // "generate check-field; SendToGroup(request…)".
        let op = match applier.prepare_write(ctx, req) {
            Ok(op) => op,
            Err(e) => return DirReply::Err(e),
        };
        // "wait until group thread has received and executed the
        // request" — submit blocks until the op is applied and
        // group-committed on this replica.
        match replica.submit_traced(ctx, op.encode(), amoeba_telemetry::current_ctx()) {
            Ok(reply) => {
                let reply = DirReply::decode(&reply).unwrap_or(DirReply::Err(DirError::Internal));
                // The cache fence: a successful update must not be
                // acknowledged while any read lease granted before it
                // could still serve the old contents (see
                // [`crate::cache`]).
                if !matches!(reply, DirReply::Err(_)) {
                    let objects = fence_objects(&op, &reply);
                    fence_cached_readers(ctx, applier, inval, &objects);
                }
                reply
            }
            Err(e) => DirReply::Err(rsm_err(e)),
        }
    }
}

/// The directories a just-applied update may have changed — the ones
/// whose revoked leases this initiator must see through before the
/// acknowledgement. Keyed creates and migration installs learn their
/// object from the reply: an `InstallDir` re-running a migration round
/// upserts a directory clients could already be leasing.
fn fence_objects(op: &DirOp, reply: &DirReply) -> Vec<u64> {
    let mut v = match op {
        // A grant mutates no rows; fresh creates get unleased objects.
        DirOp::GrantRead { .. } => return Vec::new(),
        DirOp::Create { .. } | DirOp::CreateKeyed { .. } | DirOp::InstallDir { .. } => Vec::new(),
        DirOp::ReplaceSet { items } => items.iter().map(|(o, _, _)| *o).collect(),
        other => vec![op_object(other)],
    };
    if let DirReply::Cap(c) = reply {
        v.push(c.object);
    }
    v.sort_unstable();
    v.dedup();
    v
}

/// Blocks until no lease granted before this initiator's just-applied
/// update can still cover a local read of `objects` — the write half of
/// the [`crate::cache`] fencing invariant. Three waits compose:
///
/// 1. **Cold-boot fence**: after a boot from salvaged state the lease
///    table may be lost; no update is acknowledged until every lease
///    granted before the crash has expired.
/// 2. **Revocation fan-out**: apply parked the object's revoked leases
///    in `Shared::revoked`; this initiator claims them and calls every
///    holder back. An unreachable holder (crashed, partitioned) is
///    waited out to its lease deadline instead.
/// 3. **Racing initiators**: a revocation claimed by another initiator
///    on this machine (its write also touched the object) is *its*
///    fan-out, but the acknowledgement still has to outwait it —
///    `Shared::inflight_inval` counts claims until their callbacks
///    finish.
fn fence_cached_readers(ctx: &Ctx, applier: &Applier, inval: &RpcClient, objects: &[u64]) {
    if objects.is_empty() {
        return;
    }
    let fence_until = applier.shared.lock().write_fence_until_us;
    let now_us = ctx.now().as_nanos() / 1_000;
    if fence_until > now_us {
        ctx.sleep(Duration::from_micros(fence_until - now_us));
    }
    let home = applier.cfg.public_port;
    loop {
        let claimed: Vec<(u64, ReadLease)> = {
            let mut shared = applier.shared.lock();
            let mut v = Vec::new();
            for &o in objects {
                if let Some(ls) = shared.revoked.remove(&o) {
                    for l in ls {
                        *shared.inflight_inval.entry(o).or_insert(0) += 1;
                        v.push((o, l));
                    }
                }
            }
            if v.is_empty() {
                let clear = objects.iter().all(|o| {
                    !shared.revoked.contains_key(o)
                        && shared.inflight_inval.get(o).copied().unwrap_or(0) == 0
                });
                if clear {
                    return;
                }
            }
            v
        };
        if claimed.is_empty() {
            // Another initiator is mid fan-out for one of our objects;
            // its completion fences us too.
            ctx.sleep(Duration::from_millis(1));
            continue;
        }
        let mut outwait_us = 0u64;
        for (o, l) in &claimed {
            if l.deadline_us <= ctx.now().as_nanos() / 1_000 {
                continue; // expired while parked: already fenced
            }
            let msg = encode_invalidation(home, *o);
            if inval.trans(ctx, Port::from_raw(l.cb_port), msg).is_err() {
                outwait_us = outwait_us.max(l.deadline_us);
            }
        }
        let now_us = ctx.now().as_nanos() / 1_000;
        if outwait_us > now_us {
            ctx.sleep(Duration::from_micros(outwait_us - now_us));
        }
        {
            let mut shared = applier.shared.lock();
            for (o, _) in &claimed {
                if let Some(n) = shared.inflight_inval.get_mut(o) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        shared.inflight_inval.remove(o);
                    }
                }
            }
        }
    }
}

fn rsm_err(e: RsmError) -> DirError {
    match e {
        RsmError::NotInService | RsmError::Aborted => DirError::NoMajority,
        RsmError::ResultLost => DirError::Internal,
    }
}

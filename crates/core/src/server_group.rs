//! The group directory server: the paper's Fig. 5 protocol, as a thin
//! service layer over the generic [`amoeba_rsm::Replica`] driver.
//!
//! Each server machine runs several **server threads** (initiators) and
//! one replica driver. Reads are served locally after the driver's read
//! barrier (drain buffered group messages); writes are validated here,
//! then replicated through [`Replica::submit`] with resilience r = 2 —
//! the initiator blocks until its own replica has applied *and
//! group-committed* the operation. View changes, reset, recovery and
//! apply batching all live in the driver; this file contains **zero
//! group-protocol code**.

use std::sync::Arc;

use amoeba_bullet::BulletClient;
use amoeba_disk::{Nvram, RawPartition};
use amoeba_group::GroupPeer;
use amoeba_rpc::{RpcNode, RpcServer};
use amoeba_rsm::{Replica, ReplicaDeps, RsmConfig, RsmError};
use amoeba_sim::{Ctx, NodeId, Resource, Spawn};
use parking_lot::Mutex;

use crate::config::{DirParams, ServiceConfig, StorageKind};
use crate::dir_sm::DirectoryStateMachine;
use crate::object_table::ObjectTable;
use crate::ops::{DirError, DirReply, DirRequest};
use crate::state::{Applier, Shared};

/// Handle to one running group directory server (one replica column).
#[derive(Clone)]
pub struct GroupDirServer {
    pub(crate) applier: Arc<Applier>,
    replica: Replica<DirectoryStateMachine>,
    cfg: ServiceConfig,
}

impl std::fmt::Debug for GroupDirServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupDirServer({})", self.cfg.me)
    }
}

/// Everything needed to start one replica of the group directory service.
pub struct GroupServerDeps {
    /// Static service configuration.
    pub cfg: ServiceConfig,
    /// Performance/behaviour parameters.
    pub params: DirParams,
    /// The machine this replica runs on.
    pub sim_node: NodeId,
    /// RPC kernel of the machine.
    pub rpc: RpcNode,
    /// Group-communication kernel of the machine.
    pub peer: GroupPeer,
    /// Client stub for this column's Bullet server.
    pub bullet: BulletClient,
    /// The raw partition holding commit block + object table.
    pub partition: RawPartition,
    /// The machine's NVRAM, if the NVRAM commit path is configured.
    pub nvram: Option<Nvram>,
    /// The machine's CPU.
    pub cpu: Resource,
}

impl std::fmt::Debug for GroupServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupServerDeps(server {})", self.cfg.me)
    }
}

/// Maps the directory service's parameters onto the generic driver's.
/// Each shard derives its ports from its own service name, so every
/// shard forms its own group with its own sequencer.
fn rsm_config(cfg: &ServiceConfig, params: &DirParams) -> RsmConfig {
    let mut rsm = RsmConfig::new(&cfg.service, cfg.n, cfg.me);
    debug_assert_eq!(rsm.group_port, cfg.group_port);
    debug_assert_eq!(rsm.internal_ports[cfg.me], cfg.internal_port(cfg.me));
    rsm.apply_batch = params.apply_batch;
    rsm.idle_timeout = params.nvram_idle_flush;
    rsm.join_timeout = params.recovery_join_timeout;
    rsm.majority_timeout = params.recovery_majority_timeout;
    rsm.retry_jitter = params.recovery_retry_jitter;
    rsm.improved_recovery = params.improved_recovery;
    rsm
}

/// Starts all processes of one group directory server replica.
pub fn start_group_server(spawner: &impl Spawn, deps: GroupServerDeps) -> GroupDirServer {
    let GroupServerDeps {
        cfg,
        params,
        sim_node,
        rpc,
        peer,
        bullet,
        partition,
        nvram,
        cpu,
    } = deps;
    if params.storage == StorageKind::Nvram {
        assert!(nvram.is_some(), "NVRAM storage configured without a device");
    }
    let table = ObjectTable::new(partition.clone());
    let shared = Arc::new(Mutex::new(Shared::new(table, cfg.n)));
    let applier = Arc::new(Applier {
        cfg: cfg.clone(),
        storage: params.storage,
        shared: Arc::clone(&shared),
        bullet,
        partition,
        nvram: nvram.clone(),
    });
    let sm = Arc::new(DirectoryStateMachine::new(
        Arc::clone(&applier),
        params.clone(),
        cpu.clone(),
    ));
    let replica = Replica::start(
        spawner,
        ReplicaDeps {
            cfg: rsm_config(&cfg, &params),
            sim_node,
            rpc: rpc.clone(),
            peer,
            sm,
        },
    );
    let server = GroupDirServer {
        applier: Arc::clone(&applier),
        replica: replica.clone(),
        cfg: cfg.clone(),
    };

    // Initiator (server) threads.
    for t in 0..params.server_threads.max(1) {
        let srv = RpcServer::new(&rpc, cfg.public_port);
        let applier = Arc::clone(&applier);
        let replica = replica.clone();
        let params = params.clone();
        let cpu = cpu.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("dir{}-srv{t}", cfg.me),
            Box::new(move |ctx| initiator_loop(ctx, &srv, &applier, &replica, &params, &cpu)),
        );
    }
    server
}

impl GroupDirServer {
    /// The current logical version (diagnostics/tests).
    pub fn update_seq(&self) -> u64 {
        self.applier.shared.lock().update_seq
    }

    /// Forces any pending NVRAM records to disk (diagnostics/tests).
    pub fn flush_storage(&self, ctx: &amoeba_sim::Ctx) {
        self.applier.flush_nvram(ctx);
    }

    /// Whether the server is in normal operation.
    pub fn is_normal(&self) -> bool {
        self.replica.is_normal()
    }

    /// The shard this server belongs to.
    pub fn shard(&self) -> usize {
        self.cfg.shard
    }

    /// This replica's driver counters — scoped to this shard's group
    /// alone, however many replicas share the machine.
    pub fn replica_stats(&self) -> amoeba_rsm::ReplicaStats {
        self.replica.stats()
    }

    /// Mints the owner capability of a directory this shard stores —
    /// **cluster-management access** (the server knows every raw
    /// check), used by the rebalancer to coordinate migrations of
    /// directories it never held a capability for. `None` for unknown
    /// or already-relocated objects.
    pub fn owner_cap(&self, object: u64) -> Option<crate::Capability> {
        let shared = self.applier.shared.lock();
        if shared.stubs.contains_key(&object) {
            return None;
        }
        shared
            .table
            .get(object)
            .map(|e| crate::Capability::owner(self.cfg.public_port, object, e.check))
    }

    /// Drains this replica's per-directory operation counters and
    /// returns the `k` hottest live directories as `(object, ops)` —
    /// the rebalancer's advisory load signal. Counters are
    /// replica-local (reads count where they are served) and reset by
    /// the drain, so successive calls report per-interval deltas.
    pub fn hot_dirs(&self, k: usize) -> Vec<(u64, u64)> {
        let mut shared = self.applier.shared.lock();
        let heat = std::mem::take(&mut shared.heat);
        let mut v: Vec<(u64, u64)> = heat
            .into_iter()
            .filter(|(o, _)| !shared.stubs.contains_key(o) && shared.table.get(*o).is_some())
            .collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Number of forwarding stubs (migrated-away directories) this
    /// shard currently holds (diagnostics/tests).
    pub fn stub_count(&self) -> usize {
        self.applier.shared.lock().stubs.len()
    }
}

/// The Fig. 5 initiator logic, one thread.
fn initiator_loop(
    ctx: &Ctx,
    srv: &RpcServer,
    applier: &Applier,
    replica: &Replica<DirectoryStateMachine>,
    params: &DirParams,
    cpu: &Resource,
) {
    loop {
        let incoming = srv.getreq(ctx);
        let req = match DirRequest::decode(&incoming.data) {
            Ok(r) => r,
            Err(_) => {
                srv.putrep(&incoming, DirReply::Err(DirError::Malformed).encode());
                continue;
            }
        };
        let reply = handle_request(ctx, applier, replica, params, cpu, &req);
        srv.putrep(&incoming, reply.encode());
    }
}

/// One request through the Fig. 5 protocol.
fn handle_request(
    ctx: &Ctx,
    applier: &Applier,
    replica: &Replica<DirectoryStateMachine>,
    params: &DirParams,
    cpu: &Resource,
    req: &DirRequest,
) -> DirReply {
    if req.is_read() {
        // "any buffered messages? … wait until seqno == buffered_seqno":
        // drain everything the kernel has ordered before us. The
        // barrier also performs the majority check ("if (!majority())
        // return failure").
        if let Err(e) = replica.read_barrier(ctx) {
            return DirReply::Err(rsm_err(e));
        }
        cpu.use_for(ctx, params.read_cpu);
        applier.serve_read(ctx, req)
    } else {
        cpu.use_for(ctx, params.write_cpu);
        // "generate check-field; SendToGroup(request…)".
        let op = match applier.prepare_write(ctx, req) {
            Ok(op) => op,
            Err(e) => return DirReply::Err(e),
        };
        // "wait until group thread has received and executed the
        // request" — submit blocks until the op is applied and
        // group-committed on this replica.
        match replica.submit(ctx, op.encode()) {
            Ok(reply) => DirReply::decode(&reply).unwrap_or(DirReply::Err(DirError::Internal)),
            Err(e) => DirReply::Err(rsm_err(e)),
        }
    }
}

fn rsm_err(e: RsmError) -> DirError {
    match e {
        RsmError::NotInService | RsmError::Aborted => DirError::NoMajority,
        RsmError::ResultLost => DirError::Internal,
    }
}

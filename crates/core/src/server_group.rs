//! The group directory server: the paper's Fig. 5 protocol.
//!
//! Each server machine runs several **server threads** (initiators) and
//! one **group thread**. Reads are served locally after draining buffered
//! group messages; writes go through `SendToGroup` with resilience r = 2
//! and the initiator blocks until its own group thread has applied the
//! operation. Group failure triggers `ResetGroup` with a majority
//! requirement; if that fails the server enters the Fig. 6 recovery
//! protocol (see [`crate::recovery`]).

use std::sync::Arc;
use std::time::Duration;

use amoeba_bullet::BulletClient;
use amoeba_disk::{Nvram, RawPartition};
use amoeba_group::{GroupError, GroupEvent, GroupPeer};
use amoeba_rpc::{RpcClient, RpcNode, RpcServer};
use amoeba_sim::{Ctx, NodeId, Resource, Spawn};
use parking_lot::Mutex;

use crate::config::{DirParams, ServiceConfig, StorageKind};
use crate::object_table::ObjectTable;
use crate::ops::{DirError, DirReply, DirRequest};
use crate::recovery::{run_recovery, serve_internal, RecoveryDeps};
use crate::state::{Applier, Mode, Shared, Wake};

/// Handle to one running group directory server (one replica column).
#[derive(Clone)]
pub struct GroupDirServer {
    pub(crate) shared: Arc<Mutex<Shared>>,
    pub(crate) applier: Arc<Applier>,
    cfg: ServiceConfig,
}

impl std::fmt::Debug for GroupDirServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupDirServer({})", self.cfg.me)
    }
}

/// Everything needed to start one replica of the group directory service.
pub struct GroupServerDeps {
    /// Static service configuration.
    pub cfg: ServiceConfig,
    /// Performance/behaviour parameters.
    pub params: DirParams,
    /// The machine this replica runs on.
    pub sim_node: NodeId,
    /// RPC kernel of the machine.
    pub rpc: RpcNode,
    /// Group-communication kernel of the machine.
    pub peer: GroupPeer,
    /// Client stub for this column's Bullet server.
    pub bullet: BulletClient,
    /// The raw partition holding commit block + object table.
    pub partition: RawPartition,
    /// The machine's NVRAM, if the NVRAM commit path is configured.
    pub nvram: Option<Nvram>,
    /// The machine's CPU.
    pub cpu: Resource,
}

impl std::fmt::Debug for GroupServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GroupServerDeps(server {})", self.cfg.me)
    }
}

/// Starts all processes of one group directory server replica.
pub fn start_group_server(spawner: &impl Spawn, deps: GroupServerDeps) -> GroupDirServer {
    let GroupServerDeps {
        cfg,
        params,
        sim_node,
        rpc,
        peer,
        bullet,
        partition,
        nvram,
        cpu,
    } = deps;
    if params.storage == StorageKind::Nvram {
        assert!(nvram.is_some(), "NVRAM storage configured without a device");
    }
    let table = ObjectTable::new(partition.clone());
    let shared = Arc::new(Mutex::new(Shared::new(table, cfg.n)));
    let applier = Arc::new(Applier {
        cfg: cfg.clone(),
        storage: params.storage,
        shared: Arc::clone(&shared),
        bullet,
        partition,
        nvram: nvram.clone(),
    });
    let server = GroupDirServer {
        shared: Arc::clone(&shared),
        applier: Arc::clone(&applier),
        cfg: cfg.clone(),
    };

    // Internal (server-to-server) RPC service: recovery info exchange and
    // state transfer. Always answered, even while recovering.
    {
        let srv = RpcServer::new(&rpc, cfg.internal_port(cfg.me));
        let applier = Arc::clone(&applier);
        let cfg2 = cfg.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("dir{}-internal", cfg.me),
            Box::new(move |ctx| serve_internal(ctx, &srv, &applier, &cfg2)),
        );
    }

    // Initiator (server) threads.
    for t in 0..params.server_threads.max(1) {
        let srv = RpcServer::new(&rpc, cfg.public_port);
        let applier = Arc::clone(&applier);
        let params = params.clone();
        let cpu = cpu.clone();
        let cfg2 = cfg.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("dir{}-srv{t}", cfg.me),
            Box::new(move |ctx| initiator_loop(ctx, &srv, &applier, &cfg2, &params, &cpu)),
        );
    }

    // Main thread: recovery, then the Fig. 5 group-thread loop, forever.
    {
        let applier = Arc::clone(&applier);
        let params = params.clone();
        let cpu = cpu.clone();
        let rpc_client = RpcClient::new(&rpc);
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("dir{}-main", cfg.me),
            Box::new(move |ctx| main_loop(ctx, &applier, &cfg, &params, &peer, &rpc_client, &cpu)),
        );
    }
    server
}

impl GroupDirServer {
    /// The current logical version (diagnostics/tests).
    pub fn update_seq(&self) -> u64 {
        self.shared.lock().update_seq
    }

    /// Forces any pending NVRAM records to disk (diagnostics/tests).
    pub fn flush_storage(&self, ctx: &amoeba_sim::Ctx) {
        self.applier.flush_nvram(ctx);
    }

    /// Whether the server is in normal operation.
    pub fn is_normal(&self) -> bool {
        self.shared.lock().mode == Mode::Normal
    }
}

/// The Fig. 5 initiator logic, one thread.
fn initiator_loop(
    ctx: &Ctx,
    srv: &RpcServer,
    applier: &Applier,
    cfg: &ServiceConfig,
    params: &DirParams,
    cpu: &Resource,
) {
    loop {
        let incoming = srv.getreq(ctx);
        let req = match DirRequest::decode(&incoming.data) {
            Ok(r) => r,
            Err(_) => {
                srv.putrep(&incoming, DirReply::Err(DirError::Malformed).encode());
                continue;
            }
        };
        let reply = handle_request(ctx, applier, cfg, params, cpu, &req);
        srv.putrep(&incoming, reply.encode());
    }
}

/// One request through the Fig. 5 protocol.
fn handle_request(
    ctx: &Ctx,
    applier: &Applier,
    cfg: &ServiceConfig,
    params: &DirParams,
    cpu: &Resource,
    req: &DirRequest,
) -> DirReply {
    // "if (!majority()) return failure".
    let group = {
        let shared = applier.shared.lock();
        if shared.mode != Mode::Normal {
            return DirReply::Err(DirError::NoMajority);
        }
        match &shared.group {
            Some(g) => Arc::clone(g),
            None => return DirReply::Err(DirError::NoMajority),
        }
    };
    let info = match group.info() {
        Ok(i) if !i.failed && i.view.len() >= cfg.majority() => i,
        _ => return DirReply::Err(DirError::NoMajority),
    };

    if req.is_read() {
        // "any buffered messages? … wait until seqno == buffered_seqno":
        // drain everything the kernel has ordered before us.
        let target = info.highest_contiguous;
        let behind = { applier.shared.lock().applied_group_seq < target };
        if behind {
            let (tx, rx) = ctx.handle().channel();
            {
                let mut shared = applier.shared.lock();
                if shared.applied_group_seq < target {
                    shared.waiters.push((target, tx));
                } else {
                    tx.send(Wake::Applied);
                }
            }
            if rx.recv(ctx) == Wake::Aborted {
                return DirReply::Err(DirError::NoMajority);
            }
        }
        cpu.use_for(ctx, params.read_cpu);
        applier.serve_read(ctx, req)
    } else {
        cpu.use_for(ctx, params.write_cpu);
        // "generate check-field; SendToGroup(request…)".
        let op = match applier.prepare_write(ctx, req) {
            Ok(op) => op,
            Err(e) => return DirReply::Err(e),
        };
        let seq = match group.send(ctx, op.encode()) {
            Ok(seq) => seq,
            Err(_) => return DirReply::Err(DirError::NoMajority),
        };
        // "wait until group thread has received and executed the request".
        let (tx, rx) = ctx.handle().channel();
        {
            let mut shared = applier.shared.lock();
            if shared.applied_group_seq < seq {
                shared.waiters.push((seq, tx));
            } else {
                tx.send(Wake::Applied);
            }
        }
        if rx.recv(ctx) == Wake::Aborted {
            return DirReply::Err(DirError::NoMajority);
        }
        let result = { applier.shared.lock().results.remove(&seq) };
        result.unwrap_or(DirReply::Err(DirError::Internal))
    }
}

/// The server main process: recovery → normal operation → (on collapse)
/// recovery again, forever.
#[allow(clippy::too_many_arguments)]
fn main_loop(
    ctx: &Ctx,
    applier: &Applier,
    cfg: &ServiceConfig,
    params: &DirParams,
    peer: &GroupPeer,
    rpc_client: &RpcClient,
    cpu: &Resource,
) {
    loop {
        let deps = RecoveryDeps {
            cfg: cfg.clone(),
            params: params.clone(),
            peer: peer.clone(),
            rpc: rpc_client.clone(),
        };
        let group = run_recovery(ctx, applier, &deps);
        let group = Arc::new(group);
        {
            let mut shared = applier.shared.lock();
            shared.group = Some(Arc::clone(&group));
            shared.mode = Mode::Normal;
            shared.stayed_up = true;
        }
        group_thread(ctx, applier, cfg, params, &group, cpu);
        // Collapsed: back to recovery.
        {
            let mut shared = applier.shared.lock();
            shared.mode = Mode::Recovering;
            shared.group = None;
            shared.abort_waiters();
        }
    }
}

/// The Fig. 5 group-thread loop. Returns when the group is beyond repair
/// (recovery required).
fn group_thread(
    ctx: &Ctx,
    applier: &Applier,
    cfg: &ServiceConfig,
    params: &DirParams,
    group: &Arc<amoeba_group::Group>,
    cpu: &Resource,
) {
    let idle = params.nvram_idle_flush;
    loop {
        let event = match group.recv_timeout(ctx, idle) {
            Some(e) => e,
            None => {
                // Idle: apply NVRAM modifications to disk (§4.1: "when the
                // server is idle or the NVRAM is full").
                if params.storage == StorageKind::Nvram {
                    applier.flush_nvram(ctx);
                }
                continue;
            }
        };
        match event {
            Ok(GroupEvent::Message { seq, data, .. }) => {
                let skip = { applier.shared.lock().applied_group_seq >= seq };
                if skip {
                    continue; // already covered by a fetched state snapshot
                }
                cpu.use_for(ctx, params.apply_cpu);
                let reply = match crate::ops::DirOp::decode(&data) {
                    Ok(op) => applier.apply(ctx, seq, &op),
                    Err(_) => DirReply::Err(DirError::Malformed),
                };
                let mut shared = applier.shared.lock();
                shared.applied_group_seq = seq;
                shared.results.insert(seq, reply);
                shared.prune_results();
                shared.wake_applied();
                // NVRAM full check (flush outside the lock).
                let must_flush = params.storage == StorageKind::Nvram
                    && applier
                        .nvram
                        .as_ref()
                        .map(|n| n.fill_fraction() >= params.nvram_flush_threshold)
                        .unwrap_or(false);
                drop(shared);
                if must_flush {
                    applier.flush_nvram(ctx);
                }
            }
            Ok(GroupEvent::Joined { seq, member }) | Ok(GroupEvent::Left { seq, member }) => {
                let _ = member;
                let mut shared = applier.shared.lock();
                if shared.applied_group_seq < seq {
                    shared.applied_group_seq = seq;
                }
                shared.wake_applied();
                // Update the configuration vector from the new view.
                let view = group.info().map(|i| i.view).unwrap_or_default();
                let mut config = vec![false; cfg.n];
                for m in &view.members {
                    if (m.tag as usize) < cfg.n {
                        config[m.tag as usize] = true;
                    }
                }
                shared.commit.config = config;
                let cb = shared.commit.clone();
                drop(shared);
                cb.write(&applier.partition, ctx);
            }
            Ok(GroupEvent::ResetDone { view, .. }) => {
                // "GetInfoGroup(&group_state); write commit block".
                let mut shared = applier.shared.lock();
                let mut config = vec![false; cfg.n];
                for m in &view.members {
                    if (m.tag as usize) < cfg.n {
                        config[m.tag as usize] = true;
                    }
                }
                shared.commit.config = config;
                let cb = shared.commit.clone();
                drop(shared);
                cb.write(&applier.partition, ctx);
            }
            Err(GroupError::Failed) => {
                // "rebuild majority of group; if rebuild failed enter
                // recovery".
                match group.reset(ctx, cfg.majority(), Duration::from_secs(3)) {
                    Ok(_info) => continue, // ResetDone event follows
                    Err(_) => return,
                }
            }
            Err(_) => return, // Dead / expelled: recovery
        }
    }
}

//! The directory service as a replicated state machine: the
//! [`amoeba_rsm::StateMachine`] implementation driving
//! [`Applier`]-based state, with **group-commit apply batching** on the
//! disk path.
//!
//! ## Batching / durability invariants
//!
//! * `apply` is deterministic and updates RAM state (directory cache,
//!   object table, `update_seq`) plus the applied cursor in one
//!   critical section; disk effects are *deferred* into a batch buffer.
//! * `flush` — called once per batch by the driver, before any
//!   initiator is woken — coalesces the deferred effects: only each
//!   object's **final** state is written (k updates to one directory
//!   cost one Bullet file + one object-table write instead of k each),
//!   and ordering follows the batch's op order so a crash leaves a
//!   clean prefix when the batch touched a single object.
//! * A batch whose effects span **multiple** objects cannot be made
//!   durable atomically with per-object writes, so `flush` brackets it
//!   with the commit block's `recovering` flag: a crash mid-flush makes
//!   this replica's state "worthless" at next boot (§3's rule), forcing
//!   recovery to copy a consistent state from a surviving peer —
//!   recovery never observes a partially applied batch.
//! * On the NVRAM path the log append inside `apply` *is* the group
//!   commit (already amortized, §4.1); `flush` only polices the
//!   fill-threshold background flush.
//!
//! ## Pipelined group commit (flush window > 1)
//!
//! With [`DirParams::flush_window`] > 1 the driver overlaps apply of
//! batch N+1 with the durable flush of batch N, so the two flush
//! stages replace `flush`:
//!
//! * `seal_batch` — on the event loop, right after the batch's applies:
//!   coalesces the pending effects and captures everything their
//!   durable flush needs (directory contents, table checks, the commit
//!   seqno as of this batch) into an immutable [`StagedBatch`]. No disk
//!   I/O; later applies cannot alter a sealed batch.
//! * `flush_staged` — on the flusher process, in seal order: replays
//!   the sealed acts against the object table's **durable mirror**
//!   (exactly what is on disk), so table-block writes never leak the
//!   RAM state running ahead of them, and old-file deletions free the
//!   *durable* predecessor file — which also covers the
//!   deleted-then-recreated case the serial path handles with an
//!   explicit free list. The multi-object `recovering` guard brackets
//!   each staged batch exactly as in the serial path, with the sealed
//!   seqno, so a crash with up to W batches in flight salvages the
//!   durable prefix and never observes un-flushed state.
//! * `flush_staged_run` — the queued submission: when several sealed
//!   batches wait behind one flush, they merge into a single batch
//!   (per object only the last sealed act survives — interim versions
//!   are never written) retired by one disk conversation. That
//!   conversation is region-phased: guard block, then every Bullet
//!   create back-to-back (sequential allocation ⇒ settled, seek-free
//!   accesses), then each *distinct* touched table block exactly once,
//!   then the commit block, then metadata-only frees — so k updates
//!   cost ~2 seeks plus k settled writes instead of 2k seeks.
//!
//! ## The group log (journal on)
//!
//! With [`DirParams::journal`] the durable half of every commit changes
//! shape: instead of writing a batch's Bullet files and table blocks in
//! place (~2 seeks per run even region-phased), the flush path encodes
//! the merged run as one self-delimiting, checksummed **journal
//! record** ([`amoeba_disk::Journal`]) and appends it to the disk's
//! reserved journal region — or to NVRAM with
//! [`DirParams::journal_nvram`] — as a single sequential conversation,
//! ~1 seek per run. The record's last frame is the commit point: once
//! the append returns, every op of the run is durable and its
//! initiators may be woken.
//!
//! The table writeback moves off the commit path entirely. Each
//! journaled act also lands in a RAM **dirty set** (per object,
//! last-wins — the queued-submission merge rule), which the driver's
//! background checkpointer drains every
//! [`DirParams::checkpoint_interval`] into real Bullet/table blocks and
//! then advances the journal's tail. The ordering invariants that make
//! a crash at any yield point safe:
//!
//! 1. `journal_commit` inserts a batch's acts into the dirty set
//!    **before** appending its record, and a checkpoint reads its reset
//!    mark ([`Journal::next_seq`](amoeba_disk::Journal::next_seq))
//!    **before** snapshotting the dirty set — so the tail can only ever
//!    advance past records whose acts the drained snapshot held.
//! 2. The tail advance
//!    ([`Journal::try_reset`](amoeba_disk::Journal::try_reset)) runs
//!    strictly **after** the drained acts are durable in Bullet,
//!    table and commit block. A crash mid-checkpoint leaves every
//!    uncovered record in the journal, and replay is idempotent (acts
//!    are absolute object states, not deltas) — at worst a Bullet
//!    file leaks.
//! 3. Boot replays surviving records, oldest first, into RAM state
//!    *after* the usual table salvage, and re-enters their acts into
//!    the dirty set so the next checkpoint persists them. A torn tail
//!    record truncates at its first bad checksum and loses nothing
//!    acknowledged — its append never returned, so no initiator was
//!    woken.
//! 4. A **full journal** backpressures by running the checkpoint
//!    inline: the failed batch's acts are already in the dirty set
//!    (invariant 1), so the inline drain makes them durable the
//!    in-place way and the commit holds without a journal record.
//!
//! The multi-object `recovering` guard is not used on this path:
//! journal replay reconstructs any batch a crash interrupted, which is
//! exactly the hole the guard existed to void.

use std::sync::Arc;

use amoeba_bullet::FileCap;
use amoeba_flip::wire::{WireReader, WireWriter};
use amoeba_flip::Payload;
use amoeba_rsm::{RecoveryInfo, StateMachine};
use amoeba_sim::{Ctx, Resource};
use parking_lot::Mutex;

use crate::commit_block::CommitBlock;
use crate::config::{DirParams, StorageKind};
use crate::directory::Directory;
use crate::object_table::{ObjEntry, ObjectTable};
use crate::ops::{DirError, DirOp, DirReply};
use crate::state::{Applier, Effect};

/// The directory service's state machine. All group-protocol behaviour
/// (ordering, recovery, batching) comes from the generic
/// [`amoeba_rsm::Replica`] driving it.
pub struct DirectoryStateMachine {
    pub(crate) applier: Arc<Applier>,
    params: DirParams,
    cpu: Resource,
    /// Disk effects of the batch being applied, deferred until the
    /// driver's group-commit `flush` (or sealed per batch in pipelined
    /// mode).
    pending: Mutex<Vec<Effect>>,
    /// Sealed-but-unflushed batches of the pipelined commit, in token
    /// order: the event loop pushes in `seal_batch`, the flusher pops
    /// in `flush_staged`.
    staged: Mutex<std::collections::VecDeque<StagedBatch>>,
    /// The group log's writeback bookkeeping (see the module docs):
    /// the dirty set between journal appends and the checkpointer's
    /// table writeback. Unused with the journal off.
    ckpt: Mutex<CkptState>,
}

/// Journal-path state. The `busy` flag is the checkpoint's sim-safe
/// exclusion — sleep-polled, never an OS mutex held across disk I/O —
/// because a drain can run from the driver's background checkpointer
/// process, inline on journal-full backpressure, *and* must be
/// quiescent before recovery's copy/install writes the disk.
#[derive(Default)]
struct CkptState {
    /// Per-object final act of every journaled-but-not-yet-checkpointed
    /// batch (last-wins — the queued-submission merge rule).
    dirty: std::collections::HashMap<u64, StagedAct>,
    /// Highest sealed commit seqno the dirty set covers; the
    /// checkpoint's commit-block write carries it.
    covered_seqno: u64,
    /// Whether any covered batch lost a file (delete / migration stub).
    need_commit: bool,
    /// A checkpoint drain is in flight.
    busy: bool,
}

impl std::fmt::Debug for DirectoryStateMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DirectoryStateMachine(server {})", self.applier.cfg.me)
    }
}

impl DirectoryStateMachine {
    /// Wraps an applier (shared with the initiator threads) into the
    /// state machine the replica driver runs.
    pub(crate) fn new(applier: Arc<Applier>, params: DirParams, cpu: Resource) -> Self {
        DirectoryStateMachine {
            applier,
            params,
            cpu,
            pending: Mutex::new(Vec::new()),
            staged: Mutex::new(std::collections::VecDeque::new()),
            ckpt: Mutex::new(CkptState::default()),
        }
    }

    /// Builds a machine with its own private state over the given
    /// storage, without any server processes — for driving the trait
    /// directly (conformance tests, tooling). Production servers are
    /// wired through [`crate::start_group_server`] instead.
    pub fn standalone(
        cfg: crate::ServiceConfig,
        params: DirParams,
        bullet: amoeba_bullet::BulletClient,
        partition: amoeba_disk::RawPartition,
        nvram: Option<amoeba_disk::Nvram>,
        journal: Option<amoeba_disk::Journal>,
        cpu: Resource,
    ) -> Self {
        let table = ObjectTable::new(partition.clone());
        let shared = Arc::new(Mutex::new(crate::state::Shared::new(table, cfg.n)));
        let applier = Arc::new(Applier {
            cfg,
            storage: params.storage,
            shared,
            bullet,
            partition,
            nvram,
            journal,
            max_lease_us: params.max_lease.as_micros() as u64,
            lease_renewals: params.lease_renewals,
        });
        Self::new(applier, params, cpu)
    }

    /// The logical version of the machine's state (diagnostics/tests).
    pub fn update_seq(&self) -> u64 {
        self.applier.shared.lock().update_seq
    }

    /// A fresh machine over the same storage with cold RAM state —
    /// what a reboot of this column would produce. For durability
    /// probes in tests.
    pub fn reopen_for_test(&self) -> DirectoryStateMachine {
        Self::standalone(
            self.applier.cfg.clone(),
            self.params.clone(),
            self.applier.bullet.clone(),
            self.applier.partition.clone(),
            self.applier.nvram.clone(),
            self.applier.journal.as_ref().map(|j| j.reopen()),
            self.cpu.clone(),
        )
    }

    /// The final per-object disk work of one batch, coalesced.
    fn coalesce(effects: Vec<Effect>) -> (Vec<(u64, FinalAct)>, Vec<FileCap>, bool) {
        use std::collections::HashMap;
        let mut last: HashMap<u64, usize> = HashMap::new();
        for (i, e) in effects.iter().enumerate() {
            last.insert(e.object(), i);
        }
        let mut acts: Vec<(u64, FinalAct)> = Vec::new();
        let mut frees: Vec<FileCap> = Vec::new();
        let mut need_commit = false;
        for (i, e) in effects.into_iter().enumerate() {
            let object = e.object();
            let is_final = last.get(&object) == Some(&i);
            match e {
                Effect::StoreDir { dir, .. } => {
                    if is_final {
                        acts.push((object, FinalAct::Store(dir)));
                    }
                    // Non-final stores are pure coalescing wins: the
                    // object's later state supersedes them and their
                    // Bullet file was never created.
                }
                Effect::DropDir { old_file, .. } => {
                    need_commit = true;
                    if is_final {
                        acts.push((object, FinalAct::Drop { old_file }));
                    } else if !old_file.is_null() {
                        // Deleted then re-created within the batch: the
                        // pre-batch file still must be freed.
                        frees.push(old_file);
                    }
                }
                Effect::StoreStub { old_file, .. } => {
                    // Migration tombstone: like a delete, the op loses its
                    // file (commit-block write needed), but the table
                    // entry is kept and persisted rather than cleared.
                    need_commit = true;
                    if is_final {
                        acts.push((object, FinalAct::Stub { old_file }));
                    } else if !old_file.is_null() {
                        frees.push(old_file);
                    }
                }
            }
        }
        (acts, frees, need_commit)
    }
}

enum FinalAct {
    Store(Directory),
    Drop { old_file: FileCap },
    Stub { old_file: FileCap },
}

/// One batch's durable work, sealed by `seal_batch` on the event loop
/// and retired by `flush_staged` on the flusher — immutable from seal
/// time on, so later applies can't reach into a batch already in
/// flight.
struct StagedBatch {
    token: u64,
    acts: Vec<(u64, StagedAct)>,
    /// `Shared::commit.seqno` as of the end of this batch's applies:
    /// the seqno the guard/commit-block writes of *this* batch carry.
    /// Using the live value instead would let a crash salvage claim
    /// coverage of later, still-unflushed batches.
    commit_seqno: u64,
    need_commit: bool,
}

/// Like [`FinalAct`], but self-contained: the check/seqno a table write
/// needs are captured at seal time (exact — seal runs synchronously
/// after the batch's applies), and old-file capabilities are *not*
/// carried — the flusher frees whatever the durable mirror says is the
/// object's current on-disk file.
enum StagedAct {
    Store { dir: Directory, check: u64 },
    Drop,
    Stub { seqno: u64, check: u64 },
}

/// A [`StagedAct`] whose Bullet file (phase one of `flush_staged`) has
/// already been created — what remains is its object-table mutation.
enum ResolvedAct {
    Store {
        file: FileCap,
        seqno: u64,
        check: u64,
    },
    Drop,
    Stub {
        seqno: u64,
        check: u64,
    },
}

impl DirectoryStateMachine {
    /// Makes one sealed (possibly merged) batch durable: guard block,
    /// then the batch's disk work in region-grouped phases so a
    /// head-aware disk charges one seek per region instead of one per
    /// object, then the commit block, then metadata-only frees.
    fn flush_batch(&self, ctx: &Ctx, batch: StagedBatch) {
        let applier = &self.applier;
        if batch.acts.is_empty() {
            return;
        }
        // The serial path's multi-object guard, per staged batch: a
        // crash mid-flush must void (to the salvageable-prefix rule)
        // rather than expose a half-written batch. The guard carries
        // the sealed seqno — never the live one, which later unflushed
        // batches may already have advanced.
        let guard = batch.acts.len() > 1;
        if guard {
            let cb = {
                let shared = applier.shared.lock();
                let mut cb = shared.commit.clone();
                cb.recovering = true;
                cb.seqno = batch.commit_seqno;
                cb
            };
            cb.write(&applier.partition, ctx);
        }
        let write_commit = guard || batch.need_commit;
        self.drain_acts(ctx, batch, write_commit, guard);
    }

    /// The region-phased durable write-back of one batch's acts —
    /// Bullet creates, mirror-tracked table blocks, optional commit
    /// block, old-file frees — without any `recovering` bracket
    /// (callers add their own when they need one; the checkpoint path
    /// never does, journal replay covers its crashes).
    fn drain_acts(&self, ctx: &Ctx, batch: StagedBatch, write_commit: bool, bump_epoch: bool) {
        let applier = &self.applier;
        // Phase one — Bullet creates. The batch's new files are written
        // back-to-back, so the store's sequential allocation turns each
        // create after the first into a settled (seek-free) access on a
        // head-aware disk. Safe to run before the table writes: a file
        // nothing points at is just a leak for recovery to ignore.
        let mut resolved: Vec<(u64, ResolvedAct)> = Vec::with_capacity(batch.acts.len());
        for (object, act) in batch.acts {
            match act {
                StagedAct::Store { dir, check } => {
                    // Err means the storage column is down; recovery
                    // resyncs the object, so the act is just skipped.
                    if let Ok(file) = applier.bullet.create(ctx, dir.encode()) {
                        resolved.push((
                            object,
                            ResolvedAct::Store {
                                file,
                                seqno: dir.seqno,
                                check,
                            },
                        ));
                    }
                }
                StagedAct::Drop => resolved.push((object, ResolvedAct::Drop)),
                StagedAct::Stub { seqno, check } => {
                    resolved.push((object, ResolvedAct::Stub { seqno, check }));
                }
            }
        }
        // Phase two — the object-table commit. All mirror mutations land
        // first, then every *distinct* touched block is written exactly
        // once: a batch of appends to directories sharing a table block
        // costs one block write instead of one per directory, and the
        // queued writes land on adjacent blocks.
        let (olds, waiters) = {
            let mut shared = applier.shared.lock();
            let mut olds: Vec<FileCap> = Vec::new();
            let mut blocks: Vec<u64> = Vec::new();
            for (object, act) in &resolved {
                let old = shared.table.durable_get(*object);
                let keep = match act {
                    ResolvedAct::Store { file, seqno, check } => {
                        shared.table.durable_set(
                            *object,
                            ObjEntry {
                                file_cap: *file,
                                seqno: *seqno,
                                check: *check,
                            },
                        );
                        Some(*file) // recreation over the same file is no free
                    }
                    ResolvedAct::Drop => {
                        shared.table.durable_clear(*object);
                        None
                    }
                    ResolvedAct::Stub { seqno, check } => {
                        shared.table.durable_set(
                            *object,
                            ObjEntry {
                                file_cap: FileCap::NULL, // contentless by design
                                seqno: *seqno,
                                check: *check,
                            },
                        );
                        None
                    }
                };
                if let Some(old) = old {
                    if !old.file_cap.is_null() && keep != Some(old.file_cap) {
                        olds.push(old.file_cap);
                    }
                }
                if let Some(b) = shared.table.block_of(*object) {
                    if !blocks.contains(&b) {
                        blocks.push(b);
                    }
                }
            }
            let waiters: Vec<_> = blocks
                .into_iter()
                .filter_map(|b| shared.table.durable_flush_block_begin(b))
                .collect();
            (olds, waiters)
        };
        for w in waiters {
            w.recv(ctx);
        }
        if write_commit {
            let cb = {
                let mut shared = applier.shared.lock();
                if bump_epoch {
                    // Same epoch bookkeeping as the serial path: a
                    // completed guarded flush closes one generation.
                    shared.commit.epoch += 1;
                }
                let mut cb = shared.commit.clone();
                cb.recovering = false;
                cb.seqno = batch.commit_seqno;
                cb
            };
            cb.write(&applier.partition, ctx);
        }
        // Phase three — free the files the batch superseded, now that
        // the table durably points past them. Deletes are metadata-only
        // on the Bullet server (no disk access); doing them last means
        // a crash leaks a file at worst, never dangles a capability.
        for f in olds {
            let _ = applier.bullet.delete(ctx, f);
        }
    }

    /// Captures coalesced final acts as a sealed batch: directory
    /// contents, table checks, and the commit seqno as of now (exact —
    /// callers run synchronously after the batch's applies).
    fn seal_acts(&self, token: u64, acts: Vec<(u64, FinalAct)>, need_commit: bool) -> StagedBatch {
        let shared = self.applier.shared.lock();
        let acts = acts
            .into_iter()
            .map(|(object, act)| {
                let entry = shared.table.get(object);
                let staged = match act {
                    FinalAct::Store(dir) => StagedAct::Store {
                        dir,
                        check: entry.map(|e| e.check).unwrap_or(0),
                    },
                    FinalAct::Drop { .. } => StagedAct::Drop,
                    FinalAct::Stub { .. } => StagedAct::Stub {
                        seqno: entry.map(|e| e.seqno).unwrap_or(0),
                        check: entry.map(|e| e.check).unwrap_or(0),
                    },
                };
                (object, staged)
            })
            .collect();
        StagedBatch {
            token,
            acts,
            commit_seqno: shared.commit.seqno,
            need_commit,
        }
    }

    /// The journaled commit: one sequential record append *is* the
    /// durable group commit of the (merged) batch. The acts enter the
    /// dirty set strictly before the append, so a concurrent
    /// checkpoint's tail advance can never outrun them (module-docs
    /// invariant 1).
    fn journal_commit(&self, ctx: &Ctx, batch: StagedBatch) {
        if batch.acts.is_empty() {
            return;
        }
        let journal = self
            .applier
            .journal
            .as_ref()
            .expect("journaled commit without a journal");
        let record = encode_journal_record(&batch);
        {
            let mut ckpt = self.ckpt.lock();
            ckpt.covered_seqno = ckpt.covered_seqno.max(batch.commit_seqno);
            ckpt.need_commit |= batch.need_commit;
            for (object, act) in batch.acts {
                ckpt.dirty.insert(object, act);
            }
        }
        match journal.append(ctx, &record) {
            Ok(_) => {
                let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
                tele.gauge("dir.journal.depth", journal.depth() as i64);
            }
            Err(amoeba_disk::JournalFull) => {
                // Backpressure: drain the dirty set — which already
                // holds this batch (invariant 1) — durably the in-place
                // way. The batch commits through the checkpoint itself;
                // no record, and no append retry, is needed.
                self.run_checkpoint(ctx);
            }
        }
    }

    /// Acquires the checkpoint drain's sleep-polled exclusion flag.
    fn ckpt_acquire(&self, ctx: &Ctx) {
        loop {
            {
                let mut ckpt = self.ckpt.lock();
                if !ckpt.busy {
                    ckpt.busy = true;
                    return;
                }
            }
            ctx.sleep(std::time::Duration::from_micros(100));
        }
    }

    fn ckpt_release(&self) {
        self.ckpt.lock().busy = false;
    }

    /// One checkpoint pass: snapshot the dirty set, write it back into
    /// real Bullet/table blocks (+ commit block when a covered batch
    /// lost a file), then advance the journal's tail — iff no record
    /// arrived since the mark. A failed tail advance is benign: the
    /// drained records' replay is idempotent, and the next pass covers
    /// the newcomers.
    pub(crate) fn run_checkpoint(&self, ctx: &Ctx) {
        let Some(journal) = self.applier.journal.as_ref() else {
            return;
        };
        self.ckpt_acquire(ctx);
        // Mark before dirty snapshot (module-docs invariant 1).
        let mark = journal.next_seq();
        let (acts, covered_seqno, need_commit) = {
            let mut ckpt = self.ckpt.lock();
            let mut acts: Vec<(u64, StagedAct)> =
                std::mem::take(&mut ckpt.dirty).into_iter().collect();
            acts.sort_unstable_by_key(|&(o, _)| o);
            (
                acts,
                ckpt.covered_seqno,
                std::mem::take(&mut ckpt.need_commit),
            )
        };
        if !acts.is_empty() {
            self.drain_acts(
                ctx,
                StagedBatch {
                    token: 0,
                    acts,
                    commit_seqno: covered_seqno,
                    need_commit,
                },
                need_commit,
                false,
            );
        }
        // Tail advance strictly after the write-back is durable
        // (module-docs invariant 2).
        let _ = journal.try_reset(ctx, mark);
        let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
        tele.gauge("dir.journal.depth", journal.depth() as i64);
        self.ckpt_release();
    }
}

/// Journal record wire format: `u64 commit_seqno, u32 need_commit,
/// u32 n_acts`, then per act `u64 object, u32 kind` with kind 0 =
/// Store (`u64 check` + length-prefixed directory encoding), 1 = Drop,
/// 2 = Stub (`u64 seqno, u64 check`). Acts are absolute final states,
/// so replaying a record any number of times is idempotent.
fn encode_journal_record(batch: &StagedBatch) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(16 + batch.acts.len() * 64);
    w.u64(batch.commit_seqno)
        .u32(batch.need_commit as u32)
        .u32(batch.acts.len() as u32);
    for (object, act) in &batch.acts {
        w.u64(*object);
        match act {
            StagedAct::Store { dir, check } => {
                w.u32(0).u64(*check).bytes(&dir.encode());
            }
            StagedAct::Drop => {
                w.u32(1);
            }
            StagedAct::Stub { seqno, check } => {
                w.u32(2).u64(*seqno).u64(*check);
            }
        }
    }
    w.finish()
}

/// A decoded journal record: the batch's commit-seqno claim, whether it
/// needs a commit-block write at checkpoint, and its acts.
type JournalRecord = (u64, bool, Vec<(u64, StagedAct)>);

/// Decodes one journal record; `None` on any malformation (the journal
/// already checksums frames, so this only guards against version skew).
fn decode_journal_record(bytes: &[u8]) -> Option<JournalRecord> {
    let payload = Payload::new(bytes.to_vec());
    let mut r = WireReader::of(&payload);
    let commit_seqno = r.u64("commit seqno").ok()?;
    let need_commit = r.u32("need commit").ok()? != 0;
    let n = r.u32("acts").ok()?;
    if n as usize > 1_000_000 {
        return None;
    }
    let mut acts = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let object = r.u64("object").ok()?;
        let act = match r.u32("kind").ok()? {
            0 => {
                let check = r.u64("check").ok()?;
                let dir = Directory::decode(r.bytes("dir bytes").ok()?).ok()?;
                StagedAct::Store { dir, check }
            }
            1 => StagedAct::Drop,
            2 => StagedAct::Stub {
                seqno: r.u64("seqno").ok()?,
                check: r.u64("check").ok()?,
            },
            _ => return None,
        };
        acts.push((object, act));
    }
    Some((commit_seqno, need_commit, acts))
}

impl StateMachine for DirectoryStateMachine {
    fn apply(&self, ctx: &Ctx, seq: u64, op: &Payload) -> Payload {
        let applier = &self.applier;
        let op = match DirOp::decode(op) {
            Ok(op) => op,
            Err(_) => {
                // Malformed ops still consume their slot.
                let mut shared = applier.shared.lock();
                shared.applied_group_seq = shared.applied_group_seq.max(seq);
                return DirReply::Err(DirError::Malformed).encode().into();
            }
        };
        self.cpu.use_for(ctx, self.params.apply_cpu);
        applier.preload_for(ctx, &op);
        let planned = {
            let mut shared = applier.shared.lock();
            let r = applier.plan(&mut shared, &op, None);
            // Revoke-on-apply: every object this op mutates loses its
            // outstanding read leases *in the same critical section as
            // the mutation* — ordered in the total order, so a grant
            // and a write racing through different initiators land
            // deterministically on one side of each other on every
            // replica. The initiator that submitted the write fans the
            // parked revocations out before acknowledging.
            if let Ok((_, effects, _)) = &r {
                for e in effects {
                    shared.revoke_leases(e.object());
                }
            }
            // Expired parked revocations need no callback — the holder
            // rejects the entry itself once the deadline passes — and
            // must not pile up at replicas whose initiators never claim
            // them (volatile bookkeeping; determinism not required).
            let now_us = ctx.now().as_nanos() / 1_000;
            shared.revoked.retain(|_, ls| {
                ls.retain(|l| l.deadline_us > now_us);
                !ls.is_empty()
            });
            // The cursor moves with the mutation, in the same critical
            // section, so snapshots are always cursor-consistent.
            shared.applied_group_seq = shared.applied_group_seq.max(seq);
            shared.last_update_at = ctx.now();
            r
        };
        let (reply, effects, useq) = match planned {
            Ok(v) => v,
            Err(e) => return DirReply::Err(e).encode().into(),
        };
        match applier.storage {
            StorageKind::Disk => self.pending.lock().extend(effects),
            StorageKind::Nvram => {
                // Lease grants are volatile replicated state: nothing
                // to make durable, so they skip the log (replaying one
                // after a reboot would only plant an already-expired
                // lease).
                if !matches!(op, DirOp::GrantRead { .. }) {
                    applier.commit_nvram(ctx, useq, &op);
                }
            }
        }
        reply.encode().into()
    }

    fn flush(&self, ctx: &Ctx) {
        let applier = &self.applier;
        if applier.storage == StorageKind::Nvram {
            // The log appends in `apply` were the durable commit; only
            // police the fill threshold here.
            let full = applier
                .nvram
                .as_ref()
                .map(|n| n.fill_fraction() >= self.params.nvram_flush_threshold)
                .unwrap_or(false);
            if full {
                applier.flush_nvram(ctx);
            }
            return;
        }
        let effects = std::mem::take(&mut *self.pending.lock());
        if effects.is_empty() {
            return;
        }
        let (acts, frees, need_commit) = Self::coalesce(effects);
        if applier.journal.is_some() {
            // The group log: one sequential record append is the
            // commit, even on the serial (window 1) driver. `frees` is
            // deliberately dropped, as in `seal_batch`: the checkpoint
            // frees the durable mirror's file when it stores the
            // recreation, which *is* the pre-batch file.
            let batch = self.seal_acts(0, acts, need_commit);
            self.journal_commit(ctx, batch);
            return;
        }
        // A multi-object batch cannot be flushed atomically: guard it
        // with the commit block's `recovering` flag so a crash mid-way
        // voids this replica's state instead of exposing a hole.
        let guard = acts.len() > 1;
        if guard {
            let cb = {
                let mut shared = applier.shared.lock();
                shared.commit.recovering = true;
                shared.commit.clone()
            };
            cb.write(&applier.partition, ctx);
        }
        for (object, act) in acts {
            match act {
                FinalAct::Store(dir) => applier.store_dir_to_disk(ctx, object, &dir),
                FinalAct::Drop { old_file } | FinalAct::Stub { old_file } => {
                    // Persist the table entry — cleared for a delete,
                    // kept-but-contentless for a migration stub; the
                    // commit-block write (the op loses its file, §3)
                    // happens once below for the whole batch.
                    let waiter = { applier.shared.lock().table.flush_begin(object) };
                    if let Some(w) = waiter {
                        w.recv(ctx);
                    }
                    if !old_file.is_null() {
                        let _ = applier.bullet.delete(ctx, old_file);
                    }
                }
            }
        }
        for f in frees {
            let _ = applier.bullet.delete(ctx, f);
        }
        if guard || need_commit {
            let cb = {
                let mut shared = applier.shared.lock();
                shared.commit.recovering = false;
                if guard {
                    // Completing a guarded flush closes one generation:
                    // the epoch stamp is what lets a future boot tell
                    // "crashed inside a flush of committed ops"
                    // (salvageable prefix) from "crashed copying a
                    // peer's state" (worthless mixture).
                    shared.commit.epoch += 1;
                }
                shared.commit.clone()
            };
            cb.write(&applier.partition, ctx);
        }
    }

    fn seal_batch(&self, _ctx: &Ctx, token: u64) {
        let applier = &self.applier;
        if applier.storage == StorageKind::Nvram {
            // The log appends in `apply` already committed the batch;
            // stage an empty marker so tokens stay in lockstep.
            self.staged.lock().push_back(StagedBatch {
                token,
                acts: Vec::new(),
                commit_seqno: 0,
                need_commit: false,
            });
            return;
        }
        let effects = std::mem::take(&mut *self.pending.lock());
        // `frees` (pre-batch file of a deleted-then-recreated object) is
        // deliberately dropped: the flusher frees the durable mirror's
        // file when it stores the recreation, which *is* that pre-batch
        // file — carrying the list too would free it twice.
        let (acts, _frees, need_commit) = Self::coalesce(effects);
        let batch = self.seal_acts(token, acts, need_commit);
        self.staged.lock().push_back(batch);
    }

    fn flush_staged(&self, ctx: &Ctx, token: u64) {
        let batch = {
            let mut staged = self.staged.lock();
            let batch = staged.pop_front().expect("flush of an unsealed batch");
            assert_eq!(batch.token, token, "staged flushes out of order");
            batch
        };
        if self.applier.storage == StorageKind::Nvram {
            self.flush(ctx); // fill-threshold policing only
            return;
        }
        if self.applier.journal.is_some() {
            self.journal_commit(ctx, batch);
            return;
        }
        self.flush_batch(ctx, batch);
    }

    fn flush_staged_run(&self, ctx: &Ctx, first: u64, last: u64) {
        if self.applier.storage == StorageKind::Nvram || first == last {
            for token in first..=last {
                self.flush_staged(ctx, token);
            }
            return;
        }
        // Merge the run into one batch: per object only the *last*
        // sealed act survives — interim versions are never written,
        // which is the queued submission's whole point. Old-file frees
        // still come from the durable mirror at flush time, so the
        // skipped interim files were never created and nothing leaks.
        // The merged guard/commit block carries the last batch's
        // sealed seqno, covering every merged batch.
        let merged = {
            let mut staged = self.staged.lock();
            let mut acts: Vec<(u64, StagedAct)> = Vec::new();
            let mut commit_seqno = 0;
            let mut need_commit = false;
            for token in first..=last {
                let b = staged.pop_front().expect("flush of an unsealed batch");
                assert_eq!(b.token, token, "staged flushes out of order");
                commit_seqno = b.commit_seqno;
                need_commit |= b.need_commit;
                for (object, act) in b.acts {
                    match acts.iter_mut().find(|(o, _)| *o == object) {
                        Some(slot) => slot.1 = act,
                        None => acts.push((object, act)),
                    }
                }
            }
            StagedBatch {
                token: last,
                acts,
                commit_seqno,
                need_commit,
            }
        };
        if self.applier.journal.is_some() {
            // The group log's headline path: the whole merged run
            // commits as ONE sequential record append.
            self.journal_commit(ctx, merged);
            return;
        }
        self.flush_batch(ctx, merged);
    }

    fn checkpoint(&self, ctx: &Ctx) {
        self.run_checkpoint(ctx);
    }

    fn idle(&self, ctx: &Ctx) {
        // §4.1: apply NVRAM modifications to disk "when the server is
        // idle or the NVRAM is full".
        if self.applier.storage == StorageKind::Nvram {
            self.applier.flush_nvram(ctx);
        }
    }

    /// Loads commit block, object table and NVRAM after a reboot.
    fn boot(&self, ctx: &Ctx) {
        let applier = &self.applier;
        let cfg = &applier.cfg;
        let commit = CommitBlock::read(&applier.partition, ctx, cfg.n)
            .unwrap_or_else(|| CommitBlock::initial(cfg.n));
        let table = ObjectTable::load(applier.partition.clone(), ctx);
        let table_seq = table.max_seqno();
        let worthless = commit.recovering && commit.epoch == 0;
        {
            let mut shared = applier.shared.lock();
            shared.table = table;
            if commit.recovering && commit.epoch == 0 {
                // Crashed during a previous recovery's copy phase: the
                // state may mix two replicas' histories — worthless
                // (§3).
                shared.update_seq = 0;
            } else if commit.recovering {
                // Crashed inside a guarded group-commit flush. Every op
                // of that batch was globally ordered and accepted, and
                // each object's durable state is individually
                // consistent, so the disk holds a salvageable
                // *best-effort subset*: the objects stored before the
                // crash carry their post-batch state, the rest their
                // pre-batch state. The claim is the highest seqno any
                // stored directory carries (not the commit block's,
                // which the guard write may have advanced past the
                // unfinished drops). This deliberately over-claims
                // sibling ops of the same window that were not yet
                // stored — if every replica died in that window, the
                // election's winner may lack an op another salvaged
                // replica holds. That is the accepted price of
                // disaster recovery: any salvage loses at most parts
                // of the one in-flight batch, where the old rule
                // (state worthless) lost the entire store.
                shared.update_seq = table_seq;
            } else {
                shared.update_seq = table_seq.max(commit.seqno);
            }
            shared.commit = commit;
            shared.commit.recovering = false;
            // Pipelined commit / group log: baseline the durable mirror
            // at the just-loaded table — RAM and disk agree at boot,
            // and from here on the flusher (or checkpointer) keeps the
            // mirror equal to the disk while applies run ahead in RAM.
            if (self.params.flush_window > 1 || applier.journal.is_some())
                && applier.storage == StorageKind::Disk
            {
                shared.table.enable_durable_mirror();
            }
        }
        // The group log: replay journal records the last checkpoint had
        // not yet covered. The mirror was enabled *before* this, so it
        // still equals the disk truth — replay mutates only RAM state,
        // and re-enters each act into the dirty set for the next
        // checkpoint to persist (module-docs invariant 3).
        if let Some(journal) = &applier.journal {
            if worthless {
                // Mid-copy crash: the table may mix two histories, so
                // pre-copy records must not replay onto it. Recover the
                // journal's cursor first so the reset keeps sequence
                // numbers globally monotone.
                let _ = journal.recover(ctx);
                journal.reset(ctx);
            } else {
                let records = journal.recover(ctx);
                let mut replayed = 0u64;
                for rec in &records {
                    let Some((commit_seqno, need_commit, acts)) = decode_journal_record(rec) else {
                        continue; // version skew: skip, never fatal
                    };
                    replayed = replayed.max(commit_seqno);
                    let mut shared = applier.shared.lock();
                    let mut ckpt = self.ckpt.lock();
                    // The record's commit claim is replicated state
                    // (drops claim their seqs through it): restore it
                    // so later commit-block writes stay monotone.
                    shared.commit.seqno = shared.commit.seqno.max(commit_seqno);
                    ckpt.covered_seqno = ckpt.covered_seqno.max(commit_seqno);
                    ckpt.need_commit |= need_commit;
                    for (object, act) in acts {
                        match &act {
                            StagedAct::Store { dir, check } => {
                                replayed = replayed.max(dir.seqno);
                                // Keep the durable file cap: reads are
                                // served from the cache entry below,
                                // and the checkpoint frees the old file
                                // when it stores the replayed contents.
                                let file_cap = shared
                                    .table
                                    .get(object)
                                    .map(|e| e.file_cap)
                                    .unwrap_or(amoeba_bullet::FileCap::NULL);
                                shared.table.set(
                                    object,
                                    ObjEntry {
                                        file_cap,
                                        seqno: dir.seqno,
                                        check: *check,
                                    },
                                );
                                shared.cache.insert(object, dir.clone());
                            }
                            StagedAct::Drop => {
                                shared.table.clear(object);
                                shared.cache.remove(&object);
                            }
                            StagedAct::Stub { seqno, check } => {
                                shared.table.set(
                                    object,
                                    ObjEntry {
                                        file_cap: amoeba_bullet::FileCap::NULL,
                                        seqno: *seqno,
                                        check: *check,
                                    },
                                );
                                shared.cache.remove(&object);
                            }
                        }
                        ckpt.dirty.insert(object, act);
                    }
                }
                if replayed > 0 {
                    let mut shared = applier.shared.lock();
                    shared.update_seq = shared.update_seq.max(replayed);
                }
            }
        }
        // NVRAM survives the crash; replay pending records into RAM.
        if applier.storage == StorageKind::Nvram {
            let replayed = applier.replay_nvram(ctx);
            let mut shared = applier.shared.lock();
            shared.update_seq = shared.update_seq.max(replayed);
        }
        {
            // The lease table is replicated but never durable. A boot
            // from salvaged *non-empty* state may therefore have lost
            // leases whose holders are still alive and serving cached
            // reads — fence write acknowledgements until every lease
            // granted before the crash has provably expired. (If the
            // group recovers from a surviving peer instead, the
            // snapshot carries the lease table and the installing
            // replica's fence is harmless extra caution; a genuinely
            // fresh deployment boots with update_seq 0 and no fence.)
            let mut shared = applier.shared.lock();
            if shared.update_seq > 0 {
                // Piggybacked renewals can extend a lease by up to
                // `lease_renewals × ttl` beyond its original deadline, so
                // the fence outwaits the worst-case chain, not just one
                // maximum lease.
                let worst_us = applier.max_lease_us * (1 + applier.lease_renewals as u64);
                shared.write_fence_until_us = ctx.now().as_nanos() / 1_000 + worst_us;
            }
        }
    }

    fn recovery_info(&self) -> RecoveryInfo {
        let shared = self.applier.shared.lock();
        let mut mourned = vec![false; self.applier.cfg.n];
        for i in shared.commit.mourned() {
            if i < mourned.len() {
                mourned[i] = true;
            }
        }
        RecoveryInfo {
            update_seq: shared.update_seq,
            mourned,
        }
    }

    fn begin_copy(&self, ctx: &Ctx) {
        // Quiesce any in-flight checkpoint drain first: its commit-block
        // write must not land after (and clobber) the worthless mark.
        // No new drain can start until the replica is back in normal
        // operation, so releasing right away is safe.
        if self.applier.journal.is_some() {
            self.ckpt_acquire(ctx);
            self.ckpt_release();
        }
        let cb = {
            let mut shared = self.applier.shared.lock();
            shared.commit.recovering = true;
            // Epoch 0 marks "state is being replaced by a peer's": a
            // crash from here until enter_service leaves a mixture of
            // two histories, which boot must treat as worthless.
            shared.commit.epoch = 0;
            shared.commit.clone()
        };
        cb.write(&self.applier.partition, ctx);
    }

    fn snapshot(&self, ctx: &Ctx) -> (u64, Payload) {
        let applier = &self.applier;
        // Cold cache entries are pulled from Bullet first (outside the
        // lock), so the locked marshalling below sees every directory.
        // Stubbed objects have no contents (their file is gone) — skip.
        let objects: Vec<u64> = {
            let shared = applier.shared.lock();
            shared
                .table
                .iter()
                .map(|(o, _)| o)
                .filter(|o| !shared.stubs.contains_key(o))
                .collect()
        };
        for o in &objects {
            let _ = applier.load_dir(ctx, *o);
        }
        let shared = applier.shared.lock();
        let entries: Vec<(u64, u64, Payload)> = shared
            .table
            .iter()
            .filter_map(|(object, entry)| {
                shared
                    .cache
                    .get(&object)
                    .map(|d| (object, entry.check, d.encode()))
            })
            .collect();
        // Completion records of keyed creates are replicated state: a
        // recovering replica must be able to answer replays of the
        // cross-shard protocol's step one.
        let mut completions: Vec<(u64, u64)> =
            shared.completions.iter().map(|(k, o)| (*k, *o)).collect();
        completions.sort_unstable(); // deterministic encoding
                                     // Forwarding stubs travel with their kept entry's check/seqno so
                                     // the installee reconstructs both the stub and the table row.
        let mut stubs: Vec<(u64, u64, u64, u64, u64)> = shared
            .stubs
            .iter()
            .filter_map(|(object, s)| {
                shared
                    .table
                    .get(*object)
                    .map(|e| (*object, e.check, e.seqno, s.to_port, s.to_object))
            })
            .collect();
        stubs.sort_unstable(); // deterministic encoding
                               // The read-lease table is replicated state: a joining replica must
                               // know every outstanding lease or a write it later initiates could
                               // acknowledge without revoking one.
        let mut rleases: Vec<(u64, u64, u64, u64, u64, u64)> = shared
            .rleases
            .iter()
            .flat_map(|(object, ls)| {
                ls.iter().map(|l| {
                    (
                        *object,
                        l.owner,
                        l.cb_port,
                        l.deadline_us,
                        l.ttl_us,
                        l.renewals_left as u64,
                    )
                })
            })
            .collect();
        rleases.sort_unstable(); // deterministic encoding
        let mut w = WireWriter::with_capacity(
            8 + 8
                + 4
                + entries
                    .iter()
                    .map(|(_, _, b)| 8 + 8 + 4 + b.len())
                    .sum::<usize>()
                + 4
                + completions.len() * 16
                + 4
                + stubs.len() * 40
                + 4
                + rleases.len() * 48,
        );
        w.u64(shared.update_seq)
            .u64(shared.commit.seqno)
            .u32(entries.len() as u32);
        for (object, check, bytes) in &entries {
            w.u64(*object).u64(*check).bytes(bytes);
        }
        w.u32(completions.len() as u32);
        for (key, object) in &completions {
            w.u64(*key).u64(*object);
        }
        w.u32(stubs.len() as u32);
        for (object, check, seqno, to_port, to_object) in &stubs {
            w.u64(*object)
                .u64(*check)
                .u64(*seqno)
                .u64(*to_port)
                .u64(*to_object);
        }
        w.u32(rleases.len() as u32);
        for (object, owner, cb_port, deadline_us, ttl_us, renewals_left) in &rleases {
            w.u64(*object)
                .u64(*owner)
                .u64(*cb_port)
                .u64(*deadline_us)
                .u64(*ttl_us)
                .u64(*renewals_left);
        }
        (shared.applied_group_seq, w.finish_payload())
    }

    fn install(&self, ctx: &Ctx, cursor: u64, snap: &Payload) -> bool {
        let applier = &self.applier;
        let mut r = WireReader::of(snap);
        let (update_seq, commit_seq, n) =
            match (r.u64("update seq"), r.u64("commit seq"), r.u32("entries")) {
                (Ok(u), Ok(c), Ok(n)) if (n as usize) <= 1_000_000 => (u, c, n),
                _ => return false,
            };
        let mut installed: Vec<(u64, u64, Directory)> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (object, check, bytes) =
                match (r.u64("object"), r.u64("check"), r.bytes("dir bytes")) {
                    (Ok(o), Ok(c), Ok(b)) => (o, c, b),
                    _ => return false,
                };
            match Directory::decode(bytes) {
                Ok(dir) => installed.push((object, check, dir)),
                Err(_) => return false,
            }
        }
        let n_comp = match r.u32("completions") {
            Ok(n) if (n as usize) <= 1_000_000 => n,
            _ => return false,
        };
        let mut completions = std::collections::HashMap::with_capacity(n_comp as usize);
        for _ in 0..n_comp {
            match (r.u64("completion key"), r.u64("completion object")) {
                (Ok(k), Ok(o)) => {
                    completions.insert(k, o);
                }
                _ => return false,
            }
        }
        let n_stubs = match r.u32("stubs") {
            Ok(n) if (n as usize) <= 1_000_000 => n,
            _ => return false,
        };
        let mut stubs: Vec<(u64, u64, u64, crate::state::StubEntry)> =
            Vec::with_capacity(n_stubs as usize);
        for _ in 0..n_stubs {
            match (
                r.u64("stub object"),
                r.u64("stub check"),
                r.u64("stub seqno"),
                r.u64("stub to-port"),
                r.u64("stub to-object"),
            ) {
                (Ok(object), Ok(check), Ok(seqno), Ok(to_port), Ok(to_object)) => stubs.push((
                    object,
                    check,
                    seqno,
                    crate::state::StubEntry { to_port, to_object },
                )),
                _ => return false,
            }
        }
        let n_leases = match r.u32("read leases") {
            Ok(n) if (n as usize) <= 1_000_000 => n,
            _ => return false,
        };
        let mut rleases: Vec<(u64, crate::state::ReadLease)> =
            Vec::with_capacity(n_leases as usize);
        for _ in 0..n_leases {
            match (
                r.u64("lease object"),
                r.u64("lease owner"),
                r.u64("lease cb-port"),
                r.u64("lease deadline"),
                r.u64("lease ttl"),
                r.u64("lease renewals"),
            ) {
                (Ok(object), Ok(owner), Ok(cb_port), Ok(deadline_us), Ok(ttl_us), Ok(renew)) => {
                    rleases.push((
                        object,
                        crate::state::ReadLease {
                            owner,
                            cb_port,
                            deadline_us,
                            ttl_us,
                            renewals_left: renew.min(u32::MAX as u64) as u32,
                        },
                    ))
                }
                _ => return false,
            }
        }
        {
            let mut shared = applier.shared.lock();
            // Wipe stale state, then install wholesale.
            let stale: Vec<u64> = shared.table.iter().map(|(o, _)| o).collect();
            for o in stale {
                shared.table.clear(o);
            }
            shared.cache.clear();
            for (object, check, dir) in &installed {
                shared.table.set(
                    *object,
                    ObjEntry {
                        file_cap: FileCap::NULL, // created below
                        seqno: dir.seqno,
                        check: *check,
                    },
                );
                shared.cache.insert(*object, dir.clone());
            }
            shared.update_seq = update_seq;
            shared.commit.seqno = commit_seq;
            shared.applied_group_seq = cursor;
            shared.completions = completions;
            shared.stubs.clear();
            shared.heat.clear();
            // Inherit every outstanding read lease: a write this replica
            // later initiates must revoke leases granted before it joined.
            shared.rleases.clear();
            for (object, lease) in &rleases {
                shared.rleases.entry(*object).or_default().push(*lease);
            }
            // The installed snapshot carries the complete live lease
            // table, so the conservative cold-boot write fence (leases
            // possibly lost with the volatile state) is no longer
            // needed on this replica.
            shared.write_fence_until_us = 0;
            for (object, check, seqno, stub) in &stubs {
                shared.table.set(
                    *object,
                    ObjEntry {
                        file_cap: FileCap::NULL, // contentless by design
                        seqno: *seqno,
                        check: *check,
                    },
                );
                shared.stubs.insert(*object, *stub);
            }
        }
        // Persist every fetched directory locally (Bullet file + table
        // entry) — recovery always persists to disk; NVRAM holds only
        // post-recovery updates. Stub entries persist their (contentless)
        // table rows so relocated objects stay reserved across reboots.
        for (object, _, dir) in installed {
            applier.store_dir_to_disk(ctx, object, &dir);
        }
        for (object, _, _, _) in &stubs {
            let waiter = { applier.shared.lock().table.flush_begin(*object) };
            if let Some(w) = waiter {
                w.recv(ctx);
            }
        }
        // The install persisted every entry, so RAM and disk agree
        // again: re-baseline the durable mirror (the driver drains the
        // flush window before any recovery path, so no staged batch
        // can be in flight here).
        {
            let mut shared = applier.shared.lock();
            if shared.table.mirror_enabled() {
                shared.table.enable_durable_mirror();
            }
        }
        // The installed state supersedes everything the journal's
        // records described: drop them (keeping sequence numbers
        // monotone) and the dirty set with them. `begin_copy` already
        // quiesced the checkpointer for this recovery pass.
        if let Some(journal) = &applier.journal {
            journal.reset(ctx);
            let mut ckpt = self.ckpt.lock();
            ckpt.dirty.clear();
            ckpt.need_commit = false;
        }
        self.staged.lock().clear();
        true
    }

    fn align_cursor(&self, _ctx: &Ctx, cursor: u64) {
        // A new instance's order restarts: the cursor is set
        // absolutely, not monotonically.
        self.applier.shared.lock().applied_group_seq = cursor;
    }

    fn enter_service(&self, ctx: &Ctx, config: &[bool]) {
        let cb = {
            let mut shared = self.applier.shared.lock();
            shared.commit.config = config.to_vec();
            shared.commit.recovering = false;
            // The state is whole again (own history or a completed
            // copy): leave the copy-in-progress epoch.
            shared.commit.epoch = shared.commit.epoch.max(1);
            shared.commit.clone()
        };
        cb.write(&self.applier.partition, ctx);
    }

    fn on_membership(&self, ctx: &Ctx, seq: u64, config: &[bool]) {
        let cb = {
            let mut shared = self.applier.shared.lock();
            if seq > 0 {
                shared.applied_group_seq = shared.applied_group_seq.max(seq);
            }
            shared.commit.config = config.to_vec();
            shared.commit.clone()
        };
        cb.write(&self.applier.partition, ctx);
    }
}

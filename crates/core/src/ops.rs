//! The directory-service wire protocol: the Fig. 2 operations, their
//! replies, and the internal replicated-op representation.

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::Payload;

use crate::capability::Capability;
use crate::rights::Rights;

/// A client request: exactly the operations of the paper's Fig. 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirRequest {
    /// Create a new directory with the given protection columns.
    CreateDir {
        /// Column (protection-domain) names, 1–4.
        columns: Vec<String>,
    },
    /// Delete a directory.
    DeleteDir {
        /// The directory (needs [`Rights::ADMIN`]).
        cap: Capability,
    },
    /// List a directory's rows (restricted to the visible columns).
    ListDir {
        /// The directory (needs at least one column right).
        cap: Capability,
    },
    /// Add a row.
    AppendRow {
        /// The directory (needs [`Rights::MODIFY`]).
        dir: Capability,
        /// New row name.
        name: String,
        /// Capability to store.
        cap: Capability,
        /// Per-column rights masks.
        col_rights: Vec<Rights>,
    },
    /// Change a row's per-column rights masks.
    ChmodRow {
        /// The directory (needs [`Rights::MODIFY`]).
        dir: Capability,
        /// Row name.
        name: String,
        /// New masks.
        col_rights: Vec<Rights>,
    },
    /// Delete a row.
    DeleteRow {
        /// The directory (needs [`Rights::MODIFY`]).
        dir: Capability,
        /// Row name.
        name: String,
    },
    /// Look up capabilities for a set of (directory, name) pairs in one
    /// request.
    LookupSet {
        /// The pairs to resolve.
        items: Vec<(Capability, String)>,
    },
    /// Replace the capabilities in a set of rows, indivisibly.
    ReplaceSet {
        /// (directory, name, new capability) triples.
        items: Vec<(Capability, String, Capability)>,
    },
    /// Create a directory idempotently: a repeat carrying the same key
    /// returns the originally created directory's capability (step one
    /// of the cross-shard create protocol, see [`crate::ShardMap`]).
    CreateKeyed {
        /// Column (protection-domain) names, 1–4.
        columns: Vec<String>,
        /// Completion key ([`crate::ShardMap::completion_key`]).
        key: u64,
    },
    /// Add a row idempotently: succeeds silently if the row already
    /// holds exactly `cap` (step two of the cross-shard create).
    AppendLink {
        /// The directory (needs [`Rights::MODIFY`]).
        dir: Capability,
        /// Row name.
        name: String,
        /// Capability to store.
        cap: Capability,
        /// Per-column rights masks.
        col_rights: Vec<Rights>,
    },
    /// Delete a row idempotently: succeeds silently if the row is
    /// already gone (step two of the cross-shard delete).
    Unlink {
        /// The directory (needs [`Rights::MODIFY`]).
        dir: Capability,
        /// Row name.
        name: String,
    },
    /// Read a directory's complete contents — including the raw check
    /// field — for migration to another shard. Requires the **owner**
    /// capability ([`Rights::ALL`]): the owner's check field already
    /// *is* the raw check, so nothing is leaked that the caller does
    /// not hold.
    ExportDir {
        /// The directory (needs [`Rights::ALL`]).
        cap: Capability,
    },
    /// Install a full directory under a migration key (step one of the
    /// migration two-step, see [`crate::shard`]): idempotent *upsert* —
    /// a repeat with the same key replaces the earlier copy's contents
    /// and answers with the same capability. The copy is dark until a
    /// forwarding stub on the source shard points at it.
    InstallDir {
        /// Column (protection-domain) names, 1–4.
        columns: Vec<String>,
        /// Full rows (name, capability, per-column masks).
        rows: Vec<(String, Capability, Vec<Rights>)>,
        /// The source directory's raw check, preserved so relocated
        /// capabilities validate unchanged at the target.
        check: u64,
        /// Migration key ([`crate::ShardMap::migration_key`]).
        key: u64,
    },
    /// Atomically replace a directory with a tombstone + forwarding
    /// stub (step two of the migration two-step). Conditional on the
    /// directory's sequence number: an update ordered between the
    /// export and this op fails it with [`DirError::Stale`], and the
    /// coordinator re-copies — no acknowledged update is ever dropped.
    InstallStub {
        /// The directory (needs [`Rights::ALL`]).
        dir: Capability,
        /// Raw port of the shard the directory moved to.
        to_port: u64,
        /// Object number at the target shard.
        to_object: u64,
        /// The directory seqno the exported copy reflects.
        expected_seqno: u64,
    },
    /// Fetch a directory's visible rows **plus a read lease** over them
    /// (the client-cache miss path, see [`crate::cache`]). Although it
    /// mutates no rows, it is deliberately *not* classified as a read:
    /// the grant must be ordered through the group so that every
    /// replica knows about the lease and any later write — initiated at
    /// any replica — revokes it before being acknowledged.
    FetchDir {
        /// The directory (needs at least one column right).
        cap: Capability,
        /// The requesting client's unique cache identity.
        owner: u64,
        /// Raw port the client's invalidation listener answers on.
        cb_port: u64,
        /// Requested lease duration in simulated microseconds; the
        /// service clamps it to its configured maximum.
        ttl_us: u64,
    },
}

/// A reply from the directory service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirReply {
    /// New directory's owner capability.
    Cap(Capability),
    /// Mutation done.
    Ok,
    /// Directory listing.
    Listing {
        /// Column names.
        columns: Vec<String>,
        /// (name, capability restricted to the holder's effective rights,
        /// masks of the visible columns).
        rows: Vec<(String, Capability, Vec<Rights>)>,
    },
    /// LookupSet results, in request order.
    Caps(Vec<Option<Capability>>),
    /// The addressed directory migrated to another shard: the holder
    /// should retry there with the translated capability (same rights
    /// and check — migration preserves the raw check — new port and
    /// object). For set requests, `object` names which of the request's
    /// directories moved.
    Moved {
        /// The object number the request addressed (at this shard).
        object: u64,
        /// Raw port of the shard the directory now lives on.
        to_port: u64,
        /// Object number at that shard.
        to_object: u64,
    },
    /// A leased directory snapshot ([`DirRequest::FetchDir`]): the rows
    /// visible to the holder, good for local serving until
    /// `deadline_us` or an invalidation callback, whichever is first.
    Snapshot {
        /// Sequence number of the directory's last change.
        seqno: u64,
        /// Absolute simulated-time deadline (µs since simulation
        /// start) after which the lease — and the snapshot — is dead.
        deadline_us: u64,
        /// `true` when this snapshot was served off the read path under
        /// a piggybacked lease renewal (the revoking write reinstated
        /// the holder's lease, so no group round ran for this fetch).
        renewed: bool,
        /// Column names.
        columns: Vec<String>,
        /// Rows (name, capability restricted to the holder's effective
        /// rights, masks of the visible columns) — the same restriction
        /// `ListDir` applies.
        rows: Vec<(String, Capability, Vec<Rights>)>,
    },
    /// A directory's full contents ([`DirRequest::ExportDir`]).
    Export {
        /// The directory's raw check field.
        check: u64,
        /// Sequence number of the directory's last change (the
        /// migration CAS token).
        seqno: u64,
        /// Column names.
        columns: Vec<String>,
        /// Full rows (name, stored capability, per-column masks).
        rows: Vec<(String, Capability, Vec<Rights>)>,
    },
    /// The operation failed.
    Err(DirError),
}

/// Failures the service reports to clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirError {
    /// Fewer than a majority of servers are up (paper §3.1: even reads
    /// are refused).
    NoMajority,
    /// Unknown object or forged check field.
    BadCapability,
    /// The capability lacks the needed right.
    NoPermission,
    /// AppendRow of an existing name.
    DuplicateName,
    /// No row with that name.
    NoSuchName,
    /// Rights-mask count does not match the column count.
    ColumnMismatch,
    /// Malformed request.
    Malformed,
    /// Internal failure (storage layer).
    Internal,
    /// A conditional operation's expected sequence number no longer
    /// matches (a concurrent update won the race): re-read and retry.
    Stale,
}

impl std::fmt::Display for DirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DirError::NoMajority => "service does not have a majority of servers up",
            DirError::BadCapability => "bad capability",
            DirError::NoPermission => "capability lacks the required right",
            DirError::DuplicateName => "name already present",
            DirError::NoSuchName => "no such name",
            DirError::ColumnMismatch => "rights mask count differs from column count",
            DirError::Malformed => "malformed request",
            DirError::Internal => "internal storage failure",
            DirError::Stale => "expected sequence number no longer matches",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DirError {}

/// The replicated operation: what actually travels through
/// `SendToGroup`. Unlike [`DirRequest`], a create carries the check field
/// generated by the initiator (paper §3.1: "all the servers must use the
/// same check field"), and directories are named by object number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirOp {
    /// Create a directory; every replica assigns the same object number
    /// deterministically at apply time.
    Create {
        /// Column names.
        columns: Vec<String>,
        /// The raw check field chosen by the initiator.
        check: u64,
    },
    /// Delete a directory.
    Delete {
        /// Object number.
        object: u64,
    },
    /// Append a row.
    Append {
        /// Directory object number.
        object: u64,
        /// Row name.
        name: String,
        /// Stored capability.
        cap: Capability,
        /// Per-column masks.
        col_rights: Vec<Rights>,
    },
    /// Change masks.
    Chmod {
        /// Directory object number.
        object: u64,
        /// Row name.
        name: String,
        /// New masks.
        col_rights: Vec<Rights>,
    },
    /// Delete a row.
    DeleteRow {
        /// Directory object number.
        object: u64,
        /// Row name.
        name: String,
    },
    /// Replace capabilities in a set of rows, indivisibly.
    ReplaceSet {
        /// (object, name, new capability) triples.
        items: Vec<(u64, String, Capability)>,
    },
    /// Idempotent create: if a completion record for `key` exists, the
    /// original directory's capability is returned and no state
    /// changes; otherwise creates like [`Create`](Self::Create) and
    /// records `key → object`.
    CreateKeyed {
        /// Column names.
        columns: Vec<String>,
        /// The raw check field chosen by the initiator (only used when
        /// the key is new).
        check: u64,
        /// Completion key.
        key: u64,
    },
    /// Idempotent append: a row already holding exactly `cap` is
    /// success; a row holding anything else is `DuplicateName`.
    AppendLink {
        /// Directory object number.
        object: u64,
        /// Row name.
        name: String,
        /// Stored capability.
        cap: Capability,
        /// Per-column masks.
        col_rights: Vec<Rights>,
    },
    /// Idempotent row delete: a missing row (or a deleted directory) is
    /// success.
    Unlink {
        /// Directory object number.
        object: u64,
        /// Row name.
        name: String,
    },
    /// Migration step one: install a full directory copy keyed for
    /// idempotent *upsert* — a replay with the same key replaces the
    /// earlier copy's contents and answers with the same capability.
    InstallDir {
        /// Column names.
        columns: Vec<String>,
        /// Full rows (name, stored capability, per-column masks).
        rows: Vec<(String, Capability, Vec<Rights>)>,
        /// The source directory's raw check, carried verbatim.
        check: u64,
        /// Migration key.
        key: u64,
    },
    /// Migration step two: replace the directory with a tombstone +
    /// forwarding stub, conditional on its sequence number.
    InstallStub {
        /// Directory object number.
        object: u64,
        /// Raw port of the target shard.
        to_port: u64,
        /// Object number at the target shard.
        to_object: u64,
        /// The seqno the exported copy reflects (CAS token).
        expected_seqno: u64,
    },
    /// Grant a read lease over a directory and answer with a snapshot
    /// of its visible rows. Ordered like a write so the replicated
    /// lease table stays identical on every replica; the timestamps are
    /// chosen by the initiator (simulated time is global) so apply
    /// stays deterministic. Mutates no rows and produces no disk
    /// effects.
    GrantRead {
        /// The holder's capability (rights drive the row restriction;
        /// the check is re-validated at apply time).
        cap: Capability,
        /// The requesting client's unique cache identity.
        owner: u64,
        /// Raw port of the client's invalidation listener.
        cb_port: u64,
        /// Simulated time (µs) at the initiator, used to prune expired
        /// leases deterministically.
        now_us: u64,
        /// Absolute lease deadline (µs), already clamped to the
        /// service's maximum TTL.
        deadline_us: u64,
    },
}

// ---------------------------------------------------------------------
// Codec helpers.
// ---------------------------------------------------------------------

fn write_rights_vec(w: &mut WireWriter, v: &[Rights]) {
    w.u8(v.len() as u8);
    for r in v {
        w.u8(r.0);
    }
}

fn read_rights_vec(r: &mut WireReader<'_>) -> Result<Vec<Rights>, DecodeError> {
    let n = r.u8("rights len")? as usize;
    if n > 4 {
        return Err(DecodeError::new("rights len"));
    }
    (0..n).map(|_| Ok(Rights(r.u8("rights")?))).collect()
}

fn write_columns(w: &mut WireWriter, v: &[String]) {
    w.u8(v.len() as u8);
    for c in v {
        w.string(c);
    }
}

fn read_columns(r: &mut WireReader<'_>) -> Result<Vec<String>, DecodeError> {
    let n = r.u8("columns len")? as usize;
    if !(1..=4).contains(&n) {
        return Err(DecodeError::new("columns len"));
    }
    (0..n).map(|_| r.string("column")).collect()
}

const RQ_CREATE: u8 = 1;
const RQ_DELETE: u8 = 2;
const RQ_LIST: u8 = 3;
const RQ_APPEND: u8 = 4;
const RQ_CHMOD: u8 = 5;
const RQ_DELROW: u8 = 6;
const RQ_LOOKUP_SET: u8 = 7;
const RQ_REPLACE_SET: u8 = 8;
const RQ_CREATE_KEYED: u8 = 9;
const RQ_APPEND_LINK: u8 = 10;
const RQ_UNLINK: u8 = 11;
const RQ_EXPORT: u8 = 12;
const RQ_INSTALL_DIR: u8 = 13;
const RQ_INSTALL_STUB: u8 = 14;
const RQ_FETCH_DIR: u8 = 15;

fn write_full_rows(w: &mut WireWriter, rows: &[(String, Capability, Vec<Rights>)]) {
    w.u32(rows.len() as u32);
    for (name, cap, masks) in rows {
        w.string(name);
        cap.write(w);
        write_rights_vec(w, masks);
    }
}

fn read_full_rows(
    r: &mut WireReader<'_>,
) -> Result<Vec<(String, Capability, Vec<Rights>)>, DecodeError> {
    let n = r.u32("rows len")? as usize;
    if n > 1_000_000 {
        return Err(DecodeError::new("rows len"));
    }
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string("row name")?;
        let cap = Capability::read(r)?;
        let masks = read_rights_vec(r)?;
        rows.push((name, cap, masks));
    }
    Ok(rows)
}

impl DirRequest {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            DirRequest::CreateDir { columns } => {
                w.u8(RQ_CREATE);
                write_columns(&mut w, columns);
            }
            DirRequest::DeleteDir { cap } => {
                w.u8(RQ_DELETE);
                cap.write(&mut w);
            }
            DirRequest::ListDir { cap } => {
                w.u8(RQ_LIST);
                cap.write(&mut w);
            }
            DirRequest::AppendRow {
                dir,
                name,
                cap,
                col_rights,
            } => {
                w.u8(RQ_APPEND);
                dir.write(&mut w);
                w.string(name);
                cap.write(&mut w);
                write_rights_vec(&mut w, col_rights);
            }
            DirRequest::ChmodRow {
                dir,
                name,
                col_rights,
            } => {
                w.u8(RQ_CHMOD);
                dir.write(&mut w);
                w.string(name);
                write_rights_vec(&mut w, col_rights);
            }
            DirRequest::DeleteRow { dir, name } => {
                w.u8(RQ_DELROW);
                dir.write(&mut w);
                w.string(name);
            }
            DirRequest::LookupSet { items } => {
                w.u8(RQ_LOOKUP_SET).u32(items.len() as u32);
                for (cap, name) in items {
                    cap.write(&mut w);
                    w.string(name);
                }
            }
            DirRequest::ReplaceSet { items } => {
                w.u8(RQ_REPLACE_SET).u32(items.len() as u32);
                for (dir, name, cap) in items {
                    dir.write(&mut w);
                    w.string(name);
                    cap.write(&mut w);
                }
            }
            DirRequest::CreateKeyed { columns, key } => {
                w.u8(RQ_CREATE_KEYED);
                write_columns(&mut w, columns);
                w.u64(*key);
            }
            DirRequest::AppendLink {
                dir,
                name,
                cap,
                col_rights,
            } => {
                w.u8(RQ_APPEND_LINK);
                dir.write(&mut w);
                w.string(name);
                cap.write(&mut w);
                write_rights_vec(&mut w, col_rights);
            }
            DirRequest::Unlink { dir, name } => {
                w.u8(RQ_UNLINK);
                dir.write(&mut w);
                w.string(name);
            }
            DirRequest::ExportDir { cap } => {
                w.u8(RQ_EXPORT);
                cap.write(&mut w);
            }
            DirRequest::InstallDir {
                columns,
                rows,
                check,
                key,
            } => {
                w.u8(RQ_INSTALL_DIR);
                write_columns(&mut w, columns);
                write_full_rows(&mut w, rows);
                w.u64(*check).u64(*key);
            }
            DirRequest::InstallStub {
                dir,
                to_port,
                to_object,
                expected_seqno,
            } => {
                w.u8(RQ_INSTALL_STUB);
                dir.write(&mut w);
                w.u64(*to_port).u64(*to_object).u64(*expected_seqno);
            }
            DirRequest::FetchDir {
                cap,
                owner,
                cb_port,
                ttl_us,
            } => {
                w.u8(RQ_FETCH_DIR);
                cap.write(&mut w);
                w.u64(*owner).u64(*cb_port).u64(*ttl_us);
            }
        }
        w.finish()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = WireReader::new(buf);
        let req = match r.u8("dir req tag")? {
            RQ_CREATE => DirRequest::CreateDir {
                columns: read_columns(&mut r)?,
            },
            RQ_DELETE => DirRequest::DeleteDir {
                cap: Capability::read(&mut r)?,
            },
            RQ_LIST => DirRequest::ListDir {
                cap: Capability::read(&mut r)?,
            },
            RQ_APPEND => DirRequest::AppendRow {
                dir: Capability::read(&mut r)?,
                name: r.string("name")?,
                cap: Capability::read(&mut r)?,
                col_rights: read_rights_vec(&mut r)?,
            },
            RQ_CHMOD => DirRequest::ChmodRow {
                dir: Capability::read(&mut r)?,
                name: r.string("name")?,
                col_rights: read_rights_vec(&mut r)?,
            },
            RQ_DELROW => DirRequest::DeleteRow {
                dir: Capability::read(&mut r)?,
                name: r.string("name")?,
            },
            RQ_LOOKUP_SET => {
                let n = r.u32("lookup len")? as usize;
                if n > 10_000 {
                    return Err(DecodeError::new("lookup len"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let cap = Capability::read(&mut r)?;
                    let name = r.string("lookup name")?;
                    items.push((cap, name));
                }
                DirRequest::LookupSet { items }
            }
            RQ_REPLACE_SET => {
                let n = r.u32("replace len")? as usize;
                if n > 10_000 {
                    return Err(DecodeError::new("replace len"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let dir = Capability::read(&mut r)?;
                    let name = r.string("replace name")?;
                    let cap = Capability::read(&mut r)?;
                    items.push((dir, name, cap));
                }
                DirRequest::ReplaceSet { items }
            }
            RQ_CREATE_KEYED => DirRequest::CreateKeyed {
                columns: read_columns(&mut r)?,
                key: r.u64("create key")?,
            },
            RQ_APPEND_LINK => DirRequest::AppendLink {
                dir: Capability::read(&mut r)?,
                name: r.string("name")?,
                cap: Capability::read(&mut r)?,
                col_rights: read_rights_vec(&mut r)?,
            },
            RQ_UNLINK => DirRequest::Unlink {
                dir: Capability::read(&mut r)?,
                name: r.string("name")?,
            },
            RQ_EXPORT => DirRequest::ExportDir {
                cap: Capability::read(&mut r)?,
            },
            RQ_INSTALL_DIR => DirRequest::InstallDir {
                columns: read_columns(&mut r)?,
                rows: read_full_rows(&mut r)?,
                check: r.u64("install check")?,
                key: r.u64("install key")?,
            },
            RQ_INSTALL_STUB => DirRequest::InstallStub {
                dir: Capability::read(&mut r)?,
                to_port: r.u64("stub port")?,
                to_object: r.u64("stub object")?,
                expected_seqno: r.u64("stub seqno")?,
            },
            RQ_FETCH_DIR => DirRequest::FetchDir {
                cap: Capability::read(&mut r)?,
                owner: r.u64("fetch owner")?,
                cb_port: r.u64("fetch cb port")?,
                ttl_us: r.u64("fetch ttl")?,
            },
            _ => return Err(DecodeError::new("dir req tag")),
        };
        r.expect_end("dir req trailing")?;
        Ok(req)
    }

    /// Whether this operation only reads (paper: 98% of traffic).
    /// `ExportDir` is a read: the migration CAS (`InstallStub`'s
    /// expected seqno) makes any replica-local staleness safe.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            DirRequest::ListDir { .. }
                | DirRequest::LookupSet { .. }
                | DirRequest::ExportDir { .. }
        )
    }
}

const RP_CAP: u8 = 1;
const RP_OK: u8 = 2;
const RP_LISTING: u8 = 3;
const RP_CAPS: u8 = 4;
const RP_ERR: u8 = 5;
const RP_MOVED: u8 = 6;
const RP_EXPORT: u8 = 7;
const RP_SNAPSHOT: u8 = 8;

fn err_code(e: DirError) -> u8 {
    match e {
        DirError::NoMajority => 1,
        DirError::BadCapability => 2,
        DirError::NoPermission => 3,
        DirError::DuplicateName => 4,
        DirError::NoSuchName => 5,
        DirError::ColumnMismatch => 6,
        DirError::Malformed => 7,
        DirError::Internal => 8,
        DirError::Stale => 9,
    }
}

fn err_from(code: u8) -> Result<DirError, DecodeError> {
    Ok(match code {
        1 => DirError::NoMajority,
        2 => DirError::BadCapability,
        3 => DirError::NoPermission,
        4 => DirError::DuplicateName,
        5 => DirError::NoSuchName,
        6 => DirError::ColumnMismatch,
        7 => DirError::Malformed,
        8 => DirError::Internal,
        9 => DirError::Stale,
        _ => return Err(DecodeError::new("dir err code")),
    })
}

impl DirReply {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        match self {
            DirReply::Cap(c) => {
                w.u8(RP_CAP);
                c.write(&mut w);
            }
            DirReply::Ok => {
                w.u8(RP_OK);
            }
            DirReply::Listing { columns, rows } => {
                w.u8(RP_LISTING);
                write_columns(&mut w, columns);
                write_full_rows(&mut w, rows);
            }
            DirReply::Caps(v) => {
                w.u8(RP_CAPS).u32(v.len() as u32);
                for c in v {
                    match c {
                        Some(c) => {
                            w.u8(1);
                            c.write(&mut w);
                        }
                        None => {
                            w.u8(0);
                        }
                    }
                }
            }
            DirReply::Moved {
                object,
                to_port,
                to_object,
            } => {
                w.u8(RP_MOVED).u64(*object).u64(*to_port).u64(*to_object);
            }
            DirReply::Export {
                check,
                seqno,
                columns,
                rows,
            } => {
                w.u8(RP_EXPORT).u64(*check).u64(*seqno);
                write_columns(&mut w, columns);
                write_full_rows(&mut w, rows);
            }
            DirReply::Snapshot {
                seqno,
                deadline_us,
                renewed,
                columns,
                rows,
            } => {
                w.u8(RP_SNAPSHOT)
                    .u64(*seqno)
                    .u64(*deadline_us)
                    .u8(u8::from(*renewed));
                write_columns(&mut w, columns);
                write_full_rows(&mut w, rows);
            }
            DirReply::Err(e) => {
                w.u8(RP_ERR).u8(err_code(*e));
            }
        }
        w.finish()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = WireReader::new(buf);
        let rep = match r.u8("dir rep tag")? {
            RP_CAP => DirReply::Cap(Capability::read(&mut r)?),
            RP_OK => DirReply::Ok,
            RP_LISTING => DirReply::Listing {
                columns: read_columns(&mut r)?,
                rows: read_full_rows(&mut r)?,
            },
            RP_CAPS => {
                let n = r.u32("caps len")? as usize;
                if n > 10_000 {
                    return Err(DecodeError::new("caps len"));
                }
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    v.push(match r.u8("caps some")? {
                        1 => Some(Capability::read(&mut r)?),
                        0 => None,
                        _ => return Err(DecodeError::new("caps some")),
                    });
                }
                DirReply::Caps(v)
            }
            RP_MOVED => DirReply::Moved {
                object: r.u64("moved object")?,
                to_port: r.u64("moved port")?,
                to_object: r.u64("moved to-object")?,
            },
            RP_EXPORT => DirReply::Export {
                check: r.u64("export check")?,
                seqno: r.u64("export seqno")?,
                columns: read_columns(&mut r)?,
                rows: read_full_rows(&mut r)?,
            },
            RP_SNAPSHOT => DirReply::Snapshot {
                seqno: r.u64("snap seqno")?,
                deadline_us: r.u64("snap deadline")?,
                renewed: match r.u8("snap renewed")? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::new("snap renewed")),
                },
                columns: read_columns(&mut r)?,
                rows: read_full_rows(&mut r)?,
            },
            RP_ERR => DirReply::Err(err_from(r.u8("dir err code")?)?),
            _ => return Err(DecodeError::new("dir rep tag")),
        };
        r.expect_end("dir rep trailing")?;
        Ok(rep)
    }
}

const OP_CREATE: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_APPEND: u8 = 3;
const OP_CHMOD: u8 = 4;
const OP_DELROW: u8 = 5;
const OP_REPLACE_SET: u8 = 6;
const OP_CREATE_KEYED: u8 = 7;
const OP_APPEND_LINK: u8 = 8;
const OP_UNLINK: u8 = 9;
const OP_INSTALL_DIR: u8 = 10;
const OP_INSTALL_STUB: u8 = 11;
const OP_GRANT_READ: u8 = 12;

/// Wire size of a [`Capability`] (port + object + rights + check).
const WIRE_CAP_LEN: usize = 8 + 8 + 1 + 8;

fn wire_string_len(s: &str) -> usize {
    4 + s.len()
}

impl DirOp {
    /// Exact encoded size, used as the writer's single-allocation hint:
    /// a directory update is marshalled once, into one buffer, and never
    /// copied again on its way through the group pipeline.
    fn encoded_len(&self) -> usize {
        1 + match self {
            DirOp::Create { columns, check: _ } => {
                1 + columns.iter().map(|c| wire_string_len(c)).sum::<usize>() + 8
            }
            DirOp::Delete { .. } => 8,
            DirOp::Append {
                name, col_rights, ..
            } => 8 + wire_string_len(name) + WIRE_CAP_LEN + 1 + col_rights.len(),
            DirOp::Chmod {
                name, col_rights, ..
            } => 8 + wire_string_len(name) + 1 + col_rights.len(),
            DirOp::DeleteRow { name, .. } => 8 + wire_string_len(name),
            DirOp::ReplaceSet { items } => {
                4 + items
                    .iter()
                    .map(|(_, name, _)| 8 + wire_string_len(name) + WIRE_CAP_LEN)
                    .sum::<usize>()
            }
            DirOp::CreateKeyed { columns, .. } => {
                1 + columns.iter().map(|c| wire_string_len(c)).sum::<usize>() + 8 + 8
            }
            DirOp::AppendLink {
                name, col_rights, ..
            } => 8 + wire_string_len(name) + WIRE_CAP_LEN + 1 + col_rights.len(),
            DirOp::Unlink { name, .. } => 8 + wire_string_len(name),
            DirOp::InstallDir { columns, rows, .. } => {
                1 + columns.iter().map(|c| wire_string_len(c)).sum::<usize>()
                    + 4
                    + rows
                        .iter()
                        .map(|(name, _, masks)| {
                            wire_string_len(name) + WIRE_CAP_LEN + 1 + masks.len()
                        })
                        .sum::<usize>()
                    + 8
                    + 8
            }
            DirOp::InstallStub { .. } => 8 + 8 + 8 + 8,
            DirOp::GrantRead { .. } => WIRE_CAP_LEN + 8 + 8 + 8 + 8,
        }
    }

    /// Encodes to the bytes carried by `SendToGroup`, in a single
    /// allocation.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::with_capacity(self.encoded_len());
        match self {
            DirOp::Create { columns, check } => {
                w.u8(OP_CREATE);
                write_columns(&mut w, columns);
                w.u64(*check);
            }
            DirOp::Delete { object } => {
                w.u8(OP_DELETE).u64(*object);
            }
            DirOp::Append {
                object,
                name,
                cap,
                col_rights,
            } => {
                w.u8(OP_APPEND).u64(*object).string(name);
                cap.write(&mut w);
                write_rights_vec(&mut w, col_rights);
            }
            DirOp::Chmod {
                object,
                name,
                col_rights,
            } => {
                w.u8(OP_CHMOD).u64(*object).string(name);
                write_rights_vec(&mut w, col_rights);
            }
            DirOp::DeleteRow { object, name } => {
                w.u8(OP_DELROW).u64(*object).string(name);
            }
            DirOp::ReplaceSet { items } => {
                w.u8(OP_REPLACE_SET).u32(items.len() as u32);
                for (object, name, cap) in items {
                    w.u64(*object).string(name);
                    cap.write(&mut w);
                }
            }
            DirOp::CreateKeyed {
                columns,
                check,
                key,
            } => {
                w.u8(OP_CREATE_KEYED);
                write_columns(&mut w, columns);
                w.u64(*check).u64(*key);
            }
            DirOp::AppendLink {
                object,
                name,
                cap,
                col_rights,
            } => {
                w.u8(OP_APPEND_LINK).u64(*object).string(name);
                cap.write(&mut w);
                write_rights_vec(&mut w, col_rights);
            }
            DirOp::Unlink { object, name } => {
                w.u8(OP_UNLINK).u64(*object).string(name);
            }
            DirOp::InstallDir {
                columns,
                rows,
                check,
                key,
            } => {
                w.u8(OP_INSTALL_DIR);
                write_columns(&mut w, columns);
                write_full_rows(&mut w, rows);
                w.u64(*check).u64(*key);
            }
            DirOp::InstallStub {
                object,
                to_port,
                to_object,
                expected_seqno,
            } => {
                w.u8(OP_INSTALL_STUB)
                    .u64(*object)
                    .u64(*to_port)
                    .u64(*to_object)
                    .u64(*expected_seqno);
            }
            DirOp::GrantRead {
                cap,
                owner,
                cb_port,
                now_us,
                deadline_us,
            } => {
                w.u8(OP_GRANT_READ);
                cap.write(&mut w);
                w.u64(*owner).u64(*cb_port).u64(*now_us).u64(*deadline_us);
            }
        }
        debug_assert_eq!(w.len(), self.encoded_len());
        w.finish_payload()
    }

    /// Decodes a replicated op.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = WireReader::new(buf);
        let op = match r.u8("dir op tag")? {
            OP_CREATE => DirOp::Create {
                columns: read_columns(&mut r)?,
                check: r.u64("op check")?,
            },
            OP_DELETE => DirOp::Delete {
                object: r.u64("op object")?,
            },
            OP_APPEND => DirOp::Append {
                object: r.u64("op object")?,
                name: r.string("op name")?,
                cap: Capability::read(&mut r)?,
                col_rights: read_rights_vec(&mut r)?,
            },
            OP_CHMOD => DirOp::Chmod {
                object: r.u64("op object")?,
                name: r.string("op name")?,
                col_rights: read_rights_vec(&mut r)?,
            },
            OP_DELROW => DirOp::DeleteRow {
                object: r.u64("op object")?,
                name: r.string("op name")?,
            },
            OP_REPLACE_SET => {
                let n = r.u32("op replace len")? as usize;
                if n > 10_000 {
                    return Err(DecodeError::new("op replace len"));
                }
                let mut items = Vec::with_capacity(n);
                for _ in 0..n {
                    let object = r.u64("op object")?;
                    let name = r.string("op name")?;
                    let cap = Capability::read(&mut r)?;
                    items.push((object, name, cap));
                }
                DirOp::ReplaceSet { items }
            }
            OP_CREATE_KEYED => DirOp::CreateKeyed {
                columns: read_columns(&mut r)?,
                check: r.u64("op check")?,
                key: r.u64("op key")?,
            },
            OP_APPEND_LINK => DirOp::AppendLink {
                object: r.u64("op object")?,
                name: r.string("op name")?,
                cap: Capability::read(&mut r)?,
                col_rights: read_rights_vec(&mut r)?,
            },
            OP_UNLINK => DirOp::Unlink {
                object: r.u64("op object")?,
                name: r.string("op name")?,
            },
            OP_INSTALL_DIR => DirOp::InstallDir {
                columns: read_columns(&mut r)?,
                rows: read_full_rows(&mut r)?,
                check: r.u64("op check")?,
                key: r.u64("op key")?,
            },
            OP_INSTALL_STUB => DirOp::InstallStub {
                object: r.u64("op object")?,
                to_port: r.u64("op stub port")?,
                to_object: r.u64("op stub object")?,
                expected_seqno: r.u64("op stub seqno")?,
            },
            OP_GRANT_READ => DirOp::GrantRead {
                cap: Capability::read(&mut r)?,
                owner: r.u64("op grant owner")?,
                cb_port: r.u64("op grant cb port")?,
                now_us: r.u64("op grant now")?,
                deadline_us: r.u64("op grant deadline")?,
            },
            _ => return Err(DecodeError::new("dir op tag")),
        };
        r.expect_end("dir op trailing")?;
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_flip::Port;
    use amoeba_testkit::{check, Gen};

    fn cap(o: u64) -> Capability {
        Capability::owner(Port::from_name("dir"), o, o * 3)
    }

    #[test]
    fn requests_round_trip() {
        let reqs = vec![
            DirRequest::CreateDir {
                columns: vec!["owner".into(), "other".into()],
            },
            DirRequest::DeleteDir { cap: cap(1) },
            DirRequest::ListDir { cap: cap(1) },
            DirRequest::AppendRow {
                dir: cap(1),
                name: "x".into(),
                cap: cap(2),
                col_rights: vec![Rights::ALL, Rights::NONE],
            },
            DirRequest::ChmodRow {
                dir: cap(1),
                name: "x".into(),
                col_rights: vec![Rights::MODIFY, Rights::NONE],
            },
            DirRequest::DeleteRow {
                dir: cap(1),
                name: "x".into(),
            },
            DirRequest::LookupSet {
                items: vec![(cap(1), "a".into()), (cap(1), "b".into())],
            },
            DirRequest::ReplaceSet {
                items: vec![(cap(1), "a".into(), cap(9))],
            },
            DirRequest::CreateKeyed {
                columns: vec!["owner".into()],
                key: 0xFEED,
            },
            DirRequest::AppendLink {
                dir: cap(1),
                name: "x".into(),
                cap: cap(2),
                col_rights: vec![Rights::ALL],
            },
            DirRequest::Unlink {
                dir: cap(1),
                name: "x".into(),
            },
            DirRequest::ExportDir { cap: cap(1) },
            DirRequest::InstallDir {
                columns: vec!["owner".into()],
                rows: vec![("r".into(), cap(3), vec![Rights::ALL])],
                check: 0xC4EC,
                key: 0x4E1,
            },
            DirRequest::InstallStub {
                dir: cap(1),
                to_port: 77,
                to_object: 9,
                expected_seqno: 12,
            },
            DirRequest::FetchDir {
                cap: cap(1),
                owner: 0xC11E,
                cb_port: 0xCB,
                ttl_us: 250_000,
            },
        ];
        for req in reqs {
            assert_eq!(DirRequest::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn replies_round_trip() {
        let reps = vec![
            DirReply::Cap(cap(5)),
            DirReply::Ok,
            DirReply::Listing {
                columns: vec!["owner".into()],
                rows: vec![("a".into(), cap(1), vec![Rights::ALL])],
            },
            DirReply::Caps(vec![Some(cap(1)), None]),
            DirReply::Moved {
                object: 4,
                to_port: 99,
                to_object: 7,
            },
            DirReply::Export {
                check: 31,
                seqno: 8,
                columns: vec!["owner".into()],
                rows: vec![("r".into(), cap(3), vec![Rights::ALL])],
            },
            DirReply::Snapshot {
                seqno: 8,
                deadline_us: 1_250_000,
                renewed: true,
                columns: vec!["owner".into()],
                rows: vec![("r".into(), cap(3), vec![Rights::ALL])],
            },
            DirReply::Err(DirError::NoMajority),
            DirReply::Err(DirError::BadCapability),
            DirReply::Err(DirError::Stale),
        ];
        for rep in reps {
            assert_eq!(DirReply::decode(&rep.encode()).unwrap(), rep);
        }
    }

    #[test]
    fn ops_round_trip() {
        let ops = vec![
            DirOp::Create {
                columns: vec!["o".into()],
                check: 77,
            },
            DirOp::Delete { object: 4 },
            DirOp::Append {
                object: 4,
                name: "x".into(),
                cap: cap(2),
                col_rights: vec![Rights::ALL],
            },
            DirOp::Chmod {
                object: 4,
                name: "x".into(),
                col_rights: vec![Rights::NONE],
            },
            DirOp::DeleteRow {
                object: 4,
                name: "x".into(),
            },
            DirOp::ReplaceSet {
                items: vec![(4, "x".into(), cap(3))],
            },
            DirOp::CreateKeyed {
                columns: vec!["o".into()],
                check: 31,
                key: 0xFEED,
            },
            DirOp::AppendLink {
                object: 4,
                name: "x".into(),
                cap: cap(2),
                col_rights: vec![Rights::ALL],
            },
            DirOp::Unlink {
                object: 4,
                name: "x".into(),
            },
            DirOp::InstallDir {
                columns: vec!["owner".into(), "other".into()],
                rows: vec![
                    ("a".into(), cap(2), vec![Rights::ALL, Rights::NONE]),
                    ("b".into(), cap(3), vec![Rights::MODIFY, Rights::NONE]),
                ],
                check: 0xC4EC,
                key: 0x4E1,
            },
            DirOp::InstallStub {
                object: 4,
                to_port: 77,
                to_object: 9,
                expected_seqno: 12,
            },
            DirOp::GrantRead {
                cap: cap(1),
                owner: 0xC11E,
                cb_port: 0xCB,
                now_us: 1_000_000,
                deadline_us: 1_250_000,
            },
        ];
        for op in ops {
            assert_eq!(DirOp::decode(&op.encode()).unwrap(), op);
        }
    }

    #[test]
    fn is_read_classification() {
        assert!(DirRequest::ListDir { cap: cap(1) }.is_read());
        assert!(DirRequest::LookupSet { items: vec![] }.is_read());
        assert!(DirRequest::ExportDir { cap: cap(1) }.is_read());
        assert!(!DirRequest::InstallStub {
            dir: cap(1),
            to_port: 0,
            to_object: 0,
            expected_seqno: 0
        }
        .is_read());
        assert!(!DirRequest::DeleteDir { cap: cap(1) }.is_read());
        assert!(!DirRequest::CreateDir {
            columns: vec!["o".into()]
        }
        .is_read());
        // FetchDir mutates the replicated lease table: it must be
        // ordered through the group, not served at one replica.
        assert!(!DirRequest::FetchDir {
            cap: cap(1),
            owner: 1,
            cb_port: 2,
            ttl_us: 3
        }
        .is_read());
    }

    #[test]
    fn prop_decoders_never_panic() {
        check("dir decoders never panic", 256, |g: &mut Gen| {
            let data = g.bytes(128);
            let _ = DirRequest::decode(&data);
            let _ = DirReply::decode(&data);
            let _ = DirOp::decode(&data);
        });
    }
}

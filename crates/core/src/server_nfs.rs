//! The Sun-NFS-like baseline (§4.1, third column of Fig. 7): one server,
//! one disk, **no replication and no fault tolerance**. Serves the same
//! directory interface so the experiments can run the same workloads.
//!
//! Substitution note: SunOS is not available, so this is a minimal
//! single-copy metadata server whose update path costs one synchronous
//! disk write — the same cost structure as NFS metadata operations on
//! `/usr/tmp` in the paper's measurement.

use std::sync::Arc;

use amoeba_bullet::BulletClient;
use amoeba_disk::RawPartition;
use amoeba_rpc::{RpcNode, RpcServer};
use amoeba_sim::{Ctx, NodeId, Resource, Spawn};
use parking_lot::Mutex;

use crate::config::{DirParams, ServiceConfig, StorageKind};
use crate::object_table::ObjectTable;
use crate::ops::{DirError, DirReply, DirRequest};
use crate::state::{Applier, Mode, Shared};

/// Handle to the running NFS-like server.
#[derive(Clone)]
pub struct NfsDirServer {
    pub(crate) shared: Arc<Mutex<Shared>>,
}

impl std::fmt::Debug for NfsDirServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NfsDirServer")
    }
}

impl NfsDirServer {
    /// The current logical version (diagnostics/tests).
    pub fn update_seq(&self) -> u64 {
        self.shared.lock().update_seq
    }
}

/// Everything needed to start the NFS-like server.
pub struct NfsServerDeps {
    /// Service configuration (`n` must be 1).
    pub cfg: ServiceConfig,
    /// Performance parameters (`read_cpu` is typically ~4 ms here,
    /// matching the paper's 6 ms NFS lookup against Amoeba's 5 ms).
    pub params: DirParams,
    /// The machine.
    pub sim_node: NodeId,
    /// The machine's RPC kernel.
    pub rpc: RpcNode,
    /// Bullet client for directory contents storage.
    pub bullet: BulletClient,
    /// Raw partition for the metadata table.
    pub partition: RawPartition,
    /// The machine's CPU.
    pub cpu: Resource,
}

impl std::fmt::Debug for NfsServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NfsServerDeps")
    }
}

/// Starts the single-server baseline.
pub fn start_nfs_server(spawner: &impl Spawn, deps: NfsServerDeps) -> NfsDirServer {
    let NfsServerDeps {
        cfg,
        params,
        sim_node,
        rpc,
        bullet,
        partition,
        cpu,
    } = deps;
    assert_eq!(cfg.n, 1, "the NFS-like baseline is a single server");
    let table = ObjectTable::new(partition.clone());
    let mut shared0 = Shared::new(table, 1);
    shared0.mode = Mode::Normal;
    let shared = Arc::new(Mutex::new(shared0));
    let applier = Arc::new(Applier {
        cfg: cfg.clone(),
        storage: StorageKind::Disk,
        shared: Arc::clone(&shared),
        bullet,
        partition,
        nvram: None,
        journal: None,
        max_lease_us: params.max_lease.as_micros() as u64,
        lease_renewals: params.lease_renewals,
    });
    // Updates serialize through a single mutation lock (one metadata
    // update in flight, like a kernel inode lock).
    let update_lock = Resource::new(spawner.sim_handle(), "nfs-update");
    for t in 0..params.server_threads.max(1) {
        let srv = RpcServer::new(&rpc, cfg.public_port);
        let applier = Arc::clone(&applier);
        let params = params.clone();
        let cpu = cpu.clone();
        let update_lock = update_lock.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("nfsdir-srv{t}"),
            Box::new(move |ctx| loop {
                let incoming = srv.getreq(ctx);
                let req = match DirRequest::decode(&incoming.data) {
                    Ok(r) => r,
                    Err(_) => {
                        srv.putrep(&incoming, DirReply::Err(DirError::Malformed).encode());
                        continue;
                    }
                };
                let reply = if req.is_read() {
                    cpu.use_for(ctx, params.read_cpu);
                    applier.serve_read(ctx, &req)
                } else {
                    cpu.use_for(ctx, params.write_cpu);
                    update_lock.acquire(ctx);
                    let reply = match applier.prepare_write(ctx, &req) {
                        // NFS metadata update: the new directory contents
                        // are written through synchronously — but as a
                        // single in-place write (no copy-on-write Bullet
                        // file), so one disk operation per update.
                        Ok(op) => applier.apply_nfs(ctx, &op),
                        Err(e) => DirReply::Err(e),
                    };
                    update_lock.release();
                    reply
                };
                srv.putrep(&incoming, reply.encode());
            }),
        );
    }
    NfsDirServer { shared }
}

impl Applier {
    /// NFS-style apply: mutate RAM, then one synchronous metadata write
    /// (the object-table block). Directory contents live in RAM and reach
    /// the disk asynchronously (UNIX buffer cache behaviour); this is the
    /// "no fault tolerance" column of Fig. 7.
    pub(crate) fn apply_nfs(&self, ctx: &Ctx, op: &crate::ops::DirOp) -> DirReply {
        let planned = {
            let mut shared = self.shared.lock();
            self.plan(&mut shared, op, None)
        };
        match planned {
            Ok((reply, _effects, _)) => {
                // One synchronous disk write, whatever the op.
                let object = crate::server_rpc::op_lock_object(op).max(1);
                let waiter = { self.shared.lock().table.flush_begin(object) };
                if let Some(w) = waiter {
                    w.recv(ctx);
                }
                reply
            }
            Err(e) => DirReply::Err(e),
        }
    }
}

//! The lease-fenced client-side directory cache: the read path at
//! production scale.
//!
//! The paper's service answers every lookup with an RPC; at 98% read
//! traffic the wire and the server CPU are the read path's ceiling. This
//! module moves the hot read path into the client: a lookup miss sends
//! one [`FetchDir`](crate::ops::DirRequest::FetchDir) to the directory's
//! shard and receives the rows visible to the holder *plus a read
//! lease*; while the lease holds, `lookup`/`lookup_set` on that
//! directory are served from this cache with **zero packets**.
//!
//! ## The fencing invariant
//!
//! > A read is served locally **iff** its lease is live **iff** no
//! > acknowledged write has touched the directory since the lease was
//! > granted.
//!
//! The service maintains the right-hand side: lease grants are ordered
//! through the group like writes, so every replica knows every lease,
//! and any update — initiated at *any* replica — revokes the covering
//! leases **before the write is acknowledged** (see
//! [`crate::server_group`]): the initiator sends an invalidation
//! callback to every holder and an unreachable holder's lease is waited
//! out in full. The client maintains the left-hand side: an entry is
//! only served before its deadline, the invalidation listener drops
//! entries (and bumps a per-directory revocation epoch) the moment a
//! callback arrives, and a snapshot whose fetch raced a revocation —
//! the epoch moved while the `FetchDir` was in flight — is discarded
//! unserved.
//!
//! **Cold-start gap and its fence.** The lease table is replicated but
//! deliberately *not* durable (grants are never logged to disk or
//! NVRAM: replaying them would resurrect long-expired leases). A
//! replica booting from salvaged non-empty storage therefore fences
//! all write acknowledgements for one maximum lease duration
//! ([`DirParams::max_lease`](crate::DirParams)), by which time every
//! lease granted before the crash has provably expired; a replica that
//! instead catches up by snapshot installation inherits the live lease
//! table and lifts the fence.
//!
//! ## Renewal
//!
//! Renewal is lazy: a lookup that finds its entry inside the renewal
//! window (the last [`renew_guard`](CacheParams::renew_guard) of the
//! lease, widened by a per-client jitter derived from the machine
//! index — [`DirCache::with_renew_jitter`]) is counted as a renewal and
//! refetches, so a working set's leases are refreshed by its own
//! traffic instead of by a timer, and co-started clients don't renew in
//! lockstep.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use amoeba_flip::wire::{WireReader, WireWriter};
use amoeba_flip::Port;
use amoeba_rpc::{RpcNode, RpcServer};
use amoeba_sim::{NodeId, Spawn};
use parking_lot::Mutex;

use crate::capability::Capability;

/// Client-cache tunables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheParams {
    /// Lease duration to request per fetch. The service clamps it to
    /// its own [`DirParams::max_lease`](crate::DirParams).
    pub ttl: Duration,
    /// Base width of the lazy-renewal window at the end of each lease:
    /// a lookup landing inside it refetches instead of serving locally.
    pub renew_guard: Duration,
}

impl Default for CacheParams {
    fn default() -> Self {
        CacheParams {
            ttl: Duration::from_millis(400),
            renew_guard: Duration::from_millis(60),
        }
    }
}

/// A point-in-time copy of one client's cache counters, reported next
/// to [`amoeba_rsm::ReplicaStats`] by the benchmarks. Every lookup is
/// counted exactly once: `hits + misses + renewals + stale_rejects` is
/// the total lookup count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served locally under a live lease (zero packets).
    pub hits: u64,
    /// Lookups with no cached entry (a `FetchDir` followed).
    pub misses: u64,
    /// Entries dropped by server invalidation callbacks (a write —
    /// possibly this client's own — touched the directory).
    pub invalidations: u64,
    /// Lookups that found their entry inside the renewal window and
    /// refetched early.
    pub renewals: u64,
    /// Lookups that found their entry past its lease deadline — the
    /// entry is rejected as stale and dropped, never served.
    pub stale_rejects: u64,
    /// Fetches answered off the service's read path under a piggybacked
    /// lease renewal — group rounds the renewal budget saved. Counted
    /// per fetch, not per lookup, so it sits outside the lookup
    /// identity above.
    pub renewals_saved: u64,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    renewals: AtomicU64,
    stale_rejects: AtomicU64,
    renewals_saved: AtomicU64,
}

/// Cache key: the full capability identity. Rights are part of the key
/// because the fetched rows are restricted to the fetching holder's
/// effective rights — two capabilities of different strength for the
/// same directory must not share an entry.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    port: u64,
    object: u64,
    check: u64,
    rights: u8,
}

impl Key {
    fn of(cap: &Capability) -> Key {
        Key {
            port: cap.port.as_raw(),
            object: cap.object,
            check: cap.check,
            rights: cap.rights.0,
        }
    }
}

/// One leased directory snapshot. `rows` holds only the rows visible to
/// the holder (invisible rows are omitted by the service), restricted
/// exactly as `LookupSet` would restrict them — so a local lookup is
/// answer-identical to the server's.
struct Entry {
    rows: HashMap<String, Capability>,
    deadline_us: u64,
    renew_at_us: u64,
}

struct Inner {
    params: CacheParams,
    cb_port: Port,
    /// Per-client renewal jitter (µs), derived from the machine index.
    jitter_us: AtomicU64,
    /// Lock order: `epochs` before `entries`, always.
    epochs: Mutex<HashMap<(u64, u64), u64>>,
    entries: Mutex<HashMap<Key, Entry>>,
    counters: Counters,
}

/// One client machine's directory cache. Clones share the same cache
/// (the [`DirClient`](crate::DirClient) and the invalidation listener
/// hold clones of one cache).
#[derive(Clone)]
pub struct DirCache {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for DirCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DirCache(cb={:?})", self.inner.cb_port)
    }
}

impl DirCache {
    /// Creates a cache whose invalidation listener will answer on
    /// `cb_port` (unique per client machine; see
    /// [`start_invalidation_listener`]).
    pub fn new(params: CacheParams, cb_port: Port) -> DirCache {
        DirCache {
            inner: Arc::new(Inner {
                params,
                cb_port,
                jitter_us: AtomicU64::new(0),
                epochs: Mutex::new(HashMap::new()),
                entries: Mutex::new(HashMap::new()),
                counters: Counters::default(),
            }),
        }
    }

    /// Derives this client's renewal jitter from its machine index (the
    /// same idiom as
    /// [`DirClient::with_create_offset`](crate::DirClient::with_create_offset)):
    /// co-started clients caching the same hot directories would
    /// otherwise all renew in the same instant of every lease period.
    #[must_use]
    pub fn with_renew_jitter(self, index: usize) -> DirCache {
        let guard_us = self.inner.params.renew_guard.as_micros() as u64;
        let jitter = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) % guard_us.max(1);
        self.inner.jitter_us.store(jitter, Ordering::Relaxed);
        self
    }

    /// The port the invalidation listener answers on.
    pub fn cb_port(&self) -> Port {
        self.inner.cb_port
    }

    /// This client's lease identity (grants upsert by owner).
    pub fn owner(&self) -> u64 {
        self.inner.cb_port.as_raw()
    }

    /// The lease duration to request, in simulated microseconds.
    pub fn ttl_us(&self) -> u64 {
        self.inner.params.ttl.as_micros() as u64
    }

    /// A point-in-time copy of the counters.
    pub fn stats(&self) -> CacheStats {
        let c = &self.inner.counters;
        CacheStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            invalidations: c.invalidations.load(Ordering::Relaxed),
            renewals: c.renewals.load(Ordering::Relaxed),
            stale_rejects: c.stale_rejects.load(Ordering::Relaxed),
            renewals_saved: c.renewals_saved.load(Ordering::Relaxed),
        }
    }

    /// Counts a fetch the service answered under a piggybacked renewal
    /// (`Snapshot { renewed: true, .. }`).
    pub(crate) fn note_renewal_saved(&self) {
        self.inner
            .counters
            .renewals_saved
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The current revocation epoch of a directory. Read **before**
    /// sending a `FetchDir`; [`install`](DirCache::install) refuses a
    /// snapshot whose epoch moved while the fetch was in flight.
    pub(crate) fn epoch(&self, port: u64, object: u64) -> u64 {
        self.inner
            .epochs
            .lock()
            .get(&(port, object))
            .copied()
            .unwrap_or(0)
    }

    /// Local lookup. Outer `None` means "not servable locally" (absent,
    /// in the renewal window, or past deadline) — fetch; inner value is
    /// the answer the server would give.
    pub(crate) fn lookup(
        &self,
        now_us: u64,
        cap: &Capability,
        name: &str,
    ) -> Option<Option<Capability>> {
        let key = Key::of(cap);
        let mut entries = self.inner.entries.lock();
        match entries.get(&key) {
            None => {
                self.inner.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(e) if now_us >= e.deadline_us => {
                entries.remove(&key);
                self.inner
                    .counters
                    .stale_rejects
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(e) if now_us >= e.renew_at_us => {
                // Still live (and kept — a failed refetch loses nothing),
                // but refresh proactively before the deadline hits.
                self.inner.counters.renewals.fetch_add(1, Ordering::Relaxed);
                None
            }
            Some(e) => {
                self.inner.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.rows.get(name).copied())
            }
        }
    }

    /// Installs a fetched snapshot, unless the directory's revocation
    /// epoch moved since `epoch0` was read (a write was acknowledged
    /// while the fetch was in flight — the snapshot may predate it and
    /// must not be served) or the lease is already past its deadline.
    /// Returns whether the snapshot may be served.
    pub(crate) fn install(
        &self,
        epoch0: u64,
        cap: &Capability,
        rows: HashMap<String, Capability>,
        deadline_us: u64,
        now_us: u64,
    ) -> bool {
        if deadline_us <= now_us {
            return false;
        }
        let epochs = self.inner.epochs.lock();
        if epochs
            .get(&(cap.port.as_raw(), cap.object))
            .copied()
            .unwrap_or(0)
            != epoch0
        {
            return false;
        }
        let guard = self.inner.params.renew_guard.as_micros() as u64
            + self.inner.jitter_us.load(Ordering::Relaxed);
        self.inner.entries.lock().insert(
            Key::of(cap),
            Entry {
                rows,
                deadline_us,
                renew_at_us: deadline_us.saturating_sub(guard),
            },
        );
        true
    }

    /// Server-driven invalidation: a write touched `(port, object)`.
    /// Bumps the revocation epoch and drops every entry of the
    /// directory (all rights variants).
    pub(crate) fn invalidate(&self, port: u64, object: u64) {
        let dropped = self.drop_dir(port, object);
        self.inner
            .counters
            .invalidations
            .fetch_add(dropped.max(1), Ordering::Relaxed);
    }

    /// Client-driven drop (own writes, `Moved` hints): the same epoch
    /// bump and entry drop as [`invalidate`](DirCache::invalidate),
    /// but not counted as a server-driven invalidation.
    pub(crate) fn forget(&self, port: u64, object: u64) {
        self.drop_dir(port, object);
    }

    fn drop_dir(&self, port: u64, object: u64) -> u64 {
        let mut epochs = self.inner.epochs.lock();
        *epochs.entry((port, object)).or_insert(0) += 1;
        let mut entries = self.inner.entries.lock();
        let before = entries.len();
        entries.retain(|k, _| !(k.port == port && k.object == object));
        (before - entries.len()) as u64
    }
}

/// Wire form of one invalidation callback: the directory's home
/// `(port, object)` as granted.
pub(crate) fn encode_invalidation(home: Port, object: u64) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(16);
    w.u64(home.as_raw()).u64(object);
    w.finish()
}

pub(crate) fn decode_invalidation(data: &[u8]) -> Option<(u64, u64)> {
    let mut r = WireReader::new(data);
    let port = r.u64("inval port").ok()?;
    let object = r.u64("inval object").ok()?;
    r.expect_end("inval trailing").ok()?;
    Some((port, object))
}

/// Spawns the invalidation listener of one client machine: an RPC
/// server on the cache's callback port that drops cached entries the
/// moment a write's initiator revokes their lease. **Required** for any
/// client using a [`DirCache`] — a write's initiator waits for either
/// this listener's acknowledgement or full lease expiry before
/// acknowledging the write, so a cache without its listener stalls
/// every write that touches a directory it has cached.
pub fn start_invalidation_listener(
    spawner: &impl Spawn,
    sim_node: NodeId,
    rpc: &RpcNode,
    cache: &DirCache,
) {
    let srv = RpcServer::new(rpc, cache.cb_port());
    let cache = cache.clone();
    spawner.spawn_boxed(
        Some(sim_node),
        "dir-cache-inval",
        Box::new(move |ctx| {
            let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
            let machine = u64::from(srv.addr().0);
            loop {
                let incoming = srv.getreq(ctx);
                let span = tele.begin_child("cache.inval", machine, incoming.trace);
                if let Some((port, object)) = decode_invalidation(&incoming.data) {
                    cache.invalidate(port, object);
                }
                tele.end(span);
                srv.putrep(&incoming, WireWriter::new().finish());
            }
        }),
    );
}

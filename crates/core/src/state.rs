//! The replica state machine shared by every server implementation:
//! validation, deterministic apply, and storage effects.

use std::collections::HashMap;
use std::sync::Arc;

use amoeba_bullet::{BulletClient, FileCap};
use amoeba_disk::{Journal, NvRecord, Nvram, RawPartition};
use amoeba_flip::wire::{WireReader, WireWriter};
use amoeba_flip::Port;
use amoeba_sim::Ctx;
use parking_lot::Mutex;

use crate::capability::Capability;
use crate::commit_block::CommitBlock;
use crate::config::{ServiceConfig, StorageKind};
use crate::directory::{DirStructureError, Directory};
use crate::object_table::{ObjEntry, ObjectTable};
use crate::ops::{DirError, DirOp, DirReply, DirRequest};
use crate::rights::Rights;

/// Server operating mode (the group variant's mode lives in the RSM
/// driver; this one is read by the RPC baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Mode {
    Recovering,
    Normal,
}

/// Mutable replica state. Lock discipline: never hold the lock across a
/// blocking simulator call.
pub(crate) struct Shared {
    pub mode: Mode,
    pub table: ObjectTable,
    /// Authoritative in-RAM directory contents (the paper's RAM cache;
    /// lazily refilled from Bullet files after a reboot).
    pub cache: HashMap<u64, Directory>,
    /// Logical version counter, monotone across group incarnations;
    /// stored with every directory ("sequence number", Fig. 4/§3).
    pub update_seq: u64,
    /// Applied cursor of the replicated state machine: the last group
    /// sequence number whose effect is reflected in `table`/`cache`.
    /// Updated in the same critical section as the state mutation, so
    /// a state-transfer snapshot is always consistent with it.
    pub applied_group_seq: u64,
    pub commit: CommitBlock,
    pub next_nv_uid: u64,
    /// Virtual time of the last applied update (drives idle flushing).
    pub last_update_at: amoeba_sim::SimTime,
    /// Completion records of keyed creates and installs
    /// (`key → object`): the idempotency memory of the cross-shard
    /// two-step protocols (see [`crate::ShardMap`]). Replicated state —
    /// travels in snapshots; deleting a directory deletes its records.
    pub completions: HashMap<u64, u64>,
    /// Forwarding stubs of migrated-away directories
    /// (`object → new location`). The object's table entry is *kept*
    /// (its number stays reserved and its check still validates old
    /// capabilities); its contents and Bullet file are gone. Replicated
    /// state — travels in snapshots with the entry's check/seqno; like
    /// completions, lost only if every replica boots from a salvaged
    /// disk in the same window.
    pub stubs: HashMap<u64, StubEntry>,
    /// Per-directory operation counts since the last drain — advisory,
    /// replica-local load signal for the rebalancer (never replicated,
    /// never deterministic across replicas: reads count only where they
    /// are served).
    pub heat: HashMap<u64, u64>,
    /// Outstanding client read leases (`object → holders`). Replicated
    /// state — grants travel through the total order (a replica-local
    /// grant would be invisible to a write initiated at another
    /// replica, breaking the cache fence) and in snapshots, with
    /// deadlines chosen by the granting initiator in global simulated
    /// time so apply stays deterministic.
    pub rleases: HashMap<u64, Vec<ReadLease>>,
    /// Leases revoked by applied mutations, parked here until an
    /// initiator thread on *this* machine fans out the invalidation
    /// callbacks before acknowledging its write. Advisory and
    /// replica-local (every replica applies the same revocation; only
    /// the writer's machine must act on it), never snapshotted; entries
    /// whose deadline passed are pruned on apply.
    pub revoked: HashMap<u64, Vec<ReadLease>>,
    /// Invalidation fan-outs in flight per object on this machine: a
    /// second writer to the same object must not acknowledge before a
    /// racing writer's fan-out (which may cover leases the second
    /// writer's apply no longer sees) completes.
    pub inflight_inval: HashMap<u64, u32>,
    /// Simulated-time µs before which no write may be acknowledged:
    /// set after booting from salvaged non-empty local state, when the
    /// replicated lease table (volatile, never on disk) may have been
    /// lost while clients still hold live leases. Waiting out one
    /// maximum lease closes the fence hole; `0` means no fence.
    pub write_fence_until_us: u64,
}

/// One outstanding client read lease over a directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadLease {
    /// The holding client's unique cache identity.
    pub owner: u64,
    /// Raw port of the holder's invalidation listener.
    pub cb_port: u64,
    /// Absolute expiry in simulated microseconds.
    pub deadline_us: u64,
    /// The lease's granted duration in microseconds; a piggybacked
    /// renewal extends the deadline by this much.
    pub ttl_us: u64,
    /// Remaining piggybacked renewals. When a write revokes this lease,
    /// a successor lease (deadline extended by `ttl_us`, budget
    /// decremented) is reinstated as long as the budget is positive, so
    /// the holder's post-invalidation refetch can be served off the read
    /// path instead of a full group round (see
    /// [`crate::config::DirParams::lease_renewals`]).
    pub renewals_left: u32,
}

/// Where a migrated directory went (see [`Shared::stubs`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StubEntry {
    /// Raw port of the shard the directory now lives on.
    pub to_port: u64,
    /// Object number at that shard.
    pub to_object: u64,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("mode", &self.mode)
            .field("update_seq", &self.update_seq)
            .field("applied_group_seq", &self.applied_group_seq)
            .finish()
    }
}

impl Shared {
    pub fn new(table: ObjectTable, n: usize) -> Shared {
        Shared {
            mode: Mode::Recovering,
            table,
            cache: HashMap::new(),
            update_seq: 0,
            applied_group_seq: 0,
            commit: CommitBlock::initial(n),
            next_nv_uid: 1,
            last_update_at: amoeba_sim::SimTime::ZERO,
            completions: HashMap::new(),
            stubs: HashMap::new(),
            heat: HashMap::new(),
            rleases: HashMap::new(),
            revoked: HashMap::new(),
            inflight_inval: HashMap::new(),
            write_fence_until_us: 0,
        }
    }

    /// Moves every lease covering `object` into the revoked parking lot
    /// (called at apply time for each mutated object, inside the same
    /// critical section as the mutation — ordered in the total order).
    ///
    /// Piggybacked renewal: each revoked lease with remaining budget
    /// leaves a successor lease behind, extended by its own `ttl_us`.
    /// The successor is derived purely from replicated state (no clock),
    /// so every replica reinstates identically; the extension means the
    /// holder's refetch after the invalidation callback can be served
    /// under the still-registered lease without another group round. An
    /// already-expired lease yields a successor that is itself expired
    /// (or nearly so) and gets pruned at the next grant; the budget
    /// bounds how long a crashed holder can keep taxing writers.
    pub fn revoke_leases(&mut self, object: u64) {
        if let Some(leases) = self.rleases.remove(&object) {
            let successors: Vec<ReadLease> = leases
                .iter()
                .filter(|l| l.renewals_left > 0)
                .map(|l| ReadLease {
                    owner: l.owner,
                    cb_port: l.cb_port,
                    deadline_us: l.deadline_us.saturating_add(l.ttl_us),
                    ttl_us: l.ttl_us,
                    renewals_left: l.renewals_left - 1,
                })
                .collect();
            if !successors.is_empty() {
                self.rleases.insert(object, successors);
            }
            self.revoked.entry(object).or_default().extend(leases);
        }
    }
}

/// Everything a server needs to validate and apply operations.
pub(crate) struct Applier {
    pub cfg: ServiceConfig,
    pub storage: StorageKind,
    pub shared: Arc<Mutex<Shared>>,
    pub bullet: BulletClient,
    pub partition: RawPartition,
    pub nvram: Option<Nvram>,
    /// The group log's journal, when the journaled commit path is on
    /// (`DirParams::journal`): flushes append one sequential record
    /// here and a background checkpointer drains the dirty set into the
    /// table. `None` keeps the region-phased in-place flush.
    pub journal: Option<Journal>,
    /// Upper bound on granted read-lease durations, in simulated
    /// microseconds ([`crate::config::DirParams::max_lease`]): bounds
    /// how long a write can stall on an unreachable lease holder.
    pub max_lease_us: u64,
    /// Piggybacked renewals budgeted per grant
    /// ([`crate::config::DirParams::lease_renewals`]); identical on
    /// every replica, so apply-time reinstatement is deterministic.
    pub lease_renewals: u32,
}

impl std::fmt::Debug for Applier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Applier(server {})", self.cfg.me)
    }
}

/// Validation outcome carrying the directory's object number.
pub(crate) fn validate_dir_cap(
    shared: &Shared,
    public_port: Port,
    cap: &Capability,
    need: Rights,
) -> Result<u64, DirError> {
    if cap.port != public_port {
        return Err(DirError::BadCapability);
    }
    let entry = shared
        .table
        .get(cap.object)
        .ok_or(DirError::BadCapability)?;
    if !cap.validate(entry.check) {
        return Err(DirError::BadCapability);
    }
    if !cap.rights.covers(need) {
        return Err(DirError::NoPermission);
    }
    Ok(cap.object)
}

/// [`Applier::restrict_for_holder`] with the lock already held (the
/// plan phase runs inside the shared-state critical section).
fn restrict_with(
    shared: &Shared,
    public_port: Port,
    stored: &Capability,
    eff: Rights,
) -> Capability {
    if stored.port == public_port {
        if let Some(entry) = shared.table.get(stored.object) {
            return Capability::issue(public_port, stored.object, entry.check, eff);
        }
    }
    *stored
}

fn structure_err(e: DirStructureError) -> DirError {
    match e {
        DirStructureError::DuplicateName => DirError::DuplicateName,
        DirStructureError::NoSuchName => DirError::NoSuchName,
        DirStructureError::ColumnMismatch => DirError::ColumnMismatch,
    }
}

/// Rebuilds a full directory from an [`DirOp::InstallDir`]'s carried
/// contents, re-validating the structural invariants (a forged install
/// must not plant an undecodable directory).
fn build_directory(
    columns: &[String],
    rows: &[(String, Capability, Vec<Rights>)],
    useq: u64,
) -> Result<Directory, DirError> {
    if !(1..=4).contains(&columns.len()) {
        return Err(DirError::Malformed);
    }
    let mut dir = Directory::new(columns.to_vec());
    for (name, cap, masks) in rows {
        dir.append_row(name.clone(), *cap, masks.clone())
            .map_err(structure_err)?;
    }
    dir.seqno = useq;
    Ok(dir)
}

/// Storage effects produced by the deterministic plan phase.
#[derive(Debug)]
pub(crate) enum Effect {
    StoreDir {
        object: u64,
        dir: Directory,
    },
    DropDir {
        object: u64,
        old_file: FileCap,
    },
    /// A migration tombstone: persist the kept (contentless) table
    /// entry and free the directory's Bullet file.
    StoreStub {
        object: u64,
        old_file: FileCap,
    },
}

impl Effect {
    /// The object the effect concerns.
    pub(crate) fn object(&self) -> u64 {
        match self {
            Effect::StoreDir { object, .. }
            | Effect::DropDir { object, .. }
            | Effect::StoreStub { object, .. } => *object,
        }
    }
}

/// The object an op concerns (NVRAM record tag).
pub(crate) fn op_object(op: &DirOp) -> u64 {
    match op {
        DirOp::Create { .. } | DirOp::CreateKeyed { .. } | DirOp::InstallDir { .. } => 0,
        DirOp::Delete { object }
        | DirOp::Append { object, .. }
        | DirOp::Chmod { object, .. }
        | DirOp::DeleteRow { object, .. }
        | DirOp::AppendLink { object, .. }
        | DirOp::Unlink { object, .. }
        | DirOp::InstallStub { object, .. } => *object,
        DirOp::GrantRead { cap, .. } => cap.object,
        DirOp::ReplaceSet { items } => items.first().map(|(o, _, _)| *o).unwrap_or(0),
    }
}

fn decode_nv_record(data: &[u8]) -> Option<(u64, DirOp)> {
    let mut r = WireReader::new(data);
    let useq = r.u64("nv seq").ok()?;
    let bytes = r.bytes("nv op").ok()?;
    let op = DirOp::decode(bytes).ok()?;
    Some((useq, op))
}

impl Applier {
    /// Fetches a directory's contents: RAM cache, else its Bullet file.
    pub fn load_dir(&self, ctx: &Ctx, object: u64) -> Result<Directory, DirError> {
        {
            let shared = self.shared.lock();
            if let Some(d) = shared.cache.get(&object) {
                return Ok(d.clone());
            }
        }
        let entry = {
            let shared = self.shared.lock();
            shared.table.get(object).ok_or(DirError::BadCapability)?
        };
        let bytes = self
            .bullet
            .read(ctx, entry.file_cap)
            .map_err(|_| DirError::Internal)?;
        let dir = Directory::decode(&bytes).map_err(|_| DirError::Internal)?;
        let mut shared = self.shared.lock();
        shared.cache.insert(object, dir.clone());
        Ok(dir)
    }

    /// Pre-loads the directories `op` touches into the RAM cache
    /// (Bullet reads must happen outside the lock; after a reboot the
    /// cache starts cold).
    pub(crate) fn preload_for(&self, ctx: &Ctx, op: &DirOp) {
        match op {
            DirOp::ReplaceSet { items } => {
                for (object, _, _) in items {
                    let _ = self.load_dir(ctx, *object);
                }
            }
            _ => {
                let object = op_object(op);
                if object != 0 {
                    let _ = self.load_dir(ctx, object);
                }
            }
        }
    }

    /// NVRAM commit path for one applied op: log it (and annihilate what
    /// the log no longer needs, §4.1). The group-commit flush is the
    /// log append itself — durable immediately, applied to disk lazily.
    pub(crate) fn commit_nvram(&self, ctx: &Ctx, useq: u64, op: &DirOp) {
        if let DirOp::Delete { object } = op {
            // Pending records of a deleted directory are moot,
            // but the delete itself must be logged.
            let nvram = self.nvram.as_ref().expect("nvram storage");
            let _ = nvram.annihilate(|r| r.tag == *object);
        }
        // Every modification is logged (and charged) — then a
        // delete whose append is still in the log annihilates
        // *both* records, so neither ever costs a disk operation
        // (§4.1). The NVRAM write itself is still paid, which is
        // what bounds the paper's Fig. 9 at ~45 pairs/s.
        self.log_op(ctx, useq, op_object(op), op);
        if let DirOp::DeleteRow { object, name } = op {
            self.try_annihilate_pair(*object, name);
        }
    }

    /// Computes the new state and storage effects for `op`. Must be
    /// deterministic: every replica runs this on the same state in the
    /// same order. `forced_seq` pins the update seq during NVRAM replay.
    pub(crate) fn plan(
        &self,
        shared: &mut Shared,
        op: &DirOp,
        forced_seq: Option<u64>,
    ) -> Result<(DirReply, Vec<Effect>, u64), DirError> {
        let useq = match forced_seq {
            Some(s) => {
                shared.update_seq = shared.update_seq.max(s);
                s
            }
            None => {
                shared.update_seq += 1;
                shared.update_seq
            }
        };
        // A relocated directory answers every op with its new location
        // (checked *at apply time*, in the total order, so an op racing
        // the stub install lands deterministically on exactly one side).
        // InstallStub handles its own replay/forwarding cases below.
        if !matches!(op, DirOp::InstallStub { .. }) {
            let hit = match op {
                DirOp::ReplaceSet { items } => items
                    .iter()
                    .find_map(|(o, _, _)| shared.stubs.get(o).map(|s| (*o, *s))),
                _ => {
                    let object = op_object(op);
                    shared.stubs.get(&object).map(|s| (object, *s))
                }
            };
            if let Some((object, stub)) = hit {
                return Ok((
                    DirReply::Moved {
                        object,
                        to_port: stub.to_port,
                        to_object: stub.to_object,
                    },
                    Vec::new(),
                    useq,
                ));
            }
        }
        // Advisory write-load signal for the rebalancer.
        let hot = op_object(op);
        if hot != 0 {
            *shared.heat.entry(hot).or_insert(0) += 1;
        }
        match op {
            DirOp::Create { columns, check } => self.plan_create(shared, columns, *check, useq),
            DirOp::CreateKeyed {
                columns,
                check,
                key,
            } => {
                if let Some(&object) = shared.completions.get(key) {
                    if let Some(entry) = shared.table.get(object) {
                        // Replay of a completed create: hand back the
                        // original capability, change nothing.
                        let cap = Capability::owner(self.cfg.public_port, object, entry.check);
                        return Ok((DirReply::Cap(cap), Vec::new(), useq));
                    }
                }
                let planned = self.plan_create(shared, columns, *check, useq)?;
                if let DirReply::Cap(c) = &planned.0 {
                    shared.completions.insert(*key, c.object);
                }
                Ok(planned)
            }
            DirOp::Delete { object } => {
                let entry = shared.table.get(*object).ok_or(DirError::BadCapability)?;
                shared.table.clear(*object);
                shared.cache.remove(object);
                shared.completions.retain(|_, o| *o != *object);
                shared.commit.seqno = useq;
                Ok((
                    DirReply::Ok,
                    vec![Effect::DropDir {
                        object: *object,
                        old_file: entry.file_cap,
                    }],
                    useq,
                ))
            }
            DirOp::Append {
                object,
                name,
                cap,
                col_rights,
            } => {
                let mut dir = self.dir_for_plan(shared, *object)?;
                dir.append_row(name.clone(), *cap, col_rights.clone())
                    .map_err(structure_err)?;
                dir.seqno = useq;
                shared.cache.insert(*object, dir.clone());
                Ok((
                    DirReply::Ok,
                    vec![Effect::StoreDir {
                        object: *object,
                        dir,
                    }],
                    useq,
                ))
            }
            DirOp::Chmod {
                object,
                name,
                col_rights,
            } => {
                let mut dir = self.dir_for_plan(shared, *object)?;
                dir.chmod_row(name, col_rights.clone())
                    .map_err(structure_err)?;
                dir.seqno = useq;
                shared.cache.insert(*object, dir.clone());
                Ok((
                    DirReply::Ok,
                    vec![Effect::StoreDir {
                        object: *object,
                        dir,
                    }],
                    useq,
                ))
            }
            DirOp::DeleteRow { object, name } => {
                let mut dir = self.dir_for_plan(shared, *object)?;
                dir.delete_row(name).map_err(structure_err)?;
                dir.seqno = useq;
                shared.cache.insert(*object, dir.clone());
                Ok((
                    DirReply::Ok,
                    vec![Effect::StoreDir {
                        object: *object,
                        dir,
                    }],
                    useq,
                ))
            }
            DirOp::AppendLink {
                object,
                name,
                cap,
                col_rights,
            } => {
                let mut dir = self.dir_for_plan(shared, *object)?;
                if let Some(row) = dir.find(name) {
                    // Idempotent replay of a completed link.
                    return if row.cap == *cap {
                        Ok((DirReply::Ok, Vec::new(), useq))
                    } else {
                        Err(DirError::DuplicateName)
                    };
                }
                dir.append_row(name.clone(), *cap, col_rights.clone())
                    .map_err(structure_err)?;
                dir.seqno = useq;
                shared.cache.insert(*object, dir.clone());
                Ok((
                    DirReply::Ok,
                    vec![Effect::StoreDir {
                        object: *object,
                        dir,
                    }],
                    useq,
                ))
            }
            DirOp::Unlink { object, name } => {
                if shared.table.get(*object).is_none() {
                    // Directory already gone: nothing left to unlink.
                    return Ok((DirReply::Ok, Vec::new(), useq));
                }
                let mut dir = self.dir_for_plan(shared, *object)?;
                if dir.find(name).is_none() {
                    return Ok((DirReply::Ok, Vec::new(), useq));
                }
                dir.delete_row(name).map_err(structure_err)?;
                dir.seqno = useq;
                shared.cache.insert(*object, dir.clone());
                Ok((
                    DirReply::Ok,
                    vec![Effect::StoreDir {
                        object: *object,
                        dir,
                    }],
                    useq,
                ))
            }
            DirOp::ReplaceSet { items } => {
                // Indivisible: validate everything, then mutate.
                let mut dirs: HashMap<u64, Directory> = HashMap::new();
                for (object, name, _) in items {
                    if !dirs.contains_key(object) {
                        dirs.insert(*object, self.dir_for_plan(shared, *object)?);
                    }
                    if dirs[object].find(name).is_none() {
                        return Err(DirError::NoSuchName);
                    }
                }
                for (object, name, cap) in items {
                    let dir = dirs.get_mut(object).expect("validated above");
                    dir.replace_cap(name, *cap).expect("validated above");
                }
                let mut effects = Vec::new();
                let mut objs: Vec<u64> = dirs.keys().copied().collect();
                objs.sort_unstable();
                for object in objs {
                    let mut dir = dirs.remove(&object).expect("present");
                    dir.seqno = useq;
                    shared.cache.insert(object, dir.clone());
                    effects.push(Effect::StoreDir { object, dir });
                }
                Ok((DirReply::Ok, effects, useq))
            }
            DirOp::InstallDir {
                columns,
                rows,
                check,
                key,
            } => {
                let dir = build_directory(columns, rows, useq)?;
                if let Some(&object) = shared.completions.get(key) {
                    if let Some(entry) = shared.table.get(object) {
                        let cap = Capability::owner(self.cfg.public_port, object, entry.check);
                        if shared.stubs.contains_key(&object) {
                            // The copy itself migrated on; hand back its
                            // (stubbed) capability — the holder chases.
                            return Ok((DirReply::Cap(cap), Vec::new(), useq));
                        }
                        // Upsert: a retry after a Stale CAS carries newer
                        // contents — replace the dark copy wholesale.
                        shared.cache.insert(object, dir.clone());
                        shared.table.set(
                            object,
                            ObjEntry {
                                file_cap: entry.file_cap,
                                seqno: useq,
                                check: entry.check,
                            },
                        );
                        return Ok((
                            DirReply::Cap(cap),
                            vec![Effect::StoreDir { object, dir }],
                            useq,
                        ));
                    }
                }
                // Fresh install: allocate like a create, with the carried
                // contents and check (so relocated capabilities validate
                // unchanged), and record the migration key.
                let object = shared.table.next_object();
                if object > shared.table.capacity() {
                    return Err(DirError::Internal);
                }
                shared.cache.insert(object, dir.clone());
                shared.table.set(
                    object,
                    ObjEntry {
                        file_cap: FileCap::NULL, // patched by the effect
                        seqno: useq,
                        check: *check,
                    },
                );
                shared.completions.insert(*key, object);
                let cap = Capability::owner(self.cfg.public_port, object, *check);
                Ok((
                    DirReply::Cap(cap),
                    vec![Effect::StoreDir { object, dir }],
                    useq,
                ))
            }
            DirOp::InstallStub {
                object,
                to_port,
                to_object,
                expected_seqno,
            } => {
                if let Some(stub) = shared.stubs.get(object) {
                    // Replay of a completed migration — or a different
                    // one won: both are answered without touching state.
                    return if stub.to_port == *to_port && stub.to_object == *to_object {
                        Ok((DirReply::Ok, Vec::new(), useq))
                    } else {
                        Ok((
                            DirReply::Moved {
                                object: *object,
                                to_port: stub.to_port,
                                to_object: stub.to_object,
                            },
                            Vec::new(),
                            useq,
                        ))
                    };
                }
                let entry = shared.table.get(*object).ok_or(DirError::BadCapability)?;
                // CAS: a concurrent update ordered since the export bumped
                // the seqno — fail Stale so the coordinator re-copies. A
                // contentless directory (NVRAM replay of an op that was
                // already accepted, after its pre-stub state was flushed
                // and the file freed) installs unconditionally: the CAS
                // was checked when the op was first ordered.
                if let Some(dir) = shared.cache.get(object) {
                    if dir.seqno != *expected_seqno {
                        return Err(DirError::Stale);
                    }
                }
                shared.stubs.insert(
                    *object,
                    StubEntry {
                        to_port: *to_port,
                        to_object: *to_object,
                    },
                );
                shared.cache.remove(object);
                shared.heat.remove(object);
                // Keep the entry: the object number stays reserved forever
                // and the check keeps validating old capabilities; the
                // contents (and their Bullet file) are gone.
                shared.table.set(
                    *object,
                    ObjEntry {
                        file_cap: FileCap::NULL,
                        seqno: useq,
                        check: entry.check,
                    },
                );
                // Like a delete, the migration "loses its file" (§3): the
                // commit block must record the update.
                shared.commit.seqno = useq;
                Ok((
                    DirReply::Ok,
                    vec![Effect::StoreStub {
                        object: *object,
                        old_file: entry.file_cap,
                    }],
                    useq,
                ))
            }
            DirOp::GrantRead {
                cap,
                owner,
                cb_port,
                now_us,
                deadline_us,
            } => {
                let object = validate_dir_cap(shared, self.cfg.public_port, cap, Rights::NONE)?;
                if !cap.rights.sees_any_column() {
                    return Err(DirError::NoPermission);
                }
                let dir = self.dir_for_plan(shared, object)?;
                // Prune expired holders deterministically (the op carries
                // the initiator's clock), then upsert this holder's lease.
                let leases = shared.rleases.entry(object).or_default();
                leases.retain(|l| l.deadline_us > *now_us && l.owner != *owner);
                leases.push(ReadLease {
                    owner: *owner,
                    cb_port: *cb_port,
                    deadline_us: *deadline_us,
                    ttl_us: deadline_us.saturating_sub(*now_us),
                    renewals_left: self.lease_renewals,
                });
                // The snapshot the lease covers: the rows the holder can
                // see, restricted exactly as `LookupSet` would restrict
                // them. Rows the holder has no effective rights over are
                // omitted — a cached lookup of their name answers `None`,
                // just like the server would.
                let rows = dir
                    .rows
                    .iter()
                    .filter_map(|row| {
                        let eff = dir.effective_rights(row, cap.rights);
                        if eff == Rights::NONE {
                            return None;
                        }
                        let out_cap = restrict_with(shared, self.cfg.public_port, &row.cap, eff);
                        let visible_masks: Vec<Rights> = row
                            .col_rights
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| cap.rights.sees_column(*i))
                            .map(|(_, m)| *m)
                            .collect();
                        Some((row.name.clone(), out_cap, visible_masks))
                    })
                    .collect();
                Ok((
                    DirReply::Snapshot {
                        seqno: dir.seqno,
                        deadline_us: *deadline_us,
                        renewed: false,
                        columns: dir.columns.clone(),
                        rows,
                    },
                    Vec::new(),
                    useq,
                ))
            }
        }
    }

    /// The shared create logic of `Create` and `CreateKeyed`.
    fn plan_create(
        &self,
        shared: &mut Shared,
        columns: &[String],
        check: u64,
        useq: u64,
    ) -> Result<(DirReply, Vec<Effect>, u64), DirError> {
        if !(1..=4).contains(&columns.len()) {
            return Err(DirError::Malformed);
        }
        let object = shared.table.next_object();
        if object > shared.table.capacity() {
            return Err(DirError::Internal);
        }
        let mut dir = Directory::new(columns.to_vec());
        dir.seqno = useq;
        shared.cache.insert(object, dir.clone());
        shared.table.set(
            object,
            ObjEntry {
                file_cap: FileCap::NULL, // patched by the effect
                seqno: useq,
                check,
            },
        );
        let cap = Capability::owner(self.cfg.public_port, object, check);
        Ok((
            DirReply::Cap(cap),
            vec![Effect::StoreDir { object, dir }],
            useq,
        ))
    }

    /// A directory's contents for planning: the RAM cache is authoritative
    /// during normal operation (it was populated at recovery/apply time).
    fn dir_for_plan(&self, shared: &mut Shared, object: u64) -> Result<Directory, DirError> {
        if shared.table.get(object).is_none() {
            return Err(DirError::BadCapability);
        }
        shared.cache.get(&object).cloned().ok_or(DirError::Internal)
    }

    /// Disk-path storage effect.
    pub(crate) fn perform_disk(&self, ctx: &Ctx, effect: Effect) {
        match effect {
            Effect::StoreDir { object, dir } => {
                self.store_dir_to_disk(ctx, object, &dir);
            }
            Effect::DropDir { object, old_file } | Effect::StoreStub { object, old_file } => {
                // Directory deleted (or migrated away): persist the table
                // entry — cleared for a delete, kept-but-contentless for a
                // stub — and record the update in the commit block (the
                // op loses its file, §3), then free the Bullet file.
                // Enqueue under the lock, wait outside it.
                let waiter = { self.shared.lock().table.flush_begin(object) };
                if let Some(w) = waiter {
                    w.recv(ctx);
                }
                let cb = { self.shared.lock().commit.clone() };
                cb.write(&self.partition, ctx);
                if !old_file.is_null() {
                    let _ = self.bullet.delete(ctx, old_file);
                }
            }
        }
    }

    /// Disk path: new Bullet file + one object-table write (the paper's
    /// two disk operations per update).
    pub(crate) fn store_dir_to_disk(&self, ctx: &Ctx, object: u64, dir: &Directory) {
        let old = { self.shared.lock().table.get(object) };
        let new_file = match self.bullet.create(ctx, dir.encode()) {
            Ok(cap) => cap,
            Err(_) => return, // storage column down; recovery will resync
        };
        let waiter = {
            let mut shared = self.shared.lock();
            match shared.table.get(object) {
                Some(mut entry) => {
                    entry.file_cap = new_file;
                    entry.seqno = dir.seqno;
                    shared.table.set(object, entry);
                    shared.table.flush_begin(object)
                }
                None => None,
            }
        };
        if let Some(w) = waiter {
            w.recv(ctx);
        }
        // "remove old Bullet files" — after the commit.
        if let Some(old) = old {
            if !old.file_cap.is_null() && old.file_cap != new_file {
                let _ = self.bullet.delete(ctx, old.file_cap);
            }
        }
    }

    // ------------------------------------------------------------------
    // NVRAM commit path.
    // ------------------------------------------------------------------

    /// After a delete of (`object`, `name`) was logged: if the matching
    /// append is still in the log with no intervening record for the same
    /// row, remove both the append and the delete — neither will ever
    /// reach the disk (§4.1's `/tmp` effect).
    fn try_annihilate_pair(&self, object: u64, name: &str) -> bool {
        let nvram = self.nvram.as_ref().expect("nvram storage");
        let records = nvram.snapshot();
        let mut append_uid: Option<u64> = None;
        let mut delete_uid: Option<u64> = None;
        for rec in records.iter().filter(|r| r.tag == object) {
            if let Some((_, op)) = decode_nv_record(&rec.data) {
                match &op {
                    DirOp::Append { name: n, .. } if n == name => {
                        append_uid = Some(rec.uid);
                        delete_uid = None;
                    }
                    DirOp::DeleteRow { name: n, .. } if n == name && append_uid.is_some() => {
                        delete_uid = Some(rec.uid);
                    }
                    DirOp::Chmod { name: n, .. } if n == name => {
                        append_uid = None;
                        delete_uid = None;
                    }
                    DirOp::ReplaceSet { items } if items.iter().any(|(_, n, _)| n == name) => {
                        append_uid = None;
                        delete_uid = None;
                    }
                    _ => {}
                }
            }
        }
        match (append_uid, delete_uid) {
            (Some(a), Some(d)) => nvram.annihilate(|r| r.uid == a || r.uid == d) >= 2,
            _ => false,
        }
    }

    fn log_op(&self, ctx: &Ctx, useq: u64, tag: u64, op: &DirOp) {
        let mut w = WireWriter::new();
        w.u64(useq).bytes(&op.encode());
        let uid = {
            let mut shared = self.shared.lock();
            let uid = shared.next_nv_uid;
            shared.next_nv_uid += 1;
            uid
        };
        self.append_with_flush(
            ctx,
            NvRecord {
                uid,
                tag,
                data: w.finish(),
            },
        );
    }

    fn append_with_flush(&self, ctx: &Ctx, rec: NvRecord) {
        let nvram = self.nvram.as_ref().expect("nvram storage");
        if nvram.append(ctx, rec.clone()).is_err() {
            // Full: flush synchronously, then retry once.
            self.flush_nvram(ctx);
            let _ = nvram.append(ctx, rec);
        }
    }

    /// Applies logged records to disk and removes exactly those records.
    /// Runs in the background flusher and on demand when the device fills.
    pub fn flush_nvram(&self, ctx: &Ctx) {
        let nvram = match &self.nvram {
            Some(n) => n,
            None => return,
        };
        let records = nvram.snapshot();
        if records.is_empty() {
            return;
        }
        // The newest state per object is already in RAM; write each dirty
        // object's current version once.
        let mut dirty: Vec<u64> = records.iter().map(|r| r.tag).collect();
        dirty.sort_unstable();
        dirty.dedup();
        for object in dirty {
            if object == 0 {
                continue; // creates are flushed via their directory object
            }
            let dir = { self.shared.lock().cache.get(&object).cloned() };
            let live = { self.shared.lock().table.get(object).is_some() };
            match (dir, live) {
                (Some(dir), true) => self.store_dir_to_disk(ctx, object, &dir),
                _ => {
                    // Deleted since: persist the cleared entry + commit.
                    let waiter = { self.shared.lock().table.flush_begin(object) };
                    if let Some(w) = waiter {
                        w.recv(ctx);
                    }
                    let cb = { self.shared.lock().commit.clone() };
                    cb.write(&self.partition, ctx);
                }
            }
        }
        // Creates (tag 0) are covered by the object they created: replaying
        // them against the flushed table is a no-op because the object is
        // present; remove all processed records.
        let ids: std::collections::HashSet<u64> = records.iter().map(|r| r.uid).collect();
        let _ = nvram.annihilate(|r| ids.contains(&r.uid));
    }

    /// Replays NVRAM records into RAM state after a reboot (records stay
    /// in the device for the flusher). Returns the highest update seq.
    ///
    /// Creates logged with tag 0 re-run the deterministic allocator, so a
    /// replayed create lands on the same object number it had originally.
    pub fn replay_nvram(&self, ctx: &Ctx) -> u64 {
        let nvram = match &self.nvram {
            Some(n) => n,
            None => return 0,
        };
        let mut max_seq = 0;
        for rec in nvram.snapshot() {
            if let Some((useq, op)) = decode_nv_record(&rec.data) {
                // For ops against directories not yet cached, pull the
                // on-disk version first so the mutation applies cleanly.
                let needs = op_object(&op);
                if needs != 0 {
                    let _ = self.load_dir(ctx, needs);
                }
                let mut shared = self.shared.lock();
                let _ = self.plan(&mut shared, &op, Some(useq));
                max_seq = max_seq.max(useq);
            }
        }
        max_seq
    }

    // ------------------------------------------------------------------
    // Read path.
    // ------------------------------------------------------------------

    /// Serves a read against local state (initiator thread, paper Fig. 5
    /// read path). Assumes the caller has already drained buffered
    /// updates.
    pub fn serve_read(&self, ctx: &Ctx, req: &DirRequest) -> DirReply {
        match req {
            DirRequest::ListDir { cap } => {
                let object = {
                    let mut shared = self.shared.lock();
                    let object =
                        match validate_dir_cap(&shared, self.cfg.public_port, cap, Rights::NONE) {
                            Ok(o) => o,
                            Err(e) => return DirReply::Err(e),
                        };
                    if let Some(stub) = shared.stubs.get(&object) {
                        return DirReply::Moved {
                            object,
                            to_port: stub.to_port,
                            to_object: stub.to_object,
                        };
                    }
                    *shared.heat.entry(object).or_insert(0) += 1;
                    object
                };
                if !cap.rights.sees_any_column() {
                    return DirReply::Err(DirError::NoPermission);
                }
                let dir = match self.load_dir(ctx, object) {
                    Ok(d) => d,
                    Err(e) => return DirReply::Err(e),
                };
                let rows = dir
                    .rows
                    .iter()
                    .map(|row| {
                        let eff = dir.effective_rights(row, cap.rights);
                        let out_cap = self.restrict_for_holder(&row.cap, eff);
                        let visible_masks: Vec<Rights> = row
                            .col_rights
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| cap.rights.sees_column(*i))
                            .map(|(_, m)| *m)
                            .collect();
                        (row.name.clone(), out_cap, visible_masks)
                    })
                    .collect();
                DirReply::Listing {
                    columns: dir.columns.clone(),
                    rows,
                }
            }
            DirRequest::LookupSet { items } => {
                let mut out = Vec::with_capacity(items.len());
                for (cap, name) in items {
                    let object = {
                        let mut shared = self.shared.lock();
                        let object =
                            validate_dir_cap(&shared, self.cfg.public_port, cap, Rights::NONE);
                        if let Ok(o) = object {
                            // A relocated directory forwards the whole
                            // call: the client learns the hint, re-routes
                            // this item and retries.
                            if let Some(stub) = shared.stubs.get(&o) {
                                return DirReply::Moved {
                                    object: o,
                                    to_port: stub.to_port,
                                    to_object: stub.to_object,
                                };
                            }
                            *shared.heat.entry(o).or_insert(0) += 1;
                        }
                        object
                    };
                    let resolved = match object {
                        Ok(object) if cap.rights.sees_any_column() => {
                            match self.load_dir(ctx, object) {
                                Ok(dir) => dir.find(name).and_then(|row| {
                                    let eff = dir.effective_rights(row, cap.rights);
                                    if eff == Rights::NONE {
                                        None
                                    } else {
                                        Some(self.restrict_for_holder(&row.cap, eff))
                                    }
                                }),
                                Err(_) => None,
                            }
                        }
                        _ => None,
                    };
                    out.push(resolved);
                }
                DirReply::Caps(out)
            }
            DirRequest::ExportDir { cap } => {
                // Migration's copy source: full contents plus the raw
                // check. Owner-only — the owner capability's check field
                // already *is* the raw check, so nothing new is leaked.
                let (object, check) = {
                    let shared = self.shared.lock();
                    let object =
                        match validate_dir_cap(&shared, self.cfg.public_port, cap, Rights::ALL) {
                            Ok(o) => o,
                            Err(e) => return DirReply::Err(e),
                        };
                    if let Some(stub) = shared.stubs.get(&object) {
                        return DirReply::Moved {
                            object,
                            to_port: stub.to_port,
                            to_object: stub.to_object,
                        };
                    }
                    let entry = shared.table.get(object).expect("validated above");
                    (object, entry.check)
                };
                let dir = match self.load_dir(ctx, object) {
                    Ok(d) => d,
                    Err(e) => return DirReply::Err(e),
                };
                DirReply::Export {
                    check,
                    seqno: dir.seqno,
                    columns: dir.columns.clone(),
                    rows: dir
                        .rows
                        .iter()
                        .map(|r| (r.name.clone(), r.cap, r.col_rights.clone()))
                        .collect(),
                }
            }
            _ => DirReply::Err(DirError::Malformed),
        }
    }

    /// Restricts a stored capability to the holder's effective rights.
    /// Own-service capabilities are re-issued with a correct check field;
    /// foreign capabilities are returned as stored (only their service
    /// could recompute the check).
    fn restrict_for_holder(&self, stored: &Capability, eff: Rights) -> Capability {
        let shared = self.shared.lock();
        restrict_with(&shared, self.cfg.public_port, stored, eff)
    }

    /// Whether `owner`'s registered lease on the directory `cap` names is
    /// still worth serving a renewal off: live, not relocated, and with at
    /// least half the requested TTL remaining (a nearly-expired successor
    /// would only buy the client an immediate refetch, so it takes the
    /// full grant round instead). The cheap pre-check of the piggybacked
    /// renewal fast path — the caller runs the read barrier before
    /// actually serving.
    pub fn has_renewable_lease(
        &self,
        ctx: &Ctx,
        cap: &Capability,
        owner: u64,
        ttl_us: u64,
    ) -> bool {
        let shared = self.shared.lock();
        let object = match validate_dir_cap(&shared, self.cfg.public_port, cap, Rights::NONE) {
            Ok(o) => o,
            Err(_) => return false,
        };
        if !cap.rights.sees_any_column() || shared.stubs.contains_key(&object) {
            return false;
        }
        let now_us = ctx.now().as_nanos() / 1_000;
        let min_left = ttl_us.max(1).min(self.max_lease_us) / 2;
        shared.rleases.get(&object).is_some_and(|ls| {
            ls.iter()
                .any(|l| l.owner == owner && l.deadline_us > now_us + min_left)
        })
    }

    /// The piggybacked-renewal fast path of `FetchDir`: the holder still
    /// has a live registered lease on the directory (the write that
    /// revoked its previous lease reinstated a successor under the
    /// grant's renewal budget), so the snapshot is served off the read
    /// path under that lease's deadline — no group round, no new grant.
    /// The caller has already drained the read barrier, so the local
    /// state is at least as new as any acknowledged write. Returns `None`
    /// when the lease vanished since the pre-check (expired, relocated,
    /// revoked without budget); the caller falls back to the full
    /// `GrantRead` round.
    pub fn serve_renewed_fetch(
        &self,
        ctx: &Ctx,
        cap: &Capability,
        owner: u64,
        ttl_us: u64,
    ) -> Option<DirReply> {
        let (object, deadline_us) = {
            let mut shared = self.shared.lock();
            let object = validate_dir_cap(&shared, self.cfg.public_port, cap, Rights::NONE).ok()?;
            if !cap.rights.sees_any_column() || shared.stubs.contains_key(&object) {
                return None;
            }
            let now_us = ctx.now().as_nanos() / 1_000;
            let min_left = ttl_us.max(1).min(self.max_lease_us) / 2;
            let deadline_us = shared
                .rleases
                .get(&object)?
                .iter()
                .filter(|l| l.owner == owner && l.deadline_us > now_us + min_left)
                .map(|l| l.deadline_us)
                .max()?;
            *shared.heat.entry(object).or_insert(0) += 1;
            (object, deadline_us)
        };
        let dir = self.load_dir(ctx, object).ok()?;
        // Identical restriction to the `GrantRead` apply path: rows the
        // holder has no effective rights over are omitted.
        let rows = dir
            .rows
            .iter()
            .filter_map(|row| {
                let eff = dir.effective_rights(row, cap.rights);
                if eff == Rights::NONE {
                    return None;
                }
                let out_cap = self.restrict_for_holder(&row.cap, eff);
                let visible_masks: Vec<Rights> = row
                    .col_rights
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| cap.rights.sees_column(*i))
                    .map(|(_, m)| *m)
                    .collect();
                Some((row.name.clone(), out_cap, visible_masks))
            })
            .collect();
        Some(DirReply::Snapshot {
            seqno: dir.seqno,
            deadline_us,
            renewed: true,
            columns: dir.columns.clone(),
            rows,
        })
    }

    /// Initiator-side validation and translation of a client write into
    /// the replicated op (paper: the check field for a create is chosen
    /// here).
    pub fn prepare_write(&self, ctx: &Ctx, req: &DirRequest) -> Result<DirOp, DirError> {
        let shared = self.shared.lock();
        let port = self.cfg.public_port;
        match req {
            DirRequest::CreateDir { columns } => {
                if !(1..=4).contains(&columns.len()) {
                    return Err(DirError::Malformed);
                }
                let check = ctx.with_rng(|r| r.next_u64()) | 1;
                Ok(DirOp::Create {
                    columns: columns.clone(),
                    check,
                })
            }
            DirRequest::DeleteDir { cap } => {
                let object = validate_dir_cap(&shared, port, cap, Rights::ADMIN)?;
                Ok(DirOp::Delete { object })
            }
            DirRequest::AppendRow {
                dir,
                name,
                cap,
                col_rights,
            } => {
                let object = validate_dir_cap(&shared, port, dir, Rights::MODIFY)?;
                Ok(DirOp::Append {
                    object,
                    name: name.clone(),
                    cap: *cap,
                    col_rights: col_rights.clone(),
                })
            }
            DirRequest::ChmodRow {
                dir,
                name,
                col_rights,
            } => {
                let object = validate_dir_cap(&shared, port, dir, Rights::MODIFY)?;
                Ok(DirOp::Chmod {
                    object,
                    name: name.clone(),
                    col_rights: col_rights.clone(),
                })
            }
            DirRequest::DeleteRow { dir, name } => {
                let object = validate_dir_cap(&shared, port, dir, Rights::MODIFY)?;
                Ok(DirOp::DeleteRow {
                    object,
                    name: name.clone(),
                })
            }
            DirRequest::ReplaceSet { items } => {
                let mut out = Vec::with_capacity(items.len());
                for (dir, name, cap) in items {
                    let object = validate_dir_cap(&shared, port, dir, Rights::MODIFY)?;
                    out.push((object, name.clone(), *cap));
                }
                Ok(DirOp::ReplaceSet { items: out })
            }
            DirRequest::CreateKeyed { columns, key } => {
                if !(1..=4).contains(&columns.len()) {
                    return Err(DirError::Malformed);
                }
                // The check only takes effect the first time the key is
                // seen; replays return the original capability.
                let check = ctx.with_rng(|r| r.next_u64()) | 1;
                Ok(DirOp::CreateKeyed {
                    columns: columns.clone(),
                    check,
                    key: *key,
                })
            }
            DirRequest::AppendLink {
                dir,
                name,
                cap,
                col_rights,
            } => {
                let object = validate_dir_cap(&shared, port, dir, Rights::MODIFY)?;
                Ok(DirOp::AppendLink {
                    object,
                    name: name.clone(),
                    cap: *cap,
                    col_rights: col_rights.clone(),
                })
            }
            DirRequest::Unlink { dir, name } => {
                let object = validate_dir_cap(&shared, port, dir, Rights::MODIFY)?;
                Ok(DirOp::Unlink {
                    object,
                    name: name.clone(),
                })
            }
            DirRequest::InstallDir {
                columns,
                rows,
                check,
                key,
            } => {
                if !(1..=4).contains(&columns.len())
                    || rows.iter().any(|(_, _, m)| m.len() != columns.len())
                {
                    return Err(DirError::Malformed);
                }
                Ok(DirOp::InstallDir {
                    columns: columns.clone(),
                    rows: rows.clone(),
                    check: *check,
                    key: *key,
                })
            }
            DirRequest::InstallStub {
                dir,
                to_port,
                to_object,
                expected_seqno,
            } => {
                let object = validate_dir_cap(&shared, port, dir, Rights::ALL)?;
                Ok(DirOp::InstallStub {
                    object,
                    to_port: *to_port,
                    to_object: *to_object,
                    expected_seqno: *expected_seqno,
                })
            }
            DirRequest::FetchDir {
                cap,
                owner,
                cb_port,
                ttl_us,
            } => {
                let _ = validate_dir_cap(&shared, port, cap, Rights::NONE)?;
                if !cap.rights.sees_any_column() {
                    return Err(DirError::NoPermission);
                }
                // The grant's clock is fixed here, by the initiator, and
                // carried in the op: simulated time is global, so every
                // replica applies the same deadline — apply itself never
                // reads a clock.
                let now_us = ctx.now().as_nanos() / 1_000;
                let ttl = (*ttl_us).max(1).min(self.max_lease_us);
                Ok(DirOp::GrantRead {
                    cap: *cap,
                    owner: *owner,
                    cb_port: *cb_port,
                    now_us,
                    deadline_us: now_us + ttl,
                })
            }
            DirRequest::ListDir { .. }
            | DirRequest::LookupSet { .. }
            | DirRequest::ExportDir { .. } => Err(DirError::Malformed),
        }
    }
}

//! Directories: tables of (name, capability) rows with protection columns.
//!
//! Paper §2: a directory is a table with one column per protection domain
//! (owner / group / others …). A row holds a name, a capability, and a
//! rights mask per column; a holder of a directory capability for columns
//! `M` sees, for each row, the capability restricted to the union of the
//! masks in the visible columns.

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::Payload;

use crate::capability::Capability;
use crate::rights::Rights;

/// One row of a directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// The name (ASCII in the paper; any UTF-8 here).
    pub name: String,
    /// The stored capability (as registered, usually owner rights).
    pub cap: Capability,
    /// Rights mask per column (same length as the directory's columns).
    pub col_rights: Vec<Rights>,
}

/// A directory: protection columns plus rows, with the per-directory
/// sequence number of the last change (paper §3: "including the sequence
/// number of the last change").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directory {
    /// Protection-domain column names (1–4 of them).
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<Row>,
    /// Sequence number of the last update that produced this version.
    pub seqno: u64,
}

impl Directory {
    /// Creates an empty directory with the given protection columns.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty or has more than 4 entries.
    pub fn new(columns: Vec<String>) -> Directory {
        assert!(
            !columns.is_empty() && columns.len() <= 4,
            "1..=4 protection columns"
        );
        Directory {
            columns,
            rows: Vec::new(),
            seqno: 0,
        }
    }

    /// Looks up a row by name.
    pub fn find(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// The union of the rights masks of `row` over the columns visible to
    /// `holder_rights`.
    pub fn effective_rights(&self, row: &Row, holder_rights: Rights) -> Rights {
        let mut eff = Rights::NONE;
        for (i, mask) in row.col_rights.iter().enumerate() {
            if holder_rights.sees_column(i) {
                eff = eff | *mask;
            }
        }
        eff
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// [`DirStructureError::DuplicateName`] if the name exists;
    /// [`DirStructureError::ColumnMismatch`] if the mask count differs
    /// from the column count.
    pub fn append_row(
        &mut self,
        name: String,
        cap: Capability,
        col_rights: Vec<Rights>,
    ) -> Result<(), DirStructureError> {
        if self.find(&name).is_some() {
            return Err(DirStructureError::DuplicateName);
        }
        if col_rights.len() != self.columns.len() {
            return Err(DirStructureError::ColumnMismatch);
        }
        self.rows.push(Row {
            name,
            cap,
            col_rights,
        });
        Ok(())
    }

    /// Removes a row by name.
    ///
    /// # Errors
    ///
    /// [`DirStructureError::NoSuchName`] if absent.
    pub fn delete_row(&mut self, name: &str) -> Result<(), DirStructureError> {
        let before = self.rows.len();
        self.rows.retain(|r| r.name != name);
        if self.rows.len() == before {
            Err(DirStructureError::NoSuchName)
        } else {
            Ok(())
        }
    }

    /// Replaces a row's column rights masks.
    ///
    /// # Errors
    ///
    /// [`DirStructureError::NoSuchName`] /
    /// [`DirStructureError::ColumnMismatch`].
    pub fn chmod_row(
        &mut self,
        name: &str,
        col_rights: Vec<Rights>,
    ) -> Result<(), DirStructureError> {
        if col_rights.len() != self.columns.len() {
            return Err(DirStructureError::ColumnMismatch);
        }
        match self.rows.iter_mut().find(|r| r.name == name) {
            Some(r) => {
                r.col_rights = col_rights;
                Ok(())
            }
            None => Err(DirStructureError::NoSuchName),
        }
    }

    /// Replaces the capability stored in a row.
    ///
    /// # Errors
    ///
    /// [`DirStructureError::NoSuchName`] if absent.
    pub fn replace_cap(&mut self, name: &str, cap: Capability) -> Result<(), DirStructureError> {
        match self.rows.iter_mut().find(|r| r.name == name) {
            Some(r) => {
                r.cap = cap;
                Ok(())
            }
            None => Err(DirStructureError::NoSuchName),
        }
    }

    /// Serializes for storage in a Bullet file, sized up front so even a
    /// large directory marshals in a single allocation.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::with_capacity(
            8 + 1
                + self.columns.iter().map(|c| 4 + c.len()).sum::<usize>()
                + 4
                + self
                    .rows
                    .iter()
                    .map(|r| 4 + r.name.len() + (8 + 8 + 1 + 8) + 1 + r.col_rights.len())
                    .sum::<usize>(),
        );
        w.u64(self.seqno);
        w.u8(self.columns.len() as u8);
        for c in &self.columns {
            w.string(c);
        }
        w.u32(self.rows.len() as u32);
        for row in &self.rows {
            w.string(&row.name);
            row.cap.write(&mut w);
            w.u8(row.col_rights.len() as u8);
            for m in &row.col_rights {
                w.u8(m.0);
            }
        }
        w.finish_payload()
    }

    /// Deserializes from a Bullet file.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed bytes.
    pub fn decode(buf: &[u8]) -> Result<Directory, DecodeError> {
        let mut r = WireReader::new(buf);
        let seqno = r.u64("dir seqno")?;
        let ncols = r.u8("dir ncols")? as usize;
        if !(1..=4).contains(&ncols) {
            return Err(DecodeError::new("dir ncols"));
        }
        let mut columns = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            columns.push(r.string("dir column")?);
        }
        let nrows = r.u32("dir nrows")? as usize;
        if nrows > 1_000_000 {
            return Err(DecodeError::new("dir nrows"));
        }
        let mut rows = Vec::with_capacity(nrows);
        for _ in 0..nrows {
            let name = r.string("row name")?;
            let cap = Capability::read(&mut r)?;
            let nmask = r.u8("row nmask")? as usize;
            if nmask != ncols {
                return Err(DecodeError::new("row nmask"));
            }
            let mut col_rights = Vec::with_capacity(nmask);
            for _ in 0..nmask {
                col_rights.push(Rights(r.u8("row mask")?));
            }
            rows.push(Row {
                name,
                cap,
                col_rights,
            });
        }
        r.expect_end("dir trailing")?;
        Ok(Directory {
            columns,
            rows,
            seqno,
        })
    }
}

/// Structural errors on directory mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirStructureError {
    /// A row with that name already exists.
    DuplicateName,
    /// No row with that name.
    NoSuchName,
    /// Rights-mask count does not match the column count.
    ColumnMismatch,
}

impl std::fmt::Display for DirStructureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DirStructureError::DuplicateName => "name already present",
            DirStructureError::NoSuchName => "no such name",
            DirStructureError::ColumnMismatch => "rights mask count differs from column count",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DirStructureError {}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_flip::Port;
    use amoeba_testkit::{check, Gen};

    fn cap(object: u64) -> Capability {
        Capability::owner(Port::from_name("x"), object, object * 77)
    }

    fn two_col() -> Directory {
        Directory::new(vec!["owner".into(), "other".into()])
    }

    #[test]
    fn append_find_delete() {
        let mut d = two_col();
        d.append_row("a".into(), cap(1), vec![Rights::ALL, Rights::column(0)])
            .unwrap();
        assert!(d.find("a").is_some());
        assert_eq!(
            d.append_row("a".into(), cap(2), vec![Rights::ALL, Rights::NONE]),
            Err(DirStructureError::DuplicateName)
        );
        d.delete_row("a").unwrap();
        assert_eq!(d.delete_row("a"), Err(DirStructureError::NoSuchName));
    }

    #[test]
    fn column_mismatch_rejected() {
        let mut d = two_col();
        assert_eq!(
            d.append_row("a".into(), cap(1), vec![Rights::ALL]),
            Err(DirStructureError::ColumnMismatch)
        );
        d.append_row("a".into(), cap(1), vec![Rights::ALL, Rights::NONE])
            .unwrap();
        assert_eq!(
            d.chmod_row("a", vec![Rights::NONE]),
            Err(DirStructureError::ColumnMismatch)
        );
    }

    #[test]
    fn effective_rights_unions_visible_columns() {
        let mut d = two_col();
        d.append_row("a".into(), cap(1), vec![Rights::ALL, Rights::column(0)])
            .unwrap();
        let row = d.find("a").unwrap();
        // Holder sees only column 1 ("other"): gets that mask.
        assert_eq!(
            d.effective_rights(row, Rights::column(1)),
            Rights::column(0)
        );
        // Holder sees both columns: union.
        assert_eq!(d.effective_rights(row, Rights::columns(2)), Rights::ALL);
        // Holder sees no columns: nothing.
        assert_eq!(d.effective_rights(row, Rights::MODIFY), Rights::NONE);
    }

    #[test]
    fn chmod_and_replace() {
        let mut d = two_col();
        d.append_row("a".into(), cap(1), vec![Rights::ALL, Rights::NONE])
            .unwrap();
        d.chmod_row("a", vec![Rights::NONE, Rights::ALL]).unwrap();
        assert_eq!(d.find("a").unwrap().col_rights[1], Rights::ALL);
        d.replace_cap("a", cap(9)).unwrap();
        assert_eq!(d.find("a").unwrap().cap.object, 9);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut d = two_col();
        d.seqno = 42;
        d.append_row("hello".into(), cap(1), vec![Rights::ALL, Rights::column(0)])
            .unwrap();
        d.append_row("world".into(), cap(2), vec![Rights::MODIFY, Rights::NONE])
            .unwrap();
        let bytes = d.encode();
        assert_eq!(Directory::decode(&bytes).unwrap(), d);
    }

    #[test]
    #[should_panic(expected = "protection columns")]
    fn zero_columns_panics() {
        let _ = Directory::new(vec![]);
    }

    #[test]
    fn prop_encode_decode() {
        check("directory encode/decode", 128, |g: &mut Gen| {
            let mut d = Directory::new(vec!["owner".into(), "group".into(), "other".into()]);
            d.seqno = g.u64();
            let names = g.below(20);
            for i in 0..names {
                // Duplicates are rejected; only insert fresh names.
                let n = g.string(12);
                let _ = d.append_row(
                    format!("{n}{i}"),
                    cap(i as u64),
                    vec![Rights::ALL, Rights::column(0), Rights::NONE],
                );
            }
            let bytes = d.encode();
            assert_eq!(Directory::decode(&bytes).unwrap(), d);
        });
    }

    #[test]
    fn prop_decode_never_panics() {
        check("directory decode never panics", 256, |g: &mut Gen| {
            let _ = Directory::decode(&g.bytes(256));
        });
    }
}

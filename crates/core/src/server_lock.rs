//! A replicated lock/registry service — the second consumer of the
//! [`amoeba_rsm`] API, proving the claim the crate makes: implement a
//! [`StateMachine`], get a fault-tolerant service.
//!
//! The whole service is this file: a wire format, a ~hundred-line
//! deterministic state machine over a `HashMap`, and an RPC front end
//! that calls [`Replica::submit`] / [`Replica::read_barrier`]. There
//! is **zero group-protocol code** here — ordering, majority rule,
//! apply batching, reset and recovery (including state transfer to a
//! rebooted replica) all come from the generic driver. The machine is
//! fully volatile: it skips every durable-bookkeeping hook and relies
//! on its peers' snapshots after a reboot, exactly the trait's
//! defaults.

use std::collections::HashMap;
use std::sync::Arc;

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::{Payload, Port};
use amoeba_group::GroupPeer;
use amoeba_rpc::{RpcClient, RpcError, RpcNode, RpcServer};
use amoeba_rsm::{RecoveryInfo, Replica, ReplicaDeps, RsmConfig, RsmError, StateMachine};
use amoeba_sim::{Ctx, NodeId, Spawn};
use parking_lot::Mutex;

/// The public FLIP port of the lock service.
pub const LOCK_PORT: Port = Port::from_raw(0x004C_4F43); // "LOC"

/// Client-visible operations of the lock/registry service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockRequest {
    /// Acquire `name` for `owner` (fails if held by someone else).
    Acquire {
        /// Lock name.
        name: String,
        /// Owner token (client-chosen).
        owner: u64,
    },
    /// Release `name` held by `owner`.
    Release {
        /// Lock name.
        name: String,
        /// Owner token.
        owner: u64,
    },
    /// Read who holds `name` (a local read behind the read barrier).
    Query {
        /// Lock name.
        name: String,
    },
}

/// Replies of the lock/registry service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockReply {
    /// The operation succeeded.
    Ok,
    /// The lock is held by this owner.
    Held(u64),
    /// The lock is free.
    Free,
    /// Acquire refused: held by this other owner.
    Busy(u64),
    /// Release refused: not held by the caller.
    NotHeld,
    /// Malformed request.
    Malformed,
    /// The replica is recovering or without a majority.
    NoMajority,
}

const L_ACQUIRE: u8 = 1;
const L_RELEASE: u8 = 2;
const L_QUERY: u8 = 3;

const R_OK: u8 = 1;
const R_HELD: u8 = 2;
const R_FREE: u8 = 3;
const R_BUSY: u8 = 4;
const R_NOT_HELD: u8 = 5;
const R_MALFORMED: u8 = 6;
const R_NO_MAJORITY: u8 = 7;

impl LockRequest {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::new();
        match self {
            LockRequest::Acquire { name, owner } => {
                w.u8(L_ACQUIRE).string(name).u64(*owner);
            }
            LockRequest::Release { name, owner } => {
                w.u8(L_RELEASE).string(name).u64(*owner);
            }
            LockRequest::Query { name } => {
                w.u8(L_QUERY).string(name);
            }
        }
        w.finish_payload()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<LockRequest, DecodeError> {
        let mut r = WireReader::new(buf);
        let m = match r.u8("lock req tag")? {
            L_ACQUIRE => LockRequest::Acquire {
                name: r.string("lock name")?,
                owner: r.u64("lock owner")?,
            },
            L_RELEASE => LockRequest::Release {
                name: r.string("lock name")?,
                owner: r.u64("lock owner")?,
            },
            L_QUERY => LockRequest::Query {
                name: r.string("lock name")?,
            },
            _ => return Err(DecodeError::new("lock req tag")),
        };
        r.expect_end("lock req trailing")?;
        Ok(m)
    }
}

impl LockReply {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::new();
        match self {
            LockReply::Ok => {
                w.u8(R_OK);
            }
            LockReply::Held(o) => {
                w.u8(R_HELD).u64(*o);
            }
            LockReply::Free => {
                w.u8(R_FREE);
            }
            LockReply::Busy(o) => {
                w.u8(R_BUSY).u64(*o);
            }
            LockReply::NotHeld => {
                w.u8(R_NOT_HELD);
            }
            LockReply::Malformed => {
                w.u8(R_MALFORMED);
            }
            LockReply::NoMajority => {
                w.u8(R_NO_MAJORITY);
            }
        }
        w.finish_payload()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<LockReply, DecodeError> {
        let mut r = WireReader::new(buf);
        let m = match r.u8("lock rep tag")? {
            R_OK => LockReply::Ok,
            R_HELD => LockReply::Held(r.u64("holder")?),
            R_FREE => LockReply::Free,
            R_BUSY => LockReply::Busy(r.u64("holder")?),
            R_NOT_HELD => LockReply::NotHeld,
            R_MALFORMED => LockReply::Malformed,
            R_NO_MAJORITY => LockReply::NoMajority,
            _ => return Err(DecodeError::new("lock rep tag")),
        };
        r.expect_end("lock rep trailing")?;
        Ok(m)
    }
}

// ---------------------------------------------------------------------
// The state machine.
// ---------------------------------------------------------------------

struct LockState {
    /// lock name → owner token.
    held: HashMap<String, u64>,
    /// Logical version (one per applied op), for recovery's source
    /// election.
    update_seq: u64,
    /// Applied cursor, kept in the same critical section as the state.
    applied_seq: u64,
}

/// The replicated lock table: a volatile, deterministic
/// [`StateMachine`]. Durability comes entirely from replication — a
/// rebooted replica recovers the table from a peer's snapshot.
pub struct LockStateMachine {
    n: usize,
    state: Mutex<LockState>,
}

impl std::fmt::Debug for LockStateMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LockStateMachine")
    }
}

impl LockStateMachine {
    /// An empty lock table for an `n`-replica service.
    pub fn new(n: usize) -> LockStateMachine {
        LockStateMachine {
            n,
            state: Mutex::new(LockState {
                held: HashMap::new(),
                update_seq: 0,
                applied_seq: 0,
            }),
        }
    }

    /// Who currently holds `name` (serve only behind a read barrier).
    pub fn holder(&self, name: &str) -> Option<u64> {
        self.state.lock().held.get(name).copied()
    }

    /// Number of held locks (diagnostics/tests).
    pub fn held_count(&self) -> usize {
        self.state.lock().held.len()
    }
}

impl StateMachine for LockStateMachine {
    fn apply(&self, _ctx: &Ctx, seq: u64, op: &Payload) -> Payload {
        let mut st = self.state.lock();
        st.applied_seq = st.applied_seq.max(seq);
        st.update_seq += 1;
        let reply = match LockRequest::decode(op) {
            Ok(LockRequest::Acquire { name, owner }) => match st.held.get(&name) {
                Some(holder) if *holder != owner => LockReply::Busy(*holder),
                _ => {
                    st.held.insert(name, owner);
                    LockReply::Ok
                }
            },
            Ok(LockRequest::Release { name, owner }) => match st.held.get(&name) {
                Some(holder) if *holder == owner => {
                    st.held.remove(&name);
                    LockReply::Ok
                }
                _ => LockReply::NotHeld,
            },
            _ => LockReply::Malformed, // queries are never replicated
        };
        reply.encode()
    }

    fn recovery_info(&self) -> RecoveryInfo {
        RecoveryInfo {
            update_seq: self.state.lock().update_seq,
            // Volatile state: we cannot know who crashed before us.
            mourned: vec![false; self.n],
        }
    }

    fn snapshot(&self, _ctx: &Ctx) -> (u64, Payload) {
        let st = self.state.lock();
        let mut names: Vec<&String> = st.held.keys().collect();
        names.sort_unstable(); // deterministic encoding
        let mut w = WireWriter::new();
        w.u64(st.update_seq).u32(names.len() as u32);
        for name in names {
            w.string(name).u64(st.held[name]);
        }
        (st.applied_seq, w.finish_payload())
    }

    fn install(&self, _ctx: &Ctx, cursor: u64, snap: &Payload) -> bool {
        let mut r = WireReader::of(snap);
        let (update_seq, n) = match (r.u64("update seq"), r.u32("locks")) {
            (Ok(u), Ok(n)) if (n as usize) <= 1_000_000 => (u, n),
            _ => return false,
        };
        let mut held = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            match (r.string("lock name"), r.u64("lock owner")) {
                (Ok(name), Ok(owner)) => {
                    held.insert(name, owner);
                }
                _ => return false,
            }
        }
        let mut st = self.state.lock();
        st.held = held;
        st.update_seq = update_seq;
        st.applied_seq = cursor;
        true
    }

    fn align_cursor(&self, _ctx: &Ctx, cursor: u64) {
        // A new instance's order restarts: set absolutely.
        self.state.lock().applied_seq = cursor;
    }

    fn on_membership(&self, _ctx: &Ctx, seq: u64, _config: &[bool]) {
        if seq > 0 {
            let mut st = self.state.lock();
            st.applied_seq = st.applied_seq.max(seq);
        }
    }
}

// ---------------------------------------------------------------------
// Server wiring and client stub.
// ---------------------------------------------------------------------

/// Everything needed to start one lock-service replica. Note what is
/// *not* here compared to the directory server: no disk, no Bullet, no
/// NVRAM — replication is the only durability.
pub struct LockServerDeps {
    /// Total replicas / this replica's index.
    pub n: usize,
    /// This replica's index in `0..n`.
    pub me: usize,
    /// The machine this replica runs on.
    pub sim_node: NodeId,
    /// RPC kernel of the machine (shared with other services).
    pub rpc: RpcNode,
    /// Group kernel of the machine (shared with other services; the
    /// lock group forms on its own port).
    pub peer: GroupPeer,
    /// Request threads to spawn.
    pub threads: usize,
}

impl std::fmt::Debug for LockServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LockServerDeps(replica {})", self.me)
    }
}

/// Handle to one running lock-service replica.
#[derive(Clone, Debug)]
pub struct LockServer {
    replica: Replica<LockStateMachine>,
}

impl LockServer {
    /// Whether the replica is serving.
    pub fn is_normal(&self) -> bool {
        self.replica.is_normal()
    }

    /// The replica's lock table (diagnostics/tests).
    pub fn machine(&self) -> &Arc<LockStateMachine> {
        self.replica.machine()
    }
}

/// Starts one replica of the lock/registry service.
pub fn start_lock_server(spawner: &impl Spawn, deps: LockServerDeps) -> LockServer {
    let LockServerDeps {
        n,
        me,
        sim_node,
        rpc,
        peer,
        threads,
    } = deps;
    let sm = Arc::new(LockStateMachine::new(n));
    let mut cfg = RsmConfig::new("amoeba.lock", n, me);
    // A volatile machine mourns no one, so the strict last-set rule
    // would demand *every* replica be present after a majority loss.
    // The §3.2 improved rule — a stayed-up replica holding the highest
    // version vouches for the missing ones — is the only recovery
    // evidence a diskless service has, and it is sufficient: state
    // lives wherever the group last had a majority.
    cfg.improved_recovery = true;
    let replica = Replica::start(
        spawner,
        ReplicaDeps {
            cfg,
            sim_node,
            rpc: rpc.clone(),
            peer,
            sm,
        },
    );
    for t in 0..threads.max(1) {
        let srv = RpcServer::new(&rpc, LOCK_PORT);
        let replica = replica.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("lock{me}-srv{t}"),
            Box::new(move |ctx| loop {
                let incoming = srv.getreq(ctx);
                // Server-side span parented to the client's context; the
                // submit inherits it via the ambient context, so a traced
                // acquire shows client → lock server → sequencer →
                // replicas as one connected tree.
                let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
                let span = tele.begin_child("lock.srv", u64::from(srv.addr().0), incoming.trace);
                let prev = amoeba_telemetry::set_current_ctx(span);
                let reply = match LockRequest::decode(&incoming.data) {
                    Ok(LockRequest::Query { name }) => match replica.read_barrier(ctx) {
                        Ok(()) => match replica.machine().holder(&name) {
                            Some(owner) => LockReply::Held(owner),
                            None => LockReply::Free,
                        },
                        Err(_) => LockReply::NoMajority,
                    },
                    Ok(op) => {
                        match replica.submit_traced(
                            ctx,
                            op.encode(),
                            amoeba_telemetry::current_ctx(),
                        ) {
                            Ok(bytes) => LockReply::decode(&bytes).unwrap_or(LockReply::Malformed),
                            Err(RsmError::NotInService | RsmError::Aborted) => {
                                LockReply::NoMajority
                            }
                            Err(RsmError::ResultLost) => LockReply::Malformed,
                        }
                    }
                    Err(_) => LockReply::Malformed,
                };
                amoeba_telemetry::set_current_ctx(prev);
                tele.end(span);
                srv.putrep(&incoming, reply.encode());
            }),
        );
    }
    LockServer { replica }
}

/// Errors surfaced by [`LockClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockError {
    /// The lock is held by another owner.
    Busy(u64),
    /// Release of a lock the caller does not hold.
    NotHeld,
    /// The service has no majority (retry later).
    NoMajority,
    /// The service refused or mangled the request.
    Service,
    /// Transport failure.
    Rpc(RpcError),
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Busy(o) => write!(f, "lock held by owner {o}"),
            LockError::NotHeld => f.write_str("lock not held by caller"),
            LockError::NoMajority => f.write_str("lock service has no majority"),
            LockError::Service => f.write_str("lock service refused the request"),
            LockError::Rpc(e) => write!(f, "lock transport: {e}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Client stub for the lock/registry service.
#[derive(Clone, Debug)]
pub struct LockClient {
    rpc: RpcClient,
}

impl LockClient {
    /// Creates a stub talking to the service through `rpc`.
    pub fn new(rpc: RpcClient) -> LockClient {
        LockClient { rpc }
    }

    fn call(&self, ctx: &Ctx, req: LockRequest) -> Result<LockReply, LockError> {
        let bytes = self
            .rpc
            .trans(ctx, LOCK_PORT, req.encode())
            .map_err(LockError::Rpc)?;
        LockReply::decode(&bytes).map_err(|_| LockError::Service)
    }

    /// Wraps one public operation in a client span (root when the
    /// process has no ambient context) and a latency histogram — the
    /// same shape as `DirClient`'s per-op instrumentation.
    fn op<T>(
        &self,
        ctx: &Ctx,
        name: &'static str,
        f: impl FnOnce() -> Result<T, LockError>,
    ) -> Result<T, LockError> {
        let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
        if !tele.is_enabled() {
            return f();
        }
        let machine = u64::from(self.rpc.addr().0);
        let outer = amoeba_telemetry::current_ctx();
        let span = if outer.is_some() {
            tele.begin_child(name, machine, outer)
        } else {
            tele.begin_root(name, machine)
        };
        let prev = amoeba_telemetry::set_current_ctx(span);
        let start = ctx.now();
        let r = f();
        amoeba_telemetry::set_current_ctx(prev);
        tele.end(span);
        tele.observe_since(name, start);
        r
    }

    /// Acquires `name` for `owner`.
    ///
    /// # Errors
    ///
    /// [`LockError::Busy`] if held by another owner.
    pub fn acquire(&self, ctx: &Ctx, name: &str, owner: u64) -> Result<(), LockError> {
        self.op(ctx, "cli.lk.acquire", || {
            match self.call(
                ctx,
                LockRequest::Acquire {
                    name: name.to_owned(),
                    owner,
                },
            )? {
                LockReply::Ok => Ok(()),
                LockReply::Busy(o) => Err(LockError::Busy(o)),
                LockReply::NoMajority => Err(LockError::NoMajority),
                _ => Err(LockError::Service),
            }
        })
    }

    /// Releases `name` held by `owner`.
    ///
    /// # Errors
    ///
    /// [`LockError::NotHeld`] if the caller does not hold it.
    pub fn release(&self, ctx: &Ctx, name: &str, owner: u64) -> Result<(), LockError> {
        self.op(ctx, "cli.lk.release", || {
            match self.call(
                ctx,
                LockRequest::Release {
                    name: name.to_owned(),
                    owner,
                },
            )? {
                LockReply::Ok => Ok(()),
                LockReply::NotHeld => Err(LockError::NotHeld),
                LockReply::NoMajority => Err(LockError::NoMajority),
                _ => Err(LockError::Service),
            }
        })
    }

    /// Who holds `name`, if anyone.
    ///
    /// # Errors
    ///
    /// [`LockError::Service`] / [`LockError::Rpc`] on failure.
    pub fn query(&self, ctx: &Ctx, name: &str) -> Result<Option<u64>, LockError> {
        self.op(ctx, "cli.lk.query", || {
            match self.call(
                ctx,
                LockRequest::Query {
                    name: name.to_owned(),
                },
            )? {
                LockReply::Held(o) => Ok(Some(o)),
                LockReply::Free => Ok(None),
                LockReply::NoMajority => Err(LockError::NoMajority),
                _ => Err(LockError::Service),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_replies_round_trip() {
        let reqs = [
            LockRequest::Acquire {
                name: "a/b".into(),
                owner: 9,
            },
            LockRequest::Release {
                name: "x".into(),
                owner: 1,
            },
            LockRequest::Query { name: "q".into() },
        ];
        for m in reqs {
            assert_eq!(LockRequest::decode(&m.encode()).unwrap(), m);
        }
        let reps = [
            LockReply::Ok,
            LockReply::Held(5),
            LockReply::Free,
            LockReply::Busy(7),
            LockReply::NotHeld,
            LockReply::Malformed,
            LockReply::NoMajority,
        ];
        for m in reps {
            assert_eq!(LockReply::decode(&m.encode()).unwrap(), m);
        }
        assert!(LockRequest::decode(&[99]).is_err());
        assert!(LockReply::decode(&[]).is_err());
    }
}

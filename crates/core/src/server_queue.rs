//! A replicated FIFO queue service — the fourth consumer of the
//! [`amoeba_rsm`] API, and the one that exercises *several groups per
//! machine*: in a sharded deployment its replicas share their machines
//! (and their [`GroupPeer`] kernels) with the directory shards, forming
//! yet another independent group on its own port.
//!
//! Like the lock service, the whole service is this file: a wire
//! format, a deterministic state machine over a map of `VecDeque`s, and
//! an RPC front end calling [`Replica::submit`] /
//! [`Replica::read_barrier`]. There is **zero group-protocol code**
//! here. The machine is fully volatile — a rebooted replica recovers
//! purely from a peer's snapshot — so, like the lock service, it uses
//! the §3.2 improved recovery rule (a volatile machine mourns no one).
//!
//! Semantics: per-queue FIFO order is the group's total order —
//! concurrent enqueuers from different machines are ordered by the
//! sequencer, and every replica observes the same dequeue order
//! (exactly-once handout per element while the service keeps a
//! majority).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use amoeba_flip::wire::{DecodeError, WireReader, WireWriter};
use amoeba_flip::{Payload, Port};
use amoeba_group::GroupPeer;
use amoeba_rpc::{RpcClient, RpcError, RpcNode, RpcServer};
use amoeba_rsm::{RecoveryInfo, Replica, ReplicaDeps, RsmConfig, RsmError, StateMachine};
use amoeba_sim::{Ctx, NodeId, Spawn};
use parking_lot::Mutex;

/// The public FLIP port of the queue service.
pub const QUEUE_PORT: Port = Port::from_raw(0x0051_5545); // "QUE"

/// Client-visible operations of the queue service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueRequest {
    /// Append `item` to the tail of `queue` (created on first use).
    Enqueue {
        /// Queue name.
        queue: String,
        /// Opaque element bytes.
        item: Vec<u8>,
    },
    /// Remove and return the head of `queue`.
    Dequeue {
        /// Queue name.
        queue: String,
    },
    /// Read the head of `queue` without removing it (a local read
    /// behind the read barrier).
    Peek {
        /// Queue name.
        queue: String,
    },
}

/// Replies of the queue service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueReply {
    /// Enqueue done.
    Ok,
    /// A dequeued or peeked element.
    Item(Vec<u8>),
    /// The queue is empty (or was never created).
    Empty,
    /// Malformed request.
    Malformed,
    /// The replica is recovering or without a majority.
    NoMajority,
}

const Q_ENQUEUE: u8 = 1;
const Q_DEQUEUE: u8 = 2;
const Q_PEEK: u8 = 3;

const QR_OK: u8 = 1;
const QR_ITEM: u8 = 2;
const QR_EMPTY: u8 = 3;
const QR_MALFORMED: u8 = 4;
const QR_NO_MAJORITY: u8 = 5;

impl QueueRequest {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::new();
        match self {
            QueueRequest::Enqueue { queue, item } => {
                w.u8(Q_ENQUEUE).string(queue).bytes(item);
            }
            QueueRequest::Dequeue { queue } => {
                w.u8(Q_DEQUEUE).string(queue);
            }
            QueueRequest::Peek { queue } => {
                w.u8(Q_PEEK).string(queue);
            }
        }
        w.finish_payload()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<QueueRequest, DecodeError> {
        let mut r = WireReader::new(buf);
        let m = match r.u8("queue req tag")? {
            Q_ENQUEUE => QueueRequest::Enqueue {
                queue: r.string("queue name")?,
                item: r.bytes("queue item")?.to_vec(),
            },
            Q_DEQUEUE => QueueRequest::Dequeue {
                queue: r.string("queue name")?,
            },
            Q_PEEK => QueueRequest::Peek {
                queue: r.string("queue name")?,
            },
            _ => return Err(DecodeError::new("queue req tag")),
        };
        r.expect_end("queue req trailing")?;
        Ok(m)
    }
}

impl QueueReply {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Payload {
        let mut w = WireWriter::new();
        match self {
            QueueReply::Ok => {
                w.u8(QR_OK);
            }
            QueueReply::Item(bytes) => {
                w.u8(QR_ITEM).bytes(bytes);
            }
            QueueReply::Empty => {
                w.u8(QR_EMPTY);
            }
            QueueReply::Malformed => {
                w.u8(QR_MALFORMED);
            }
            QueueReply::NoMajority => {
                w.u8(QR_NO_MAJORITY);
            }
        }
        w.finish_payload()
    }

    /// Decodes from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for malformed input.
    pub fn decode(buf: &[u8]) -> Result<QueueReply, DecodeError> {
        let mut r = WireReader::new(buf);
        let m = match r.u8("queue rep tag")? {
            QR_OK => QueueReply::Ok,
            QR_ITEM => QueueReply::Item(r.bytes("queue item")?.to_vec()),
            QR_EMPTY => QueueReply::Empty,
            QR_MALFORMED => QueueReply::Malformed,
            QR_NO_MAJORITY => QueueReply::NoMajority,
            _ => return Err(DecodeError::new("queue rep tag")),
        };
        r.expect_end("queue rep trailing")?;
        Ok(m)
    }
}

// ---------------------------------------------------------------------
// The state machine.
// ---------------------------------------------------------------------

struct QueueState {
    /// queue name → elements, head first.
    queues: HashMap<String, VecDeque<Vec<u8>>>,
    /// Logical version (one per applied op), for recovery's source
    /// election.
    update_seq: u64,
    /// Applied cursor, kept in the same critical section as the state.
    applied_seq: u64,
}

/// The replicated queue table: a volatile, deterministic
/// [`StateMachine`]. Durability comes entirely from replication.
pub struct QueueStateMachine {
    n: usize,
    state: Mutex<QueueState>,
}

impl std::fmt::Debug for QueueStateMachine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueueStateMachine")
    }
}

impl QueueStateMachine {
    /// An empty queue table for an `n`-replica service.
    pub fn new(n: usize) -> QueueStateMachine {
        QueueStateMachine {
            n,
            state: Mutex::new(QueueState {
                queues: HashMap::new(),
                update_seq: 0,
                applied_seq: 0,
            }),
        }
    }

    /// The head of `queue` without removing it (serve only behind a
    /// read barrier).
    pub fn head(&self, queue: &str) -> Option<Vec<u8>> {
        self.state
            .lock()
            .queues
            .get(queue)
            .and_then(|q| q.front().cloned())
    }

    /// Elements currently in `queue` (diagnostics/tests).
    pub fn len(&self, queue: &str) -> usize {
        self.state.lock().queues.get(queue).map_or(0, |q| q.len())
    }
}

impl StateMachine for QueueStateMachine {
    fn apply(&self, _ctx: &Ctx, seq: u64, op: &Payload) -> Payload {
        let mut st = self.state.lock();
        st.applied_seq = st.applied_seq.max(seq);
        st.update_seq += 1;
        let reply = match QueueRequest::decode(op) {
            Ok(QueueRequest::Enqueue { queue, item }) => {
                st.queues.entry(queue).or_default().push_back(item);
                QueueReply::Ok
            }
            Ok(QueueRequest::Dequeue { queue }) => {
                let item = st.queues.get_mut(&queue).and_then(|q| q.pop_front());
                if st.queues.get(&queue).is_some_and(|q| q.is_empty()) {
                    st.queues.remove(&queue); // empty queues leave no residue
                }
                match item {
                    Some(bytes) => QueueReply::Item(bytes),
                    None => QueueReply::Empty,
                }
            }
            _ => QueueReply::Malformed, // peeks are never replicated
        };
        reply.encode()
    }

    fn recovery_info(&self) -> RecoveryInfo {
        RecoveryInfo {
            update_seq: self.state.lock().update_seq,
            // Volatile state: we cannot know who crashed before us.
            mourned: vec![false; self.n],
        }
    }

    fn snapshot(&self, _ctx: &Ctx) -> (u64, Payload) {
        let st = self.state.lock();
        let mut names: Vec<&String> = st.queues.keys().collect();
        names.sort_unstable(); // deterministic encoding
        let mut w = WireWriter::new();
        w.u64(st.update_seq).u32(names.len() as u32);
        for name in names {
            let q = &st.queues[name];
            w.string(name).u32(q.len() as u32);
            for item in q {
                w.bytes(item);
            }
        }
        (st.applied_seq, w.finish_payload())
    }

    fn install(&self, _ctx: &Ctx, cursor: u64, snap: &Payload) -> bool {
        let mut r = WireReader::of(snap);
        let (update_seq, n) = match (r.u64("update seq"), r.u32("queues")) {
            (Ok(u), Ok(n)) if (n as usize) <= 1_000_000 => (u, n),
            _ => return false,
        };
        let mut queues = HashMap::with_capacity(n as usize);
        for _ in 0..n {
            let (name, len) = match (r.string("queue name"), r.u32("queue len")) {
                (Ok(name), Ok(len)) if (len as usize) <= 1_000_000 => (name, len),
                _ => return false,
            };
            let mut q = VecDeque::with_capacity(len as usize);
            for _ in 0..len {
                match r.bytes("queue item") {
                    Ok(bytes) => q.push_back(bytes.to_vec()),
                    _ => return false,
                }
            }
            queues.insert(name, q);
        }
        let mut st = self.state.lock();
        st.queues = queues;
        st.update_seq = update_seq;
        st.applied_seq = cursor;
        true
    }

    fn align_cursor(&self, _ctx: &Ctx, cursor: u64) {
        // A new instance's order restarts: set absolutely.
        self.state.lock().applied_seq = cursor;
    }

    fn on_membership(&self, _ctx: &Ctx, seq: u64, _config: &[bool]) {
        if seq > 0 {
            let mut st = self.state.lock();
            st.applied_seq = st.applied_seq.max(seq);
        }
    }
}

// ---------------------------------------------------------------------
// Server wiring and client stub.
// ---------------------------------------------------------------------

/// Everything needed to start one queue-service replica: like the lock
/// service, no disk, no Bullet, no NVRAM — replication is the only
/// durability.
pub struct QueueServerDeps {
    /// Total replicas.
    pub n: usize,
    /// This replica's index in `0..n`.
    pub me: usize,
    /// The machine this replica runs on.
    pub sim_node: NodeId,
    /// RPC kernel of the machine (shared with other services).
    pub rpc: RpcNode,
    /// Group kernel of the machine (shared with other services; the
    /// queue group forms on its own port).
    pub peer: GroupPeer,
    /// Request threads to spawn.
    pub threads: usize,
}

impl std::fmt::Debug for QueueServerDeps {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "QueueServerDeps(replica {})", self.me)
    }
}

/// Handle to one running queue-service replica.
#[derive(Clone, Debug)]
pub struct QueueServer {
    replica: Replica<QueueStateMachine>,
}

impl QueueServer {
    /// Whether the replica is serving.
    pub fn is_normal(&self) -> bool {
        self.replica.is_normal()
    }

    /// The replica's queue table (diagnostics/tests).
    pub fn machine(&self) -> &Arc<QueueStateMachine> {
        self.replica.machine()
    }
}

/// Starts one replica of the queue service.
pub fn start_queue_server(spawner: &impl Spawn, deps: QueueServerDeps) -> QueueServer {
    let QueueServerDeps {
        n,
        me,
        sim_node,
        rpc,
        peer,
        threads,
    } = deps;
    let sm = Arc::new(QueueStateMachine::new(n));
    let mut cfg = RsmConfig::new("amoeba.queue", n, me);
    // Volatile machine: only the §3.2 improved rule can ever let it
    // recover from less than the full replica set (see the lock
    // service for the full argument).
    cfg.improved_recovery = true;
    let replica = Replica::start(
        spawner,
        ReplicaDeps {
            cfg,
            sim_node,
            rpc: rpc.clone(),
            peer,
            sm,
        },
    );
    for t in 0..threads.max(1) {
        let srv = RpcServer::new(&rpc, QUEUE_PORT);
        let replica = replica.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            &format!("queue{me}-srv{t}"),
            Box::new(move |ctx| loop {
                let incoming = srv.getreq(ctx);
                // The server-side span, parented to the client's request
                // context (same idiom as the directory initiator): the
                // replica submit below inherits it through the ambient
                // context, so a traced enqueue yields one connected tree
                // across client, server, sequencer and replicas.
                let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
                let span = tele.begin_child("queue.srv", u64::from(srv.addr().0), incoming.trace);
                let prev = amoeba_telemetry::set_current_ctx(span);
                let reply = match QueueRequest::decode(&incoming.data) {
                    Ok(QueueRequest::Peek { queue }) => match replica.read_barrier(ctx) {
                        Ok(()) => match replica.machine().head(&queue) {
                            Some(item) => QueueReply::Item(item),
                            None => QueueReply::Empty,
                        },
                        Err(_) => QueueReply::NoMajority,
                    },
                    Ok(op) => {
                        match replica.submit_traced(
                            ctx,
                            op.encode(),
                            amoeba_telemetry::current_ctx(),
                        ) {
                            Ok(bytes) => {
                                QueueReply::decode(&bytes).unwrap_or(QueueReply::Malformed)
                            }
                            Err(RsmError::NotInService | RsmError::Aborted) => {
                                QueueReply::NoMajority
                            }
                            Err(RsmError::ResultLost) => QueueReply::Malformed,
                        }
                    }
                    Err(_) => QueueReply::Malformed,
                };
                amoeba_telemetry::set_current_ctx(prev);
                tele.end(span);
                srv.putrep(&incoming, reply.encode());
            }),
        );
    }
    QueueServer { replica }
}

/// Errors surfaced by [`QueueClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueueError {
    /// The service has no majority (retry later).
    NoMajority,
    /// The service refused or mangled the request.
    Service,
    /// Transport failure.
    Rpc(RpcError),
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::NoMajority => f.write_str("queue service has no majority"),
            QueueError::Service => f.write_str("queue service refused the request"),
            QueueError::Rpc(e) => write!(f, "queue transport: {e}"),
        }
    }
}

impl std::error::Error for QueueError {}

/// Client stub for the queue service.
#[derive(Clone, Debug)]
pub struct QueueClient {
    rpc: RpcClient,
}

impl QueueClient {
    /// Creates a stub talking to the service through `rpc`.
    pub fn new(rpc: RpcClient) -> QueueClient {
        QueueClient { rpc }
    }

    fn call(&self, ctx: &Ctx, req: QueueRequest) -> Result<QueueReply, QueueError> {
        let bytes = self
            .rpc
            .trans(ctx, QUEUE_PORT, req.encode())
            .map_err(QueueError::Rpc)?;
        QueueReply::decode(&bytes).map_err(|_| QueueError::Service)
    }

    /// Wraps one public operation in a client span (root when the
    /// process has no ambient context) and a latency histogram — the
    /// same shape as `DirClient`'s per-op instrumentation.
    fn op<T>(
        &self,
        ctx: &Ctx,
        name: &'static str,
        f: impl FnOnce() -> Result<T, QueueError>,
    ) -> Result<T, QueueError> {
        let tele = amoeba_telemetry::Telemetry::from_handle(&ctx.handle());
        if !tele.is_enabled() {
            return f();
        }
        let machine = u64::from(self.rpc.addr().0);
        let outer = amoeba_telemetry::current_ctx();
        let span = if outer.is_some() {
            tele.begin_child(name, machine, outer)
        } else {
            tele.begin_root(name, machine)
        };
        let prev = amoeba_telemetry::set_current_ctx(span);
        let start = ctx.now();
        let r = f();
        amoeba_telemetry::set_current_ctx(prev);
        tele.end(span);
        tele.observe_since(name, start);
        r
    }

    /// Appends `item` to the tail of `queue`.
    ///
    /// # Errors
    ///
    /// [`QueueError::NoMajority`] while the service is recovering.
    pub fn enqueue(&self, ctx: &Ctx, queue: &str, item: Vec<u8>) -> Result<(), QueueError> {
        self.op(ctx, "cli.q.enqueue", || {
            match self.call(
                ctx,
                QueueRequest::Enqueue {
                    queue: queue.to_owned(),
                    item,
                },
            )? {
                QueueReply::Ok => Ok(()),
                QueueReply::NoMajority => Err(QueueError::NoMajority),
                _ => Err(QueueError::Service),
            }
        })
    }

    /// Removes and returns the head of `queue` (`None` if empty).
    ///
    /// # Errors
    ///
    /// [`QueueError::NoMajority`] while the service is recovering.
    pub fn dequeue(&self, ctx: &Ctx, queue: &str) -> Result<Option<Vec<u8>>, QueueError> {
        self.op(ctx, "cli.q.dequeue", || {
            match self.call(
                ctx,
                QueueRequest::Dequeue {
                    queue: queue.to_owned(),
                },
            )? {
                QueueReply::Item(bytes) => Ok(Some(bytes)),
                QueueReply::Empty => Ok(None),
                QueueReply::NoMajority => Err(QueueError::NoMajority),
                _ => Err(QueueError::Service),
            }
        })
    }

    /// Reads the head of `queue` without removing it.
    ///
    /// # Errors
    ///
    /// [`QueueError::NoMajority`] while the service is recovering.
    pub fn peek(&self, ctx: &Ctx, queue: &str) -> Result<Option<Vec<u8>>, QueueError> {
        self.op(ctx, "cli.q.peek", || {
            match self.call(
                ctx,
                QueueRequest::Peek {
                    queue: queue.to_owned(),
                },
            )? {
                QueueReply::Item(bytes) => Ok(Some(bytes)),
                QueueReply::Empty => Ok(None),
                QueueReply::NoMajority => Err(QueueError::NoMajority),
                _ => Err(QueueError::Service),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_and_replies_round_trip() {
        let reqs = [
            QueueRequest::Enqueue {
                queue: "jobs".into(),
                item: vec![1, 2, 3],
            },
            QueueRequest::Dequeue {
                queue: "jobs".into(),
            },
            QueueRequest::Peek { queue: "q".into() },
        ];
        for m in reqs {
            assert_eq!(QueueRequest::decode(&m.encode()).unwrap(), m);
        }
        let reps = [
            QueueReply::Ok,
            QueueReply::Item(vec![9]),
            QueueReply::Empty,
            QueueReply::Malformed,
            QueueReply::NoMajority,
        ];
        for m in reps {
            assert_eq!(QueueReply::decode(&m.encode()).unwrap(), m);
        }
        assert!(QueueRequest::decode(&[99]).is_err());
        assert!(QueueReply::decode(&[]).is_err());
    }
}

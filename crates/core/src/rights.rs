//! Rights bits carried in capabilities.

use std::fmt;
use std::ops::{BitAnd, BitOr};

/// The rights field of a capability (8 bits, as in Amoeba).
///
/// For directory capabilities the low bits select which protection-domain
/// *columns* the holder may see (paper §2: "the capability is really a
/// capability for a single column"), plus operation bits:
///
/// * bits 0–3: may see column 0–3
/// * bit 6 ([`Rights::MODIFY`]): may append/chmod/delete rows
/// * bit 7 ([`Rights::ADMIN`]): may delete the directory itself
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct Rights(pub u8);

impl Rights {
    /// No rights at all.
    pub const NONE: Rights = Rights(0);
    /// Every right.
    pub const ALL: Rights = Rights(0xFF);
    /// May modify rows (append, chmod, delete row, replace).
    pub const MODIFY: Rights = Rights(0x40);
    /// May delete the directory.
    pub const ADMIN: Rights = Rights(0x80);

    /// The right to see column `i` (0–3).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn column(i: usize) -> Rights {
        assert!(i < 4, "at most 4 protection columns");
        Rights(1 << i)
    }

    /// All column bits for the first `n` columns.
    pub fn columns(n: usize) -> Rights {
        let n = n.min(4);
        Rights(((1u16 << n) - 1) as u8)
    }

    /// Whether every bit of `other` is present in `self`.
    pub fn covers(self, other: Rights) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any column bit is set.
    pub fn sees_any_column(self) -> bool {
        self.0 & 0x0F != 0
    }

    /// Whether column `i` is visible.
    pub fn sees_column(self, i: usize) -> bool {
        i < 4 && self.0 & (1 << i) != 0
    }

    /// The column bits only.
    pub fn column_bits(self) -> Rights {
        Rights(self.0 & 0x0F)
    }
}

impl BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rights({:08b})", self.0)
    }
}

impl fmt::Display for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_is_subset_check() {
        let a = Rights::column(0) | Rights::MODIFY;
        assert!(Rights::ALL.covers(a));
        assert!(a.covers(Rights::column(0)));
        assert!(!a.covers(Rights::ADMIN));
        assert!(a.covers(Rights::NONE));
    }

    #[test]
    fn columns_builds_masks() {
        assert_eq!(Rights::columns(0), Rights::NONE);
        assert_eq!(Rights::columns(2).0, 0b11);
        assert_eq!(Rights::columns(4).0, 0b1111);
        assert_eq!(Rights::columns(9).0, 0b1111);
    }

    #[test]
    fn sees_column_checks_bit() {
        let r = Rights::column(1);
        assert!(r.sees_column(1));
        assert!(!r.sees_column(0));
        assert!(!r.sees_column(7));
        assert!(r.sees_any_column());
        assert!(!Rights::MODIFY.sees_any_column());
    }

    #[test]
    #[should_panic(expected = "at most 4")]
    fn column_out_of_range_panics() {
        let _ = Rights::column(4);
    }

    #[test]
    fn bit_ops() {
        let r = Rights(0b0011) & Rights(0b0010);
        assert_eq!(r.0, 0b0010);
        let r = Rights(0b0001) | Rights(0b1000);
        assert_eq!(r.0, 0b1001);
    }
}

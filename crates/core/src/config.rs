//! Service-wide configuration and performance parameters.

use std::time::Duration;

use amoeba_flip::Port;

/// How updates reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Synchronous disk writes in the update critical path (paper §3.1).
    Disk,
    /// Log updates to NVRAM; apply to disk in the background (paper §4.1).
    Nvram,
}

/// Static configuration of a directory service deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Total number of directory servers (3 in the paper's group service).
    pub n: usize,
    /// This server's index in `0..n`.
    pub me: usize,
    /// The public service port clients locate.
    pub public_port: Port,
    /// The port the server group is formed on.
    pub group_port: Port,
}

impl ServiceConfig {
    /// Standard configuration for server `me` of `n`.
    pub fn new(n: usize, me: usize) -> ServiceConfig {
        assert!(me < n, "server index out of range");
        ServiceConfig {
            n,
            me,
            public_port: Port::from_name("amoeba.dir"),
            group_port: Port::from_name("amoeba.dir.group"),
        }
    }

    /// Votes needed for a majority.
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// The internal (server-to-server) port of server `i`, used by the
    /// recovery protocol's RPC exchanges.
    pub fn internal_port(&self, i: usize) -> Port {
        Port::from_name(&format!("amoeba.dir.internal.{i}"))
    }

    /// The Bullet service port of server `i`'s storage column.
    pub fn bullet_port(&self, i: usize) -> Port {
        Port::from_name(&format!("amoeba.dir.bullet.{i}"))
    }
}

/// Tunables of the directory server implementations, calibrated to the
/// paper's testbed (Sun3/60-class CPUs; see `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct DirParams {
    /// CPU time to serve a read operation (paper §4.2: ≈3 ms; bounds each
    /// server at ≈333 lookups/s).
    pub read_cpu: Duration,
    /// CPU time an initiator spends unmarshalling/validating a write.
    pub write_cpu: Duration,
    /// CPU time the group thread spends applying one update (besides
    /// storage operations).
    pub apply_cpu: Duration,
    /// Server threads per machine (multiple threads per server, §3.1).
    pub server_threads: usize,
    /// Most consecutive replicated ops the replica driver applies as
    /// one batch before a single durable group-commit flush (`1`
    /// disables apply batching; see `amoeba_rsm`).
    pub apply_batch: usize,
    /// Enable the §3.2 improved two-server recovery rule.
    pub improved_recovery: bool,
    /// Disk or NVRAM commit path.
    pub storage: StorageKind,
    /// NVRAM fill fraction that triggers a background flush.
    pub nvram_flush_threshold: f64,
    /// Idle time after which the NVRAM flusher runs anyway.
    pub nvram_idle_flush: Duration,
    /// Latency of an intentions-log append in the RPC baseline
    /// (sequential log write: rotation + transfer, no full seek).
    pub intentions_latency: Duration,
    /// How long a joining server waits for a group to answer.
    pub recovery_join_timeout: Duration,
    /// How long to wait for a majority to assemble before retrying.
    pub recovery_majority_timeout: Duration,
    /// Upper bound of the random dither between recovery retries.
    pub recovery_retry_jitter: Duration,
}

impl Default for DirParams {
    fn default() -> Self {
        DirParams {
            read_cpu: Duration::from_micros(3_000),
            write_cpu: Duration::from_micros(1_000),
            apply_cpu: Duration::from_micros(500),
            server_threads: 2,
            apply_batch: 32,
            improved_recovery: false,
            storage: StorageKind::Disk,
            nvram_flush_threshold: 0.75,
            nvram_idle_flush: Duration::from_millis(200),
            intentions_latency: Duration::from_millis(12),
            recovery_join_timeout: Duration::from_millis(400),
            recovery_majority_timeout: Duration::from_millis(1_500),
            recovery_retry_jitter: Duration::from_millis(300),
        }
    }
}

impl DirParams {
    /// Default parameters with the NVRAM commit path.
    pub fn nvram() -> Self {
        DirParams {
            storage: StorageKind::Nvram,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_is_floor_half_plus_one() {
        assert_eq!(ServiceConfig::new(3, 0).majority(), 2);
        assert_eq!(ServiceConfig::new(2, 0).majority(), 2);
        assert_eq!(ServiceConfig::new(5, 4).majority(), 3);
    }

    #[test]
    fn internal_ports_are_distinct() {
        let c = ServiceConfig::new(3, 0);
        assert_ne!(c.internal_port(0), c.internal_port(1));
        assert_ne!(c.internal_port(0), c.public_port);
        assert_ne!(c.bullet_port(0), c.bullet_port(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = ServiceConfig::new(3, 3);
    }

    #[test]
    fn nvram_params() {
        assert_eq!(DirParams::nvram().storage, StorageKind::Nvram);
        assert_eq!(DirParams::default().storage, StorageKind::Disk);
    }
}

//! Service-wide configuration and performance parameters.

use std::time::Duration;

use amoeba_flip::Port;

/// How updates reach stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// Synchronous disk writes in the update critical path (paper §3.1).
    Disk,
    /// Log updates to NVRAM; apply to disk in the background (paper §4.1).
    Nvram,
}

/// Static configuration of one directory service *shard* (the whole
/// service, when there is a single shard).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Total number of directory servers in this shard's group (3 in
    /// the paper's group service).
    pub n: usize,
    /// This server's index in `0..n`.
    pub me: usize,
    /// This server's shard index in `0..shards`.
    pub shard: usize,
    /// Total number of shards the directory service is split into.
    pub shards: usize,
    /// The service name every port of this shard derives from
    /// (`"amoeba.dir"` unsharded; `"amoeba.dir.s{k}"` for shard `k`).
    pub service: String,
    /// The public service port clients locate.
    pub public_port: Port,
    /// The port the server group is formed on.
    pub group_port: Port,
}

impl ServiceConfig {
    /// Standard configuration for server `me` of `n` of a single-shard
    /// (unsharded) service.
    pub fn new(n: usize, me: usize) -> ServiceConfig {
        Self::sharded(n, me, 0, 1)
    }

    /// Configuration for server `me` of `n` of shard `shard` of
    /// `shards`. With `shards == 1` this is exactly [`new`](Self::new).
    pub fn sharded(n: usize, me: usize, shard: usize, shards: usize) -> ServiceConfig {
        assert!(me < n, "server index out of range");
        let shards = shards.max(1);
        assert!(shard < shards, "shard index out of range");
        let service = crate::shard::ShardMap::new(shards).service_name(shard);
        let public_port = Port::from_name(&service);
        let group_port = Port::from_name(&format!("{service}.group"));
        ServiceConfig {
            n,
            me,
            shard,
            shards,
            service,
            public_port,
            group_port,
        }
    }

    /// Votes needed for a majority.
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    /// The internal (server-to-server) port of server `i`, used by the
    /// recovery protocol's RPC exchanges.
    pub fn internal_port(&self, i: usize) -> Port {
        Port::from_name(&format!("{}.internal.{i}", self.service))
    }

    /// The Bullet service port of server `i`'s storage column.
    pub fn bullet_port(&self, i: usize) -> Port {
        Port::from_name(&format!("{}.bullet.{i}", self.service))
    }
}

/// Tunables of the directory server implementations, calibrated to the
/// paper's testbed (Sun3/60-class CPUs; see `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq)]
pub struct DirParams {
    /// CPU time to serve a read operation (paper §4.2: ≈3 ms; bounds each
    /// server at ≈333 lookups/s).
    pub read_cpu: Duration,
    /// CPU time an initiator spends unmarshalling/validating a write.
    pub write_cpu: Duration,
    /// CPU time the group thread spends applying one update (besides
    /// storage operations).
    pub apply_cpu: Duration,
    /// Server threads per machine (multiple threads per server, §3.1).
    pub server_threads: usize,
    /// Most consecutive replicated ops the replica driver applies as
    /// one batch before a single durable group-commit flush (`1`
    /// disables apply batching; see `amoeba_rsm`).
    pub apply_batch: usize,
    /// Bounded in-flight window of the two-stage commit pipeline: how
    /// many applied-but-unflushed batches the replica driver may run
    /// ahead of its flusher stage. `1` (the default) is the classic
    /// serial driver — apply, flush, publish in lockstep. Only
    /// meaningful on the [`StorageKind::Disk`] commit path; the NVRAM
    /// path's log append inside apply *is* the durable commit, so it
    /// always drives the serial loop. See `amoeba_rsm::RsmConfig`.
    pub flush_window: usize,
    /// The group log: route every group-commit flush through the disk's
    /// reserved journal region as one sequential record append, with a
    /// background checkpointer draining the dirty set into real
    /// Bullet/table blocks (see `amoeba_disk::Journal` and the module
    /// docs of [`crate::dir_sm`]). `false` (the default) keeps the
    /// region-phased in-place flush, bit-identical to the pre-journal
    /// build — the journal region is not even carved.
    pub journal: bool,
    /// Journal into a dedicated battery-backed NVRAM device instead of
    /// the disk's journal region (only meaningful with
    /// [`journal`](Self::journal) on and [`StorageKind::Disk`] storage).
    pub journal_nvram: bool,
    /// How often the background checkpointer drains the journal when
    /// the journaled commit path is on.
    pub checkpoint_interval: Duration,
    /// Replace the fixed anticipatory flush gather with an
    /// arrival-rate-tracked one: the replica driver keeps an EWMA of
    /// inter-submit gaps and gathers for twice that (clamped to
    /// `[0.5 ms, flush_gather]`), so an idle service flushes promptly
    /// and a saturated one still merges its window. Surfaced in
    /// `amoeba_rsm::ReplicaStats::gather_ewma_us`.
    pub adaptive_gather: bool,
    /// Enable the §3.2 improved two-server recovery rule.
    pub improved_recovery: bool,
    /// Disk or NVRAM commit path.
    pub storage: StorageKind,
    /// NVRAM fill fraction that triggers a background flush.
    pub nvram_flush_threshold: f64,
    /// Idle time after which the NVRAM flusher runs anyway.
    pub nvram_idle_flush: Duration,
    /// Latency of an intentions-log append in the RPC baseline
    /// (sequential log write: rotation + transfer, no full seek).
    pub intentions_latency: Duration,
    /// Upper bound on client read-lease durations ([`crate::cache`]):
    /// the longest a write can stall waiting out an unreachable lease
    /// holder, and the cap applied to any requested TTL.
    pub max_lease: Duration,
    /// Piggybacked lease renewals budgeted per grant: each write that
    /// revokes a holder's lease reinstates a successor (deadline
    /// extended by the lease's own TTL, budget decremented), so the
    /// holder's refetch after the invalidation callback is served off
    /// the read path instead of a full group round. `0` disables
    /// piggybacking. The budget also bounds the extra wait-outs a
    /// crashed holder can cost writers, and widens the cold-boot write
    /// fence to `(1 + lease_renewals) × max_lease`.
    pub lease_renewals: u32,
    /// How long a joining server waits for a group to answer.
    pub recovery_join_timeout: Duration,
    /// How long to wait for a majority to assemble before retrying.
    pub recovery_majority_timeout: Duration,
    /// Upper bound of the random dither between recovery retries.
    pub recovery_retry_jitter: Duration,
}

impl Default for DirParams {
    fn default() -> Self {
        DirParams {
            read_cpu: Duration::from_micros(3_000),
            write_cpu: Duration::from_micros(1_000),
            apply_cpu: Duration::from_micros(500),
            server_threads: 2,
            apply_batch: 32,
            flush_window: 1,
            journal: false,
            journal_nvram: false,
            checkpoint_interval: Duration::from_millis(250),
            adaptive_gather: false,
            improved_recovery: false,
            storage: StorageKind::Disk,
            nvram_flush_threshold: 0.75,
            nvram_idle_flush: Duration::from_millis(200),
            intentions_latency: Duration::from_millis(12),
            max_lease: Duration::from_millis(400),
            lease_renewals: 2,
            recovery_join_timeout: Duration::from_millis(400),
            recovery_majority_timeout: Duration::from_millis(1_500),
            recovery_retry_jitter: Duration::from_millis(300),
        }
    }
}

impl DirParams {
    /// Default parameters with the NVRAM commit path.
    pub fn nvram() -> Self {
        DirParams {
            storage: StorageKind::Nvram,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_is_floor_half_plus_one() {
        assert_eq!(ServiceConfig::new(3, 0).majority(), 2);
        assert_eq!(ServiceConfig::new(2, 0).majority(), 2);
        assert_eq!(ServiceConfig::new(5, 4).majority(), 3);
    }

    #[test]
    fn internal_ports_are_distinct() {
        let c = ServiceConfig::new(3, 0);
        assert_ne!(c.internal_port(0), c.internal_port(1));
        assert_ne!(c.internal_port(0), c.public_port);
        assert_ne!(c.bullet_port(0), c.bullet_port(1));
    }

    #[test]
    fn sharded_configs_do_not_collide() {
        let a = ServiceConfig::sharded(3, 0, 0, 2);
        let b = ServiceConfig::sharded(3, 0, 1, 2);
        assert_ne!(a.public_port, b.public_port);
        assert_ne!(a.group_port, b.group_port);
        assert_ne!(a.internal_port(0), b.internal_port(0));
        assert_ne!(a.bullet_port(0), b.bullet_port(0));
        // A single shard is the classic unsharded configuration.
        assert_eq!(ServiceConfig::sharded(3, 1, 0, 1), ServiceConfig::new(3, 1));
        assert_eq!(
            ServiceConfig::new(3, 0).public_port,
            Port::from_name("amoeba.dir")
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let _ = ServiceConfig::new(3, 3);
    }

    #[test]
    fn nvram_params() {
        assert_eq!(DirParams::nvram().storage, StorageKind::Nvram);
        assert_eq!(DirParams::default().storage, StorageKind::Disk);
    }
}

//! Diagnostic test for service formation (kept as a regression test).

use std::time::Duration;

use amoeba_dir_core::cluster::{Cluster, ClusterParams, Variant};
use amoeba_sim::Simulation;

#[test]
fn group_service_forms_within_five_seconds() {
    let mut sim = Simulation::new(7);
    let cluster = Cluster::start(&sim, ClusterParams::paper(Variant::Group));
    sim.run_for(Duration::from_secs(5));
    for i in 0..3 {
        assert!(
            cluster.group_server(i).is_normal(),
            "server {i} not in normal operation after 5s"
        );
    }
}

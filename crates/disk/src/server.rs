//! The disk-server process: serializes access to one spindle and charges
//! the timing model.

use amoeba_flip::Payload;
use amoeba_sim::{Ctx, MailboxRx, MailboxTx, NodeId, SimHandle, Spawn};

use crate::model::DiskParams;
use crate::vdisk::VDisk;

enum DiskReq {
    Read {
        block: u64,
        reply: MailboxTx<Vec<u8>>,
    },
    Write {
        block: u64,
        data: Payload,
        reply: MailboxTx<()>,
    },
    /// Consecutive blocks, one seek (used by Bullet for whole files).
    /// The block contents are shared `Payload` slices: a Bullet create
    /// reaches the platters without a byte copy.
    WriteRun {
        start: u64,
        data: Vec<Payload>,
        reply: MailboxTx<()>,
    },
    ReadRun {
        start: u64,
        count: u64,
        reply: MailboxTx<Vec<Vec<u8>>>,
    },
}

impl std::fmt::Debug for DiskReq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskReq::Read { block, .. } => write!(f, "Read({block})"),
            DiskReq::Write { block, .. } => write!(f, "Write({block})"),
            DiskReq::WriteRun { start, data, .. } => {
                write!(f, "WriteRun({start}+{})", data.len())
            }
            DiskReq::ReadRun { start, count, .. } => write!(f, "ReadRun({start}+{count})"),
        }
    }
}

/// A client handle to one machine's disk server. FIFO-fair: requests are
/// served strictly in arrival order, one at a time — queueing delay under
/// write load is what saturates the paper's Fig. 9 at ~5 pairs/s.
#[derive(Clone, Debug)]
pub struct DiskServer {
    tx: MailboxTx<DiskReq>,
    handle: SimHandle,
    disk: VDisk,
}

impl DiskServer {
    /// Starts the server process on `sim_node` in front of `disk`.
    ///
    /// After a machine crash, call this again with the same [`VDisk`] to
    /// model the machine rebooting with its platters intact.
    pub fn start(
        spawner: &impl Spawn,
        sim_node: NodeId,
        disk: VDisk,
        params: DiskParams,
    ) -> DiskServer {
        let handle = spawner.sim_handle();
        let (tx, rx) = handle.channel::<DiskReq>();
        let served_disk = disk.clone();
        spawner.spawn_boxed(
            Some(sim_node),
            "disk-server",
            Box::new(move |ctx| serve(ctx, rx, served_disk, params)),
        );
        DiskServer { tx, handle, disk }
    }

    /// The raw platters behind this server.
    pub fn vdisk(&self) -> &VDisk {
        &self.disk
    }

    /// Reads one block, paying queueing plus access time.
    pub fn read(&self, ctx: &Ctx, block: u64) -> Vec<u8> {
        let (reply, rx) = self.handle.channel();
        self.tx.send(DiskReq::Read { block, reply });
        rx.recv(ctx)
    }

    /// Writes one block synchronously. The contents are shared, not
    /// copied, on their way to the platters.
    pub fn write(&self, ctx: &Ctx, block: u64, data: impl Into<Payload>) {
        let rx = self.write_begin(block, data);
        rx.recv(ctx)
    }

    /// Enqueues a block write *without blocking* and returns the waiter.
    /// The request takes its place in the FIFO immediately, so callers may
    /// enqueue under a lock and wait after releasing it (waiting while
    /// holding a lock would freeze other simulated threads).
    pub fn write_begin(&self, block: u64, data: impl Into<Payload>) -> amoeba_sim::MailboxRx<()> {
        let (reply, rx) = self.handle.channel();
        self.tx.send(DiskReq::Write {
            block,
            data: data.into(),
            reply,
        });
        rx
    }

    /// Writes consecutive blocks with a single seek. Blocks are shared
    /// `Payload` slices — no byte is copied on the way down.
    pub fn write_run(&self, ctx: &Ctx, start: u64, data: Vec<impl Into<Payload>>) {
        let (reply, rx) = self.handle.channel();
        self.tx.send(DiskReq::WriteRun {
            start,
            data: data.into_iter().map(Into::into).collect(),
            reply,
        });
        rx.recv(ctx)
    }

    /// Reads consecutive blocks with a single seek.
    pub fn read_run(&self, ctx: &Ctx, start: u64, count: u64) -> Vec<Vec<u8>> {
        let (reply, rx) = self.handle.channel();
        self.tx.send(DiskReq::ReadRun {
            start,
            count,
            reply,
        });
        rx.recv(ctx)
    }
}

fn serve(ctx: &Ctx, rx: MailboxRx<DiskReq>, disk: VDisk, params: DiskParams) {
    // Where the head finished its previous access (head-aware mode): a
    // request landing on that block again, or the next one over,
    // skips the seek. Consecutive commit-block writes (block 0, block 0)
    // and table-block-then-commit-block runs are the beneficiaries.
    let mut head: Option<u64> = None;
    let charge = |ctx: &Ctx, head: &mut Option<u64>, start: u64, n: usize| {
        let settled = params.head_aware && head.map(|h| h.abs_diff(start) <= 1).unwrap_or(false);
        if settled {
            ctx.sleep(params.settled_access_time(n));
        } else {
            disk.note_seek();
            ctx.sleep(params.access_time(n));
        }
        *head = Some(start + (n.max(1) as u64) - 1);
    };
    loop {
        match rx.recv(ctx) {
            DiskReq::Read { block, reply } => {
                charge(ctx, &mut head, block, 1);
                reply.send(disk.read_block(block));
            }
            DiskReq::Write { block, data, reply } => {
                charge(ctx, &mut head, block, 1);
                disk.write_block(block, &data);
                reply.send(());
            }
            DiskReq::WriteRun { start, data, reply } => {
                charge(ctx, &mut head, start, data.len());
                for (i, d) in data.iter().enumerate() {
                    disk.write_block(start + i as u64, d);
                }
                reply.send(());
            }
            DiskReq::ReadRun {
                start,
                count,
                reply,
            } => {
                charge(ctx, &mut head, start, count as usize);
                let blocks = (0..count).map(|i| disk.read_block(start + i)).collect();
                reply.send(blocks);
            }
        }
    }
}

/// A contiguous view of part of a disk (Amoeba's "raw partition").
///
/// Block 0 of the partition is the directory service's commit block
/// (paper Fig. 4); the rest holds the object table.
#[derive(Clone, Debug)]
pub struct RawPartition {
    server: DiskServer,
    base: u64,
    len: u64,
}

impl RawPartition {
    /// Creates a view of `len` blocks starting at absolute block `base`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the disk.
    pub fn new(server: DiskServer, base: u64, len: u64) -> Self {
        assert!(
            base + len <= server.vdisk().nblocks(),
            "partition exceeds disk"
        );
        RawPartition { server, base, len }
    }

    /// Number of blocks in the partition.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Block size of the underlying disk, in bytes.
    pub fn block_size(&self) -> usize {
        self.server.vdisk().block_size()
    }

    /// Whether the partition has zero blocks.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads partition-relative block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of the partition.
    pub fn read(&self, ctx: &Ctx, block: u64) -> Vec<u8> {
        assert!(block < self.len, "partition read out of range");
        self.server.read(ctx, self.base + block)
    }

    /// Writes partition-relative block `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of the partition.
    pub fn write(&self, ctx: &Ctx, block: u64, data: impl Into<Payload>) {
        assert!(block < self.len, "partition write out of range");
        self.server.write(ctx, self.base + block, data);
    }

    /// Enqueues a partition write without blocking; see
    /// [`DiskServer::write_begin`].
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of the partition.
    pub fn write_begin(&self, block: u64, data: impl Into<Payload>) -> amoeba_sim::MailboxRx<()> {
        assert!(block < self.len, "partition write out of range");
        self.server.write_begin(self.base + block, data)
    }

    /// Writes consecutive partition-relative blocks with a single seek
    /// (the journal's sequential record append).
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds the partition.
    pub fn write_run(&self, ctx: &Ctx, start: u64, data: Vec<impl Into<Payload>>) {
        assert!(
            start + data.len() as u64 <= self.len,
            "partition write out of range"
        );
        self.server.write_run(ctx, self.base + start, data);
    }

    /// Reads the whole partition with one seek (used at boot to load the
    /// object table).
    pub fn read_all(&self, ctx: &Ctx) -> Vec<Vec<u8>> {
        self.server.read_run(ctx, self.base, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_sim::Simulation;
    use std::time::Duration;

    #[test]
    fn read_write_round_trip_with_latency() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(128, 512);
        let srv = DiskServer::start(&sim, node, disk, DiskParams::wren_iv());
        let out = sim.spawn("app", move |ctx| {
            let t0 = ctx.now();
            srv.write(ctx, 5, vec![7; 10]);
            let t_write = ctx.now() - t0;
            let data = srv.read(ctx, 5);
            (data[0], t_write)
        });
        sim.run();
        let (v, t_write) = out.take().unwrap();
        assert_eq!(v, 7);
        assert!(t_write >= Duration::from_millis(35), "{t_write:?}");
    }

    #[test]
    fn requests_serialize_fifo() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(128, 512);
        let srv = DiskServer::start(&sim, node, disk, DiskParams::wren_iv());
        let mut outs = Vec::new();
        for i in 0..3u64 {
            let srv = srv.clone();
            outs.push(sim.spawn(&format!("w{i}"), move |ctx| {
                ctx.sleep(Duration::from_micros(i));
                srv.write(ctx, i, vec![i as u8]);
                ctx.now()
            }));
        }
        sim.run();
        let times: Vec<_> = outs.iter().map(|o| o.take().unwrap()).collect();
        assert!(times[0] < times[1] && times[1] < times[2]);
        // Third completes after ~3 access times: queueing is real.
        let one = DiskParams::wren_iv().access_time(1);
        assert!((times[2] - amoeba_sim::SimTime::ZERO) >= one * 3 - Duration::from_millis(1));
    }

    #[test]
    fn write_run_is_cheaper_than_separate_writes() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(128, 512);
        let srv = DiskServer::start(&sim, node, disk, DiskParams::wren_iv());
        let out = sim.spawn("app", move |ctx| {
            let t0 = ctx.now();
            srv.write_run(ctx, 0, vec![vec![1; 512]; 4]);
            let run = ctx.now() - t0;
            let t1 = ctx.now();
            for i in 0..4 {
                srv.write(ctx, 10 + i, vec![1; 512]);
            }
            let separate = ctx.now() - t1;
            (run, separate)
        });
        sim.run();
        let (run, separate) = out.take().unwrap();
        assert!(run < separate / 2, "run {run:?} vs separate {separate:?}");
    }

    #[test]
    fn head_aware_coalesces_same_block_rewrites() {
        let run = |head_aware: bool| {
            let mut sim = Simulation::new(1);
            let node = sim.add_node("m");
            let disk = VDisk::new(128, 512);
            let params = DiskParams {
                head_aware,
                ..DiskParams::wren_iv()
            };
            let srv = DiskServer::start(&sim, node, disk, params);
            let out = sim.spawn("app", move |ctx| {
                let t0 = ctx.now();
                // The pipelined commit's bracket: table block, then the
                // commit block twice over (guard + final).
                srv.write(ctx, 1, vec![1; 512]);
                srv.write(ctx, 0, vec![2; 512]);
                srv.write(ctx, 0, vec![3; 512]);
                ctx.now() - t0
            });
            sim.run();
            out.take().unwrap()
        };
        let classic = run(false);
        let aware = run(true);
        // Only the first write seeks: the rewrite of block 0 and the
        // back-to-back repeat both ride the settled head.
        let p = DiskParams::wren_iv();
        assert_eq!(classic, p.access_time(1) * 3);
        assert_eq!(aware, p.access_time(1) + p.settled_access_time(1) * 2);
    }

    #[test]
    fn partition_is_relative_and_bounded() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(128, 512);
        let srv = DiskServer::start(&sim, node, disk.clone(), DiskParams::instant());
        let part = RawPartition::new(srv, 100, 28);
        let out = sim.spawn("app", move |ctx| {
            part.write(ctx, 0, vec![42]);
            part.read(ctx, 0)[0]
        });
        sim.run();
        assert_eq!(out.take(), Some(42));
        // The write landed at absolute block 100.
        assert_eq!(disk.read_block(100)[0], 42);
    }

    #[test]
    fn disk_survives_crash_and_new_server_reads_it() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(16, 64);
        let srv = DiskServer::start(&sim, node, disk.clone(), DiskParams::instant());
        sim.spawn("writer", move |ctx| {
            srv.write(ctx, 3, vec![9]);
        });
        sim.run_for(Duration::from_millis(50));
        sim.crash_node(node);
        sim.run_for(Duration::from_millis(10));
        sim.revive_node(node);
        let srv2 = DiskServer::start(&sim, node, disk, DiskParams::instant());
        let out = sim.spawn("reader", move |ctx| srv2.read(ctx, 3)[0]);
        sim.run();
        assert_eq!(out.take(), Some(9));
    }
}

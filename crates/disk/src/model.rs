//! The disk timing model.

use std::time::Duration;

/// Timing parameters of a late-80s SCSI disk (CDC Wren IV class, as on the
/// paper's Bullet servers).
///
/// Calibrated so one small synchronous write costs ~41 ms end to end —
/// the value implied by the paper's own arithmetic (§4: an NFS
/// append-delete pair at 87 ms is two single-disk-write updates; a group
/// append-delete pair at 184 ms is four disk operations plus messages).
/// The key property for every experiment: **a disk operation costs an
/// order of magnitude more than a packet** (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct DiskParams {
    /// Average seek time (includes controller overhead).
    pub avg_seek: Duration,
    /// Average rotational latency (half a revolution at 3600 rpm).
    pub avg_rotation: Duration,
    /// Sustained media transfer rate in bytes per second.
    pub transfer_bps: u64,
    /// Block size in bytes.
    pub block_size: usize,
    /// Model the head's position between requests: a write that lands
    /// on the block the head just wrote (or the next one over) skips
    /// the seek and pays only rotation + transfer. This is what makes
    /// back-to-back commit-block writes — the pipelined group commit's
    /// guard/commit bracket around each batch — cheaper than two full
    /// random accesses, as on a real drive with an unmoved arm.
    /// `false` (the default) charges every request a full average
    /// access, the original model.
    pub head_aware: bool,
    /// Blocks reserved for the group log's journal region when the
    /// directory service's journaled commit path is enabled (see
    /// [`crate::Journal`]). Ignored — and the region not carved — when
    /// the journal is off, so the default layout is unchanged.
    pub journal_blocks: u64,
}

impl DiskParams {
    /// A Wren IV-class drive.
    pub fn wren_iv() -> Self {
        DiskParams {
            avg_seek: Duration::from_micros(28_000),
            avg_rotation: Duration::from_micros(8_300),
            transfer_bps: 1_200_000,
            block_size: 4096,
            head_aware: false,
            journal_blocks: 2048,
        }
    }

    /// A drive with negligible latency, for protocol-logic tests that do
    /// not care about timing.
    pub fn instant() -> Self {
        DiskParams {
            avg_seek: Duration::from_micros(1),
            avg_rotation: Duration::ZERO,
            transfer_bps: u64::MAX,
            block_size: 4096,
            head_aware: false,
            journal_blocks: 2048,
        }
    }

    /// Time for one random access touching `nblocks` consecutive blocks.
    pub fn access_time(&self, nblocks: usize) -> Duration {
        let bytes = (nblocks.max(1) * self.block_size) as u64;
        let transfer_nanos = if self.transfer_bps == u64::MAX {
            0
        } else {
            bytes.saturating_mul(1_000_000_000) / self.transfer_bps.max(1)
        };
        self.avg_seek + self.avg_rotation + Duration::from_nanos(transfer_nanos)
    }

    /// [`access_time`](Self::access_time) for a request the head is
    /// already positioned for (same cylinder as the previous access):
    /// no seek, just rotation + transfer.
    pub fn settled_access_time(&self, nblocks: usize) -> Duration {
        self.access_time(nblocks) - self.avg_seek
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        Self::wren_iv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wren_iv_small_write_is_about_40ms() {
        let p = DiskParams::wren_iv();
        let t = p.access_time(1);
        assert!(
            t >= Duration::from_millis(38) && t <= Duration::from_millis(43),
            "one-block access {t:?}"
        );
    }

    #[test]
    fn access_time_grows_with_blocks() {
        let p = DiskParams::wren_iv();
        assert!(p.access_time(10) > p.access_time(1));
    }

    #[test]
    fn instant_is_fast() {
        let p = DiskParams::instant();
        assert!(p.access_time(100) < Duration::from_millis(1));
    }

    #[test]
    fn zero_blocks_counts_as_one() {
        let p = DiskParams::wren_iv();
        assert_eq!(p.access_time(0), p.access_time(1));
    }

    #[test]
    fn settled_access_skips_the_seek() {
        let p = DiskParams::wren_iv();
        assert_eq!(p.settled_access_time(1) + p.avg_seek, p.access_time(1));
        assert!(p.settled_access_time(1) < Duration::from_millis(15));
    }
}

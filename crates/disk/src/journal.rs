//! The group log: a reserved journal region turning every group-commit
//! flush into **one sequential append** (§ "log-then-checkpoint", the
//! classic fix for in-place table writes on the commit path).
//!
//! ## On-disk format (disk backend)
//!
//! The journal owns a [`RawPartition`]. Block 0 is the superblock, the
//! rest is a linear log of self-delimiting records, each framed into
//! one or more consecutive blocks:
//!
//! ```text
//! superblock (block 0):
//!   [0..4)   magic  "AJSB"
//!   [4..12)  start_seq  — seq of the first live record (u64 LE)
//!   [12..20) fnv64 over bytes [0..12)
//!
//! record frame (one per block):
//!   [0..4)   magic  "AJRN"
//!   [4..12)  record seq (u64 LE, globally monotone, never reused)
//!   [12..14) frame index within the record (u16 LE)
//!   [14..16) frames in the record (u16 LE)
//!   [16..20) payload bytes in this frame (u32 LE)
//!   [20..28) fnv64 over bytes [0..20) ++ payload
//!   [28..)   payload slice
//! ```
//!
//! The **commit point is the record's last frame**: recovery scans from
//! block 1 expecting `start_seq`, `start_seq + 1`, …, verifying every
//! frame's magic, seq, index and checksum, and truncates the log at the
//! first frame that fails — a torn tail (crash mid-append) loses only
//! the unacknowledged record being written, never an acknowledged
//! prefix. Record seqs are *globally* monotone across resets (the
//! superblock's `start_seq` only ever grows), so a stale frame left by
//! a previous generation of the log can never parse as a valid
//! continuation of the current one.
//!
//! ## Reset protocol
//!
//! The checkpointer drains the journal's records into real table/Bullet
//! blocks and then calls [`Journal::try_reset`] with the seq it read
//! *before* snapshotting the dirty set: the reset only happens if no
//! record was appended since, so an append racing the checkpoint is
//! never erased — it stays in the log and its boot-time replay is
//! idempotent. A failed reset is not an error; the next checkpoint
//! retries.
//!
//! ## NVRAM backend
//!
//! With [`Journal::nvram`] the same API journals into a battery-backed
//! [`Nvram`] device instead (records keyed by seq under a reserved
//! tag): appends are atomic at the device level, so there are no torn
//! records to truncate, and a full device surfaces as [`JournalFull`]
//! exactly like a full disk region.

use std::sync::Arc;
use std::time::Duration;

use amoeba_sim::Ctx;
use parking_lot::Mutex;

use crate::nvram::{NvRecord, Nvram};
use crate::server::RawPartition;

const SUPER_MAGIC: u32 = 0x4153_4A42; // "AJSB"
const FRAME_MAGIC: u32 = 0x414A_524E; // "AJRN"
const FRAME_HEADER: usize = 28;
/// The NVRAM record tag reserved for journal records (directory object
/// numbers are small; this can collide with nothing).
const NVRAM_JOURNAL_TAG: u64 = u64::MAX;

/// Error returned by [`Journal::append`] when the record does not fit:
/// the caller must checkpoint (drain + reset) and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalFull;

impl std::fmt::Display for JournalFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("journal region is full")
    }
}

impl std::error::Error for JournalFull {}

fn fnv64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[derive(Clone)]
enum Backend {
    Disk(RawPartition),
    Nvram(Nvram),
}

struct JState {
    /// Seq of the first live record (everything older was checkpointed).
    start_seq: u64,
    /// Seq the next append will carry.
    next_seq: u64,
    /// First free block of the log area (disk backend; >= 1).
    next_block: u64,
    /// Sim-safe exclusion for append vs reset I/O: the owner holds this
    /// flag across its (blocking) disk conversation instead of an OS
    /// lock, which would freeze the simulator.
    busy: bool,
}

/// A handle to one column's journal region. Clones share the log and
/// its in-memory cursor; [`Journal::reopen`] produces a handle with a
/// *cold* cursor over the same storage (what a reboot sees) that
/// [`Journal::recover`] re-derives from the platters.
#[derive(Clone)]
pub struct Journal {
    backend: Backend,
    block_size: usize,
    state: Arc<Mutex<JState>>,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        write!(
            f,
            "Journal(seqs {}..{}, {} blocks used)",
            st.start_seq,
            st.next_seq,
            st.next_block.saturating_sub(1)
        )
    }
}

impl Journal {
    /// A journal over a disk partition (block 0 = superblock). The
    /// cursor starts cold: call [`recover`](Self::recover) before use.
    pub fn disk(partition: RawPartition) -> Journal {
        assert!(partition.len() >= 2, "journal partition too small");
        let block_size = partition.block_size();
        assert!(block_size > FRAME_HEADER, "blocks too small to frame");
        Journal {
            block_size,
            backend: Backend::Disk(partition),
            state: Arc::new(Mutex::new(JState {
                start_seq: 1,
                next_seq: 1,
                next_block: 1,
                busy: false,
            })),
        }
    }

    /// A journal over a battery-backed NVRAM device. The cursor starts
    /// cold: call [`recover`](Self::recover) before use.
    pub fn nvram(device: Nvram) -> Journal {
        Journal {
            block_size: 4096,
            backend: Backend::Nvram(device),
            state: Arc::new(Mutex::new(JState {
                start_seq: 1,
                next_seq: 1,
                next_block: 1,
                busy: false,
            })),
        }
    }

    /// A fresh handle over the same storage with a cold cursor — what a
    /// reboot of the owning machine produces (RAM state dies with the
    /// crash; the platters/NVRAM keep their bits).
    pub fn reopen(&self) -> Journal {
        Journal {
            backend: self.backend.clone(),
            block_size: self.block_size,
            state: Arc::new(Mutex::new(JState {
                start_seq: 1,
                next_seq: 1,
                next_block: 1,
                busy: false,
            })),
        }
    }

    fn acquire(&self, ctx: &Ctx) {
        loop {
            {
                let mut st = self.state.lock();
                if !st.busy {
                    st.busy = true;
                    return;
                }
            }
            ctx.sleep(Duration::from_micros(100));
        }
    }

    fn release(&self) {
        self.state.lock().busy = false;
    }

    /// Scans the log and rebuilds the cursor, returning every live
    /// record's payload in append order. Truncates at the first invalid
    /// frame (torn tail). Initializes the superblock on a virgin
    /// region. Must run before the first append after [`Self::disk`] /
    /// [`Self::nvram`] / [`Self::reopen`].
    pub fn recover(&self, ctx: &Ctx) -> Vec<Vec<u8>> {
        self.acquire(ctx);
        let out = match &self.backend {
            Backend::Disk(p) => self.recover_disk(ctx, p),
            Backend::Nvram(nv) => {
                let mut recs: Vec<NvRecord> = nv
                    .snapshot()
                    .into_iter()
                    .filter(|r| r.tag == NVRAM_JOURNAL_TAG)
                    .collect();
                recs.sort_by_key(|r| r.uid);
                let mut st = self.state.lock();
                st.start_seq = recs.first().map(|r| r.uid).unwrap_or(1);
                st.next_seq = recs.last().map(|r| r.uid + 1).unwrap_or(st.start_seq);
                recs.into_iter().map(|r| r.data).collect()
            }
        };
        self.release();
        out
    }

    fn recover_disk(&self, ctx: &Ctx, p: &RawPartition) -> Vec<Vec<u8>> {
        let sb = p.read(ctx, 0);
        let start_seq = parse_superblock(&sb).unwrap_or_else(|| {
            // Virgin region: stamp an empty log.
            p.write(ctx, 0, encode_superblock(1));
            1
        });
        let mut records = Vec::new();
        let mut expected = start_seq;
        let mut block = 1u64;
        'scan: while block < p.len() {
            let first = p.read(ctx, block);
            let head = match parse_frame(&first, expected, 0) {
                Some(h) => h,
                None => break,
            };
            let total = u64::from(head.total);
            if total == 0 || block + total > p.len() {
                break;
            }
            let mut payload = first[FRAME_HEADER..FRAME_HEADER + head.len].to_vec();
            for i in 1..head.total {
                let b = p.read(ctx, block + u64::from(i));
                match parse_frame(&b, expected, i) {
                    Some(h) => payload.extend_from_slice(&b[FRAME_HEADER..FRAME_HEADER + h.len]),
                    None => break 'scan, // torn tail: truncate here
                }
            }
            records.push(payload);
            expected += 1;
            block += total;
        }
        let mut st = self.state.lock();
        st.start_seq = start_seq;
        st.next_seq = expected;
        st.next_block = block;
        records
    }

    /// Appends one record as a single sequential run of frames and
    /// returns its seq. The record is durable (commit point passed)
    /// when this returns.
    ///
    /// # Errors
    ///
    /// [`JournalFull`] if the framed record does not fit in the free
    /// tail of the region (or the NVRAM device): checkpoint and retry.
    pub fn append(&self, ctx: &Ctx, payload: &[u8]) -> Result<u64, JournalFull> {
        self.acquire(ctx);
        let r = self.append_locked(ctx, payload);
        self.release();
        r
    }

    fn append_locked(&self, ctx: &Ctx, payload: &[u8]) -> Result<u64, JournalFull> {
        match &self.backend {
            Backend::Nvram(nv) => {
                let seq = self.state.lock().next_seq;
                let rec = NvRecord {
                    uid: seq,
                    tag: NVRAM_JOURNAL_TAG,
                    data: payload.to_vec(),
                };
                match nv.append(ctx, rec) {
                    Ok(()) => {
                        self.state.lock().next_seq = seq + 1;
                        Ok(seq)
                    }
                    Err(_) => Err(JournalFull),
                }
            }
            Backend::Disk(p) => {
                let per_frame = self.block_size - FRAME_HEADER;
                let total = payload.len().div_ceil(per_frame).max(1);
                let (seq, start) = {
                    let st = self.state.lock();
                    if st.next_block + total as u64 > p.len() {
                        return Err(JournalFull);
                    }
                    (st.next_seq, st.next_block)
                };
                let frames: Vec<Vec<u8>> = (0..total)
                    .map(|i| {
                        let chunk = &payload[i * per_frame..payload.len().min((i + 1) * per_frame)];
                        encode_frame(seq, i as u16, total as u16, chunk)
                    })
                    .collect();
                p.write_run(ctx, start, frames);
                let mut st = self.state.lock();
                st.next_seq = seq + 1;
                st.next_block = start + total as u64;
                Ok(seq)
            }
        }
    }

    /// The seq the next append will carry. The checkpointer reads this
    /// *before* snapshotting the dirty set and passes it to
    /// [`try_reset`](Self::try_reset): records appended in between are
    /// then provably not covered and survive the reset.
    pub fn next_seq(&self) -> u64 {
        self.state.lock().next_seq
    }

    /// Empties the log iff no record was appended since `mark` was read
    /// via [`next_seq`](Self::next_seq). Returns whether the reset
    /// happened. Seqs keep growing across resets.
    pub fn try_reset(&self, ctx: &Ctx, mark: u64) -> bool {
        self.acquire(ctx);
        let ok = {
            let st = self.state.lock();
            st.next_seq == mark
        };
        if ok {
            self.reset_locked(ctx, mark);
        }
        self.release();
        ok
    }

    /// Unconditionally empties the log (a freshly installed snapshot
    /// re-persisted the whole state, so every record is stale). The
    /// caller must have quiesced appenders.
    pub fn reset(&self, ctx: &Ctx) {
        self.acquire(ctx);
        let mark = self.state.lock().next_seq;
        self.reset_locked(ctx, mark);
        self.release();
    }

    fn reset_locked(&self, ctx: &Ctx, mark: u64) {
        match &self.backend {
            Backend::Disk(p) => {
                p.write(ctx, 0, encode_superblock(mark));
                let mut st = self.state.lock();
                st.start_seq = mark;
                st.next_block = 1;
            }
            Backend::Nvram(nv) => {
                nv.annihilate(|r| r.tag == NVRAM_JOURNAL_TAG && r.uid < mark);
                self.state.lock().start_seq = mark;
            }
        }
    }

    /// Live records in the log.
    pub fn depth(&self) -> u64 {
        let st = self.state.lock();
        st.next_seq - st.start_seq
    }

    /// Fill fraction of the region in `[0, 1]` (the checkpoint
    /// high-water signal).
    pub fn fill_fraction(&self) -> f64 {
        match &self.backend {
            Backend::Disk(p) => {
                let used = self.state.lock().next_block.saturating_sub(1);
                used as f64 / (p.len() - 1).max(1) as f64
            }
            Backend::Nvram(nv) => nv.fill_fraction(),
        }
    }

    /// Whether the backend is the NVRAM device (diagnostics/benches).
    pub fn is_nvram(&self) -> bool {
        matches!(self.backend, Backend::Nvram(_))
    }
}

struct FrameHead {
    total: u16,
    len: usize,
}

fn encode_superblock(start_seq: u64) -> Vec<u8> {
    let mut b = vec![0u8; 20];
    b[0..4].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
    b[4..12].copy_from_slice(&start_seq.to_le_bytes());
    let crc = fnv64(&[&b[0..12]]);
    b[12..20].copy_from_slice(&crc.to_le_bytes());
    b
}

fn parse_superblock(b: &[u8]) -> Option<u64> {
    if b.len() < 20 {
        return None;
    }
    if u32::from_le_bytes(b[0..4].try_into().ok()?) != SUPER_MAGIC {
        return None;
    }
    if fnv64(&[&b[0..12]]) != u64::from_le_bytes(b[12..20].try_into().ok()?) {
        return None;
    }
    Some(u64::from_le_bytes(b[4..12].try_into().ok()?))
}

fn encode_frame(seq: u64, idx: u16, total: u16, payload: &[u8]) -> Vec<u8> {
    let mut b = Vec::with_capacity(FRAME_HEADER + payload.len());
    b.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    b.extend_from_slice(&seq.to_le_bytes());
    b.extend_from_slice(&idx.to_le_bytes());
    b.extend_from_slice(&total.to_le_bytes());
    b.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = fnv64(&[&b[0..20], payload]);
    b.extend_from_slice(&crc.to_le_bytes());
    b.extend_from_slice(payload);
    b
}

fn parse_frame(b: &[u8], expect_seq: u64, expect_idx: u16) -> Option<FrameHead> {
    if b.len() < FRAME_HEADER {
        return None;
    }
    if u32::from_le_bytes(b[0..4].try_into().ok()?) != FRAME_MAGIC {
        return None;
    }
    if u64::from_le_bytes(b[4..12].try_into().ok()?) != expect_seq {
        return None;
    }
    if u16::from_le_bytes(b[12..14].try_into().ok()?) != expect_idx {
        return None;
    }
    let total = u16::from_le_bytes(b[14..16].try_into().ok()?);
    let len = u32::from_le_bytes(b[16..20].try_into().ok()?) as usize;
    if len > b.len() - FRAME_HEADER {
        return None;
    }
    let crc = u64::from_le_bytes(b[20..28].try_into().ok()?);
    if fnv64(&[&b[0..20], &b[FRAME_HEADER..FRAME_HEADER + len]]) != crc {
        return None;
    }
    Some(FrameHead { total, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiskParams, DiskServer, VDisk};
    use amoeba_sim::Simulation;

    fn setup(sim: &mut Simulation) -> (Journal, VDisk) {
        let node = sim.add_node("m");
        let disk = VDisk::new(64, 4096);
        let srv = DiskServer::start(sim, node, disk.clone(), DiskParams::instant());
        let part = RawPartition::new(srv, 0, 64);
        (Journal::disk(part), disk)
    }

    #[test]
    fn append_recover_round_trip() {
        let mut sim = Simulation::new(1);
        let (j, _) = setup(&mut sim);
        let j2 = j.clone();
        let out = sim.spawn("w", move |ctx| {
            j2.recover(ctx);
            let a = j2.append(ctx, b"first").unwrap();
            let b = j2.append(ctx, &vec![7u8; 10_000]).unwrap(); // multi-frame
            let c = j2.append(ctx, b"third").unwrap();
            (a, b, c)
        });
        sim.run();
        assert_eq!(out.take(), Some((1, 2, 3)));
        // A cold reopen (reboot) re-derives the same records.
        let r = j.reopen();
        let out = sim.spawn("boot", move |ctx| r.recover(ctx));
        sim.run();
        let recs = out.take().unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0], b"first");
        assert_eq!(recs[1], vec![7u8; 10_000]);
        assert_eq!(recs[2], b"third");
    }

    #[test]
    fn torn_tail_truncates_acked_prefix_survives() {
        let mut sim = Simulation::new(1);
        let (j, disk) = setup(&mut sim);
        let j2 = j.clone();
        sim.spawn("w", move |ctx| {
            j2.recover(ctx);
            j2.append(ctx, b"acked").unwrap();
            j2.append(ctx, &vec![9u8; 9_000]).unwrap(); // frames in blocks 2..4
        });
        sim.run();
        // Simulate a crash mid-append of record 2: corrupt its last
        // frame (in-sim the run write is atomic, so the tear is staged
        // by hand on the platters).
        let mut torn = disk.read_block(3);
        torn[40] ^= 0xFF;
        disk.write_block(3, &torn);
        let r = j.reopen();
        let r2 = r.clone();
        let out = sim.spawn("boot", move |ctx| {
            let recs = r2.recover(ctx);
            // The log must be appendable again right where it truncated.
            let seq = r2.append(ctx, b"after").unwrap();
            (recs, seq)
        });
        sim.run();
        let (recs, seq) = out.take().unwrap();
        assert_eq!(recs, vec![b"acked".to_vec()]);
        assert_eq!(seq, 2, "the torn record's seq is reused for the rewrite");
        let r3 = r.reopen();
        let out = sim.spawn("boot2", move |ctx| r3.recover(ctx));
        sim.run();
        assert_eq!(
            out.take().unwrap(),
            vec![b"acked".to_vec(), b"after".to_vec()]
        );
    }

    #[test]
    fn try_reset_only_when_unmarked_appends_absent() {
        let mut sim = Simulation::new(1);
        let (j, _) = setup(&mut sim);
        let j2 = j.clone();
        let out = sim.spawn("w", move |ctx| {
            j2.recover(ctx);
            j2.append(ctx, b"a").unwrap();
            let stale_mark = j2.next_seq();
            j2.append(ctx, b"b").unwrap(); // appended after the mark
            let failed = !j2.try_reset(ctx, stale_mark);
            let fresh_mark = j2.next_seq();
            let ok = j2.try_reset(ctx, fresh_mark);
            (failed, ok, j2.depth())
        });
        sim.run();
        assert_eq!(out.take(), Some((true, true, 0)));
        // After the reset, a reboot sees an empty log and new appends
        // keep globally monotone seqs (stale frames never re-parse).
        let r = j.reopen();
        let out = sim.spawn("boot", move |ctx| {
            let recs = r.recover(ctx);
            let seq = r.append(ctx, b"c").unwrap();
            (recs.len(), seq)
        });
        sim.run();
        assert_eq!(out.take(), Some((0, 3)));
    }

    #[test]
    fn full_region_errors_until_reset() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(4, 4096); // superblock + 3 log blocks
        let srv = DiskServer::start(&sim, node, disk, DiskParams::instant());
        let j = Journal::disk(RawPartition::new(srv, 0, 4));
        let out = sim.spawn("w", move |ctx| {
            j.recover(ctx);
            j.append(ctx, &[1; 100]).unwrap();
            j.append(ctx, &[2; 100]).unwrap();
            j.append(ctx, &[3; 100]).unwrap();
            let full = j.append(ctx, &[4; 100]) == Err(JournalFull);
            let mark = j.next_seq();
            j.try_reset(ctx, mark);
            let ok = j.append(ctx, &[4; 100]).is_ok();
            (full, ok)
        });
        sim.run();
        assert_eq!(out.take(), Some((true, true)));
    }

    #[test]
    fn nvram_backend_round_trips_and_resets() {
        let mut sim = Simulation::new(1);
        let nv = Nvram::new(64 * 1024, Duration::ZERO);
        let j = Journal::nvram(nv.clone());
        let j2 = j.clone();
        let out = sim.spawn("w", move |ctx| {
            j2.recover(ctx);
            j2.append(ctx, b"one").unwrap();
            j2.append(ctx, b"two").unwrap();
            j2.depth()
        });
        sim.run();
        assert_eq!(out.take(), Some(2));
        let r = j.reopen();
        let r2 = r.clone();
        let out = sim.spawn("boot", move |ctx| {
            let recs = r2.recover(ctx);
            let mark = r2.next_seq();
            let ok = r2.try_reset(ctx, mark);
            (recs, ok, r2.depth())
        });
        sim.run();
        let (recs, ok, depth) = out.take().unwrap();
        assert_eq!(recs, vec![b"one".to_vec(), b"two".to_vec()]);
        assert!(ok);
        assert_eq!(depth, 0);
        assert_eq!(
            nv.snapshot()
                .iter()
                .filter(|r| r.tag == NVRAM_JOURNAL_TAG)
                .count(),
            0
        );
    }

    #[test]
    fn append_is_one_seek() {
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let disk = VDisk::new(64, 4096);
        let params = DiskParams {
            head_aware: true,
            ..DiskParams::wren_iv()
        };
        let srv = DiskServer::start(&sim, node, disk.clone(), params);
        let j = Journal::disk(RawPartition::new(srv, 0, 64));
        sim.spawn("w", move |ctx| {
            j.recover(ctx);
            j.append(ctx, &vec![5u8; 9_000]).unwrap();
            j.append(ctx, &vec![6u8; 9_000]).unwrap();
        });
        sim.run();
        // Recovery: superblock read (+1 write on the virgin region),
        // then each multi-frame append is one sequential run — and the
        // second lands where the head already is (settled, no seek).
        let seeks = disk.stats().seeks;
        assert!(seeks <= 3, "journal appends should not seek: {seeks}");
    }
}

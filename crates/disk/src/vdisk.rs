//! The persistent virtual disk: raw block storage that survives machine
//! crashes (only processes die; the platters keep their bits).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// Counters of physical operations performed on a disk — the §3.1
/// cost-analysis currency ("disk operations per directory update").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Read operations served.
    pub reads: u64,
    /// Write operations served.
    pub writes: u64,
    /// Blocks transferred in either direction.
    pub blocks: u64,
    /// Accesses that paid a head repositioning (full seek + rotation).
    /// The serving process charges one per request the head was not
    /// already settled on, so `seeks / flush runs` is the group log's
    /// headline metric: a journaled run should cost ~1 where the
    /// region-phased flush pays one per region.
    pub seeks: u64,
}

impl DiskStats {
    /// Counter-wise difference `self - earlier`.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            blocks: self.blocks.saturating_sub(earlier.blocks),
            seeks: self.seeks.saturating_sub(earlier.seeks),
        }
    }
}

struct VDiskInner {
    blocks: HashMap<u64, Vec<u8>>,
    nblocks: u64,
    block_size: usize,
    stats: DiskStats,
}

/// A crash-persistent block device. Cloning shares the same platters.
///
/// `VDisk` itself is *timeless* raw storage; timing and serialization are
/// imposed by the [`DiskServer`](crate::DiskServer) process in front of it.
#[derive(Clone)]
pub struct VDisk {
    inner: Arc<Mutex<VDiskInner>>,
}

impl std::fmt::Debug for VDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let i = self.inner.lock();
        write!(f, "VDisk({} blocks of {}B)", i.nblocks, i.block_size)
    }
}

impl VDisk {
    /// Creates an empty disk of `nblocks` blocks of `block_size` bytes.
    pub fn new(nblocks: u64, block_size: usize) -> Self {
        VDisk {
            inner: Arc::new(Mutex::new(VDiskInner {
                blocks: HashMap::new(),
                nblocks,
                block_size,
                stats: DiskStats::default(),
            })),
        }
    }

    /// Number of blocks.
    pub fn nblocks(&self) -> u64 {
        self.inner.lock().nblocks
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.inner.lock().block_size
    }

    /// Reads a block (unwritten blocks read as zeroes).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn read_block(&self, block: u64) -> Vec<u8> {
        let mut i = self.inner.lock();
        assert!(block < i.nblocks, "read past end of disk");
        i.stats.reads += 1;
        i.stats.blocks += 1;
        let size = i.block_size;
        i.blocks
            .get(&block)
            .cloned()
            .unwrap_or_else(|| vec![0; size])
    }

    /// Writes a block (shorter data is zero-padded).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or `data` exceeds the block size.
    pub fn write_block(&self, block: u64, data: &[u8]) {
        let mut i = self.inner.lock();
        assert!(block < i.nblocks, "write past end of disk");
        assert!(data.len() <= i.block_size, "data larger than block");
        i.stats.writes += 1;
        i.stats.blocks += 1;
        let mut buf = data.to_vec();
        buf.resize(i.block_size, 0);
        i.blocks.insert(block, buf);
    }

    /// Physical-operation counters.
    pub fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }

    /// Records one head repositioning (called by the serving process
    /// when it charges a non-settled access).
    pub fn note_seek(&self) {
        self.inner.lock().stats.seeks += 1;
    }

    /// Wipes the disk (a "head crash" for recovery experiments).
    pub fn destroy_contents(&self) {
        self.inner.lock().blocks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_blocks_read_zero() {
        let d = VDisk::new(10, 64);
        assert_eq!(d.read_block(3), vec![0; 64]);
    }

    #[test]
    fn write_then_read_round_trips_with_padding() {
        let d = VDisk::new(10, 8);
        d.write_block(1, &[1, 2, 3]);
        assert_eq!(d.read_block(1), vec![1, 2, 3, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn contents_shared_across_clones() {
        let d = VDisk::new(4, 8);
        let d2 = d.clone();
        d.write_block(0, &[9]);
        assert_eq!(d2.read_block(0)[0], 9);
    }

    #[test]
    fn stats_count_ops() {
        let d = VDisk::new(4, 8);
        d.write_block(0, &[1]);
        d.write_block(1, &[2]);
        let _ = d.read_block(0);
        let s = d.stats();
        assert_eq!((s.reads, s.writes, s.blocks), (1, 2, 3));
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn out_of_range_read_panics() {
        VDisk::new(2, 8).read_block(2);
    }

    #[test]
    #[should_panic(expected = "larger than block")]
    fn oversized_write_panics() {
        VDisk::new(2, 4).write_block(0, &[0; 5]);
    }

    #[test]
    fn destroy_contents_zeroes_everything() {
        let d = VDisk::new(2, 4);
        d.write_block(0, &[7; 4]);
        d.destroy_contents();
        assert_eq!(d.read_block(0), vec![0; 4]);
    }
}

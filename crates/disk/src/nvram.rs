//! Battery-backed NVRAM: the paper's §4.1 fast-commit medium.
//!
//! A small (24 KB in the paper) byte-budgeted log of update records.
//! Appending is much cheaper than a disk write but still charged (the
//! paper's numbers imply a few milliseconds per logged update on their
//! VME-attached part). Records survive crashes. Two special behaviours the
//! paper highlights:
//!
//! * **Annihilation** (§4.1 `/tmp` discussion): if an *append* record is
//!   still in NVRAM when the matching *delete* arrives, both are removed
//!   without ever touching the disk.
//! * **Background flush**: when the device fills up (or the server idles),
//!   records are applied to disk and removed.

use std::sync::Arc;
use std::time::Duration;

use amoeba_sim::Ctx;
use parking_lot::Mutex;

/// One record in the NVRAM log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NvRecord {
    /// Caller-assigned unique id, so a flusher can remove exactly the
    /// records it has safely written to disk.
    pub uid: u64,
    /// Application-defined kind/key (the directory service stores the
    /// object number here).
    pub tag: u64,
    /// Opaque record bytes.
    pub data: Vec<u8>,
}

impl NvRecord {
    fn cost(&self) -> usize {
        // Uid + tag + length header + payload.
        24 + self.data.len()
    }
}

/// Counters for NVRAM behaviour (annihilations are the headline effect).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvramStats {
    /// Records appended.
    pub appends: u64,
    /// Records removed by annihilation before reaching the disk.
    pub annihilated: u64,
    /// Records drained to the flusher.
    pub flushed: u64,
}

struct NvramInner {
    records: Vec<NvRecord>,
    used: usize,
    capacity: usize,
    stats: NvramStats,
}

/// A crash-persistent NVRAM log. Clones share the device.
#[derive(Clone)]
pub struct Nvram {
    inner: Arc<Mutex<NvramInner>>,
    write_latency: Duration,
}

impl std::fmt::Debug for Nvram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let i = self.inner.lock();
        write!(f, "Nvram({}/{} bytes)", i.used, i.capacity)
    }
}

/// Error returned when a record does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvramFull;

impl std::fmt::Display for NvramFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("nvram is full")
    }
}

impl std::error::Error for NvramFull {}

impl Nvram {
    /// The paper's device: 24 KB. The per-append latency is calibrated to
    /// the paper's own arithmetic (§4.2: processing an append-delete pair
    /// takes ~22 ms server-side, of which the group send is ~4 ms and CPU
    /// ~1 ms per update, leaving ~5–6 ms per logged record on their
    /// VME-attached part) plus controller overhead observed end-to-end
    /// (27 ms per pair at the client, Fig. 7).
    pub fn paper_24k() -> Self {
        Self::new(24 * 1024, Duration::from_micros(10_000))
    }

    /// Creates a device with explicit capacity and per-append latency.
    pub fn new(capacity: usize, write_latency: Duration) -> Self {
        Nvram {
            inner: Arc::new(Mutex::new(NvramInner {
                records: Vec::new(),
                used: 0,
                capacity,
                stats: NvramStats::default(),
            })),
            write_latency,
        }
    }

    /// Appends a record, charging the device's write latency.
    ///
    /// # Errors
    ///
    /// [`NvramFull`] if the record does not fit; the caller should flush
    /// to disk and retry.
    pub fn append(&self, ctx: &Ctx, record: NvRecord) -> Result<(), NvramFull> {
        {
            let i = self.inner.lock();
            if i.used + record.cost() > i.capacity {
                return Err(NvramFull);
            }
        }
        ctx.sleep(self.write_latency);
        let mut i = self.inner.lock();
        // Re-check after the sleep (another thread may have appended).
        if i.used + record.cost() > i.capacity {
            return Err(NvramFull);
        }
        i.used += record.cost();
        i.stats.appends += 1;
        i.records.push(record);
        Ok(())
    }

    /// Whether a record would fit right now.
    pub fn would_fit(&self, record: &NvRecord) -> bool {
        let i = self.inner.lock();
        i.used + record.cost() <= i.capacity
    }

    /// Removes all records matching `pred`, returning how many were
    /// annihilated. Free: no device time is charged (the controller just
    /// invalidates entries).
    pub fn annihilate(&self, pred: impl Fn(&NvRecord) -> bool) -> usize {
        let mut i = self.inner.lock();
        let before = i.records.len();
        let mut freed = 0;
        i.records.retain(|r| {
            if pred(r) {
                freed += r.cost();
                false
            } else {
                true
            }
        });
        let removed = before - i.records.len();
        i.used -= freed;
        i.stats.annihilated += removed as u64;
        removed
    }

    /// Drains every record (oldest first) for flushing to disk.
    pub fn drain_all(&self) -> Vec<NvRecord> {
        let mut i = self.inner.lock();
        i.used = 0;
        let drained = std::mem::take(&mut i.records);
        i.stats.flushed += drained.len() as u64;
        drained
    }

    /// A snapshot of the records currently logged (crash recovery replays
    /// these).
    pub fn snapshot(&self) -> Vec<NvRecord> {
        self.inner.lock().records.clone()
    }

    /// Bytes in use.
    pub fn used(&self) -> usize {
        self.inner.lock().used
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Fill fraction in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        let i = self.inner.lock();
        if i.capacity == 0 {
            1.0
        } else {
            i.used as f64 / i.capacity as f64
        }
    }

    /// Behaviour counters.
    pub fn stats(&self) -> NvramStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_sim::Simulation;

    fn rec(tag: u64, len: usize) -> NvRecord {
        NvRecord {
            uid: tag,
            tag,
            data: vec![0; len],
        }
    }

    #[test]
    fn append_charges_latency_and_stores() {
        let mut sim = Simulation::new(1);
        let nv = Nvram::new(1024, Duration::from_millis(5));
        let nv2 = nv.clone();
        let out = sim.spawn("w", move |ctx| {
            nv2.append(ctx, rec(1, 10)).unwrap();
            ctx.now()
        });
        sim.run();
        assert_eq!(out.take(), Some(amoeba_sim::SimTime::from_millis(5)));
        assert_eq!(nv.snapshot().len(), 1);
        assert_eq!(nv.used(), 34);
    }

    #[test]
    fn full_device_rejects() {
        let mut sim = Simulation::new(1);
        let nv = Nvram::new(50, Duration::ZERO);
        let nv2 = nv.clone();
        let out = sim.spawn("w", move |ctx| {
            let a = nv2.append(ctx, rec(1, 10)).is_ok(); // 34 bytes
            let b = nv2.append(ctx, rec(2, 10)).is_err(); // would be 68
            (a, b)
        });
        sim.run();
        assert_eq!(out.take(), Some((true, true)));
    }

    #[test]
    fn annihilation_frees_space_without_device_time() {
        let mut sim = Simulation::new(1);
        let nv = Nvram::new(1024, Duration::ZERO);
        let nv2 = nv.clone();
        sim.spawn("w", move |ctx| {
            nv2.append(ctx, rec(7, 4)).unwrap();
            nv2.append(ctx, rec(8, 4)).unwrap();
        });
        sim.run();
        let removed = nv.annihilate(|r| r.tag == 7);
        assert_eq!(removed, 1);
        assert_eq!(nv.snapshot().len(), 1);
        assert_eq!(nv.stats().annihilated, 1);
        assert_eq!(nv.used(), 28);
    }

    #[test]
    fn drain_returns_fifo_and_empties() {
        let mut sim = Simulation::new(1);
        let nv = Nvram::new(1024, Duration::ZERO);
        let nv2 = nv.clone();
        sim.spawn("w", move |ctx| {
            for t in 0..4 {
                nv2.append(ctx, rec(t, 1)).unwrap();
            }
        });
        sim.run();
        let drained = nv.drain_all();
        assert_eq!(
            drained.iter().map(|r| r.tag).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(nv.used(), 0);
        assert_eq!(nv.stats().flushed, 4);
    }

    #[test]
    fn contents_survive_simulated_crash() {
        // The Nvram object is plain shared state: a "crash" only kills
        // processes. A fresh process sees the old records.
        let mut sim = Simulation::new(1);
        let node = sim.add_node("m");
        let nv = Nvram::new(1024, Duration::ZERO);
        let nv2 = nv.clone();
        sim.spawn_on(node, "w", move |ctx| {
            nv2.append(ctx, rec(5, 3)).unwrap();
            ctx.sleep(Duration::from_secs(10));
        });
        sim.run_for(Duration::from_millis(10));
        sim.crash_node(node);
        sim.run_for(Duration::from_millis(10));
        assert_eq!(nv.snapshot().len(), 1);
        assert_eq!(nv.snapshot()[0].tag, 5);
    }

    #[test]
    fn fill_fraction_tracks_usage() {
        let mut sim = Simulation::new(1);
        let nv = Nvram::new(100, Duration::ZERO);
        assert_eq!(nv.fill_fraction(), 0.0);
        let nv2 = nv.clone();
        sim.spawn("w", move |ctx| {
            nv2.append(ctx, rec(1, 26)).unwrap(); // cost 50
        });
        sim.run();
        assert!((nv.fill_fraction() - 0.5).abs() < 1e-9);
    }
}

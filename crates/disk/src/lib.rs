//! # amoeba-disk — the simulated storage subsystem
//!
//! Everything below the Bullet server and the directory service's raw
//! partition in the paper's Fig. 3:
//!
//! * [`DiskParams`] — a Wren IV-class timing model (one small synchronous
//!   write ≈ 41 ms, an order of magnitude above a packet: the §3.1 cost
//!   ratio every experiment depends on).
//! * [`VDisk`] — crash-persistent raw blocks (platters survive reboots).
//! * [`DiskServer`] — the per-machine process that serializes access and
//!   charges the model; [`RawPartition`] carves out the directory
//!   service's commit-block + object-table area.
//! * [`Nvram`] — the 24 KB battery-backed log of §4.1, with append/delete
//!   annihilation and background-flush support.
//! * [`Journal`] — the group log's reserved journal region: checksummed,
//!   self-delimiting records appended sequentially (~1 seek per commit),
//!   drained by a background checkpointer, replayed at boot.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod journal;
mod model;
mod nvram;
mod server;
mod vdisk;

pub use journal::{Journal, JournalFull};
pub use model::DiskParams;
pub use nvram::{NvRecord, Nvram, NvramFull, NvramStats};
pub use server::{DiskServer, RawPartition};
pub use vdisk::{DiskStats, VDisk};

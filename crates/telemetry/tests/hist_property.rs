//! Seeded property tests pitting [`Hist`] against a sorted-vector
//! oracle.
//!
//! The histogram's contract is exact, not approximate: a percentile is
//! the upper bound of the bucket holding rank `ceil(p/100 · count)`,
//! which equals the rank-th element of the *quantized* observation
//! stream in sorted order ([`Hist::quantize`] exposes the bucketing so
//! the oracle can predict it). That lets the oracle use `assert_eq!`
//! across arbitrary value mixes, split points, and merges instead of
//! tolerance bands.

use amoeba_telemetry::Hist;
use amoeba_testkit::{check, Gen};

/// What the histogram must report for percentile `p` over `values`:
/// the rank-th smallest quantized observation.
fn oracle(values: &[u64], p: f64) -> u64 {
    let mut q: Vec<u64> = values.iter().map(|&v| Hist::quantize(v)).collect();
    q.sort_unstable();
    let rank = ((p / 100.0) * q.len() as f64).ceil().max(1.0) as usize;
    q[rank.min(q.len()) - 1]
}

/// A value stream spanning many magnitudes (unit buckets, mid-range
/// latencies, and near-overflow outliers all land in different bucket
/// regimes).
fn arbitrary_values(g: &mut Gen) -> Vec<u64> {
    let n = 1 + g.below(300);
    (0..n).map(|_| g.u64() >> g.below(64)).collect()
}

#[test]
fn percentiles_match_sorted_vector_oracle() {
    check("hist percentiles vs oracle", 128, |g: &mut Gen| {
        let values = arbitrary_values(g);
        let mut h = Hist::default();
        for &v in &values {
            h.record(v);
        }
        assert_eq!(h.count, values.len() as u64);
        assert_eq!(h.max, *values.iter().max().unwrap());
        assert_eq!(h.sum, values.iter().fold(0u64, |a, &v| a.saturating_add(v)));
        for p in [0.0, 1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), oracle(&values, p), "p{p}");
        }
    });
}

#[test]
fn merge_matches_oracle_over_combined_stream() {
    check("hist merge vs oracle", 128, |g: &mut Gen| {
        let values = arbitrary_values(g);
        let split = g.below(values.len() + 1);
        let (left, right) = values.split_at(split);
        let mut a = Hist::default();
        for &v in left {
            a.record(v);
        }
        let mut b = Hist::default();
        for &v in right {
            b.record(v);
        }
        a.merge(&b);
        let mut whole = Hist::default();
        for &v in &values {
            whole.record(v);
        }
        assert_eq!(a, whole, "merge must equal combined recording");
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(a.percentile(p), oracle(&values, p), "p{p} after merge");
        }
    });
}

#[test]
fn quantization_error_is_bounded() {
    check("hist relative error", 128, |g: &mut Gen| {
        let v = g.u64() >> g.below(64);
        let q = Hist::quantize(v);
        assert!(q >= v, "quantized value must not under-report");
        let rel = (q - v) as f64 / (v.max(1)) as f64;
        assert!(rel <= 1.0 / 16.0 + 1e-9, "v={v} q={q} rel={rel}");
    });
}

//! Chrome trace-event / Perfetto JSON export and validation.
//!
//! Emits the `traceEvents` object format: per-machine `process_name`
//! metadata (`ph:"M"`), `ph:"X"` complete slices with microsecond `ts` /
//! `dur`, and `ph:"s"` / `ph:"f"` (`bp:"e"`) flow-event pairs for every
//! traced packet edge. Flow endpoints must lie *inside* a slice on their
//! track to render, so each edge also emits a pair of 1 µs `net:tx` /
//! `net:rx` anchor slices. Timestamps are **simulated** microseconds.

use crate::json::{parse, Value};
use crate::{FlowRec, SpanRec};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn us(t: amoeba_sim::SimTime) -> f64 {
    // Round to 1 ns so the JSON stays compact and deterministic.
    (t.as_micros_f64() * 1e3).round() / 1e3
}

pub(crate) fn chrome_json(
    spans: &[SpanRec],
    flows: &[FlowRec],
    tracks: &[(u64, String)],
) -> String {
    let mut ev: Vec<String> = Vec::with_capacity(tracks.len() + spans.len() + 4 * flows.len());
    for (machine, name) in tracks {
        ev.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{machine},\"tid\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
    }
    for s in spans {
        let start = us(s.start);
        let dur = s.end.map_or(0.0, |e| us(e) - start);
        ev.push(format!(
            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"span\",\"pid\":{},\"tid\":0,\
             \"ts\":{start},\"dur\":{dur},\"args\":{{\"trace\":\"{:x}\",\"span\":\"{:x}\",\
             \"parent\":\"{:x}\"}}}}",
            esc(&s.name),
            s.machine,
            s.trace,
            s.span,
            s.parent
        ));
    }
    for (i, f) in flows.iter().enumerate() {
        let (tx, rx) = (us(f.sent_at), us(f.delivered_at));
        let id = i as u64 + 1;
        ev.push(format!(
            "{{\"ph\":\"X\",\"name\":\"net:tx\",\"cat\":\"net\",\"pid\":{},\"tid\":0,\
             \"ts\":{tx},\"dur\":1}}",
            f.src_machine
        ));
        ev.push(format!(
            "{{\"ph\":\"s\",\"name\":\"net\",\"cat\":\"net\",\"id\":{id},\"pid\":{},\"tid\":0,\
             \"ts\":{tx}}}",
            f.src_machine
        ));
        ev.push(format!(
            "{{\"ph\":\"X\",\"name\":\"net:rx\",\"cat\":\"net\",\"pid\":{},\"tid\":0,\
             \"ts\":{rx},\"dur\":1}}",
            f.dst_machine
        ));
        ev.push(format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"net\",\"cat\":\"net\",\"id\":{id},\
             \"pid\":{},\"tid\":0,\"ts\":{rx}}}",
            f.dst_machine
        ));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Summary of a parsed-and-validated Chrome trace export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFileSummary {
    pub events: usize,
    pub slices: usize,
    pub flow_pairs: usize,
    pub tracks: usize,
    /// `(roots, orphans, machines)` per trace id found in slice args,
    /// sorted by trace id.
    pub trees: Vec<(u64, (usize, usize, usize))>,
}

/// Parses exported Chrome trace JSON with the in-crate parser and checks
/// the invariants CI relies on: every event has `ph`/`ts`(or is `M`)/
/// `pid`/`tid`; every flow step (`ph:"s"`) has a matching finish
/// (`ph:"f"` with `bp:"e"`) under the same id, each anchored inside a
/// slice on its own track; and span parent pointers resolve within their
/// trace. Returns a summary or the first violation.
pub fn validate_chrome_trace(text: &str) -> Result<TraceFileSummary, String> {
    let root = parse(text)?;
    let Some(events) = root.get("traceEvents").and_then(Value::as_array) else {
        return Err("missing traceEvents array".into());
    };

    let mut slices: Vec<(u64, f64, f64)> = Vec::new(); // (pid, ts, dur)
    let mut spans: Vec<(u64, u64, u64)> = Vec::new(); // (trace, span, parent)
    let mut machines_by_span: Vec<(u64, u64)> = Vec::new();
    let mut flow_s: Vec<(u64, u64, f64)> = Vec::new(); // (id, pid, ts)
    let mut flow_f: Vec<(u64, u64, f64)> = Vec::new();
    let mut tracks = 0usize;

    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = e
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        e.get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        if ph == "M" {
            tracks += 1;
            continue;
        }
        let ts = e
            .get("ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("event {i}: X slice missing dur"))?;
                slices.push((pid, ts, dur));
                if let Some(args) = e.get("args") {
                    let hex = |k: &str| {
                        args.get(k)
                            .and_then(Value::as_str)
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                    };
                    if let (Some(t), Some(s), Some(p)) = (hex("trace"), hex("span"), hex("parent"))
                    {
                        spans.push((t, s, p));
                        machines_by_span.push((s, pid));
                    }
                }
            }
            "s" => {
                let id = e
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: flow step missing id"))?;
                flow_s.push((id, pid, ts));
            }
            "f" => {
                if e.get("bp").and_then(Value::as_str) != Some("e") {
                    return Err(format!("event {i}: flow finish missing bp:\"e\""));
                }
                let id = e
                    .get("id")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("event {i}: flow finish missing id"))?;
                flow_f.push((id, pid, ts));
            }
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }

    let anchored = |pid: u64, ts: f64| {
        slices
            .iter()
            .any(|&(p, s, d)| p == pid && ts >= s && ts <= s + d)
    };
    for &(id, pid, ts) in &flow_s {
        if !flow_f.iter().any(|&(fid, ..)| fid == id) {
            return Err(format!("flow {id}: step without finish"));
        }
        if !anchored(pid, ts) {
            return Err(format!("flow {id}: step not anchored in a slice"));
        }
    }
    for &(id, pid, ts) in &flow_f {
        if !flow_s.iter().any(|&(sid, ..)| sid == id) {
            return Err(format!("flow {id}: finish without step"));
        }
        if !anchored(pid, ts) {
            return Err(format!("flow {id}: finish not anchored in a slice"));
        }
    }

    let mut trace_ids: Vec<u64> = spans.iter().map(|&(t, ..)| t).collect();
    trace_ids.sort_unstable();
    trace_ids.dedup();
    let mut trees = Vec::new();
    for t in trace_ids {
        let ids: std::collections::HashSet<u64> = spans
            .iter()
            .filter(|&&(tt, ..)| tt == t)
            .map(|&(_, s, _)| s)
            .collect();
        let mut roots = 0;
        let mut orphans = 0;
        let mut machines = std::collections::HashSet::new();
        for &(tt, s, p) in &spans {
            if tt != t {
                continue;
            }
            if p == 0 {
                roots += 1;
            } else if !ids.contains(&p) {
                orphans += 1;
            }
            if let Some(&(_, m)) = machines_by_span.iter().find(|&&(sid, _)| sid == s) {
                machines.insert(m);
            }
        }
        trees.push((t, (roots, orphans, machines.len())));
    }

    Ok(TraceFileSummary {
        events: events.len(),
        slices: slices.len(),
        flow_pairs: flow_s.len(),
        tracks,
        trees,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;
    use amoeba_sim::Simulation;
    use std::time::Duration;

    #[test]
    fn export_round_trips_through_validator() {
        let sim = Simulation::new(42);
        let tele = Telemetry::install(&sim.handle());
        tele.name_machine(1, "client-0");
        tele.name_machine(2, "server-0");
        let root = tele.begin_root("cli.create", 1);
        let t0 = sim.handle().now();
        let child = tele.begin_child("srv.handle", 2, root);
        tele.flow(root, 1, t0, 2, t0 + Duration::from_micros(120));
        tele.end(child);
        tele.end(root);

        let json = tele.export_chrome_json();
        let summary = validate_chrome_trace(&json).expect("export must validate");
        assert_eq!(summary.tracks, 2);
        assert_eq!(summary.flow_pairs, 1);
        assert_eq!(summary.trees.len(), 1);
        let (_, (roots, orphans, machines)) = summary.trees[0];
        assert_eq!((roots, orphans, machines), (1, 0, 2));
    }

    #[test]
    fn validator_rejects_missing_fields() {
        assert!(validate_chrome_trace("{}").is_err());
        let no_pid = r#"{"traceEvents":[{"ph":"X","ts":1,"dur":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(no_pid).unwrap_err().contains("pid"));
        let dangling = r#"{"traceEvents":[
            {"ph":"X","name":"a","pid":1,"tid":0,"ts":0,"dur":5},
            {"ph":"s","name":"net","id":9,"pid":1,"tid":0,"ts":1}
        ]}"#;
        assert!(validate_chrome_trace(dangling)
            .unwrap_err()
            .contains("without finish"));
    }

    #[test]
    fn disabled_export_is_valid_and_empty() {
        let json = Telemetry::disabled().export_chrome_json();
        let summary = validate_chrome_trace(&json).expect("empty export parses");
        assert_eq!(summary.events, 0);
    }
}

//! Causal tracing and metrics over **simulated** time.
//!
//! The directory service runs inside a deterministic discrete-event
//! simulation (`amoeba-sim`), which changes what "observability" means:
//!
//! - **Timestamps are simulated time.** Host wall-clock time measures the
//!   simulator, not the system; every span and histogram here is recorded
//!   against [`SimTime`], so a trace answers "where did this write's
//!   124.9 ms go?" in the modeled system's own clock — and is bit-identical
//!   across runs of the same seed.
//! - **Observation must not perturb the simulation.** The collector obeys
//!   the same discipline as the PR 7 decision-trace recorder:
//!   1. trace contexts ride on packets as *out-of-band metadata* (the
//!      `Packet::trace` field), never inside encoded payloads, so wire-byte
//!      accounting, fragmentation and contention charging are unchanged;
//!   2. trace/span ids come from the collector's **own** SplitMix64 stream
//!      (seeded from the simulation seed), never from the sim RNG, so the
//!      kernel's random sequence is untouched;
//!   3. recording never sleeps, schedules, or draws simulated randomness —
//!      it only appends to buffers under a host-side mutex.
//!
//!   With the collector disabled every record call is a no-op on a `None`
//!   handle, and a test asserts the simulated clock is bit-identical
//!   between an instrumented and an uninstrumented run.
//!
//! # Context propagation invariants
//!
//! A context is a `(trace_id, span_id)` pair ([`TraceCtx`]); `trace == 0`
//! means "no context" and propagates as silence. The invariants each layer
//! maintains:
//!
//! - The **client** allocates a fresh root span per directory operation and
//!   passes its ctx down through `DirClient` → RPC `trans`.
//! - **RPC** carries the ctx on the request packet; the server-side
//!   `getreq` surfaces it on `IncomingRequest`, and `putrep` echoes it onto
//!   the reply so client-side completion can be attributed.
//! - The **group layer** tags each application message with the submitter's
//!   ctx (`SendReq`/`BbData` → packet metadata keyed by msgid). The
//!   sequencer opens an ordering span *parented to the submitter's ctx*
//!   when it assigns a sequence number, and the ordering ctx travels with
//!   `Accept`/`AcceptBatch` items (keyed by seqno) — including
//!   retransmissions — so every member parents its delivery to the same
//!   ordering span.
//! - **RSM** parents each `apply` span to the ordering ctx delivered with
//!   the group message; effects triggered by an apply (lease revocation
//!   callbacks) carry the server handler's ctx onward.
//!
//! The result: one cross-shard write yields a single *connected* span tree
//! (every span's parent exists; exactly one root) spanning client,
//! sequencer, replica, and lease-holder machines.
//!
//! # Exporter
//!
//! [`Telemetry::export_chrome_json`] emits Chrome trace-event JSON (the
//! Perfetto-compatible `traceEvents` array): one process ("track") per
//! machine named via metadata events, `ph:"X"` complete slices with µs
//! timestamps, and `ph:"s"`/`ph:"f"` flow events bound to tiny
//! `net:tx`/`net:rx` slices along every traced packet edge. Load the file
//! in `ui.perfetto.dev` or `chrome://tracing`. [`validate_chrome_trace`]
//! re-parses an export with the in-crate JSON parser (`json` module) and
//! checks the required fields, so CI can prove the exporter never bit-rots.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use amoeba_sim::{SimHandle, SimTime};
use parking_lot::Mutex;

pub mod export;
pub mod hist;
pub mod json;

pub use export::validate_chrome_trace;
pub use hist::{Hist, MetricsSnapshot};

/// A causal trace context: which request (`trace`) and which operation
/// within it (`span`). `trace == 0` means "no context"; ids are never 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    pub trace: u64,
    pub span: u64,
}

impl TraceCtx {
    pub const NONE: TraceCtx = TraceCtx { trace: 0, span: 0 };

    pub fn is_none(&self) -> bool {
        self.trace == 0
    }

    pub fn is_some(&self) -> bool {
        self.trace != 0
    }
}

thread_local! {
    /// The ambient trace context of the current simulated process.
    ///
    /// Every simulated process is one OS thread, so a thread-local is
    /// exactly "the context of the operation this process is inside".
    /// Layers that cannot practically thread a `TraceCtx` argument
    /// (the RPC client under a deep client API) read it here.
    static CURRENT: std::cell::Cell<TraceCtx> = const { std::cell::Cell::new(TraceCtx::NONE) };
}

/// The ambient trace context of the calling simulated process
/// (`TraceCtx::NONE` when none is set).
pub fn current_ctx() -> TraceCtx {
    CURRENT.with(|c| c.get())
}

/// Sets the ambient trace context; returns the previous one so callers
/// can restore it when their scope ends (do so — server loops are
/// long-lived threads and a leaked context mis-parents later requests).
pub fn set_current_ctx(ctx: TraceCtx) -> TraceCtx {
    CURRENT.with(|c| c.replace(ctx))
}

/// One recorded span. `end == None` while the span is open (an export
/// renders open spans with zero duration rather than dropping them).
#[derive(Debug, Clone)]
pub struct SpanRec {
    pub trace: u64,
    pub span: u64,
    /// Parent span id within the same trace; 0 for a root.
    pub parent: u64,
    pub name: String,
    /// Machine id — one exporter track per machine.
    pub machine: u64,
    pub start: SimTime,
    pub end: Option<SimTime>,
}

/// One traced packet edge (send → deliver), rendered as a flow arrow.
#[derive(Debug, Clone)]
pub struct FlowRec {
    pub trace: u64,
    pub span: u64,
    pub src_machine: u64,
    pub sent_at: SimTime,
    pub dst_machine: u64,
    pub delivered_at: SimTime,
}

struct Inner {
    rng: u64,
    /// When off, span/flow records are dropped (contexts still
    /// propagate, histograms still fill) — the metrics-only mode long
    /// bench windows use to keep memory bounded.
    record_spans: bool,
    /// Trace sampling: record spans/flows for every Nth root operation
    /// only (`0` = record all). Contexts still propagate for every
    /// trace, so sampling never perturbs what the traced system does —
    /// it only bounds collector memory on multi-minute runs, without
    /// giving up span trees entirely the way metrics-only mode does.
    sample_every: u64,
    /// Roots opened so far (the sampling counter).
    root_count: u64,
    /// Trace ids selected by the sampler; spans/flows of other traces
    /// are dropped at record time.
    sampled: std::collections::HashSet<u64>,
    spans: Vec<SpanRec>,
    open: HashMap<u64, usize>,
    flows: Vec<FlowRec>,
    tracks: Vec<(u64, String)>,
    metrics: hist::Registry,
}

impl Inner {
    fn keeps(&self, trace: u64) -> bool {
        self.record_spans && (self.sample_every == 0 || self.sampled.contains(&trace))
    }
}

struct Collector {
    sim: SimHandle,
    inner: Mutex<Inner>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Cheap-clone handle to the per-simulation collector. A disabled handle
/// ([`Telemetry::disabled`]) makes every record call a near-free no-op.
#[derive(Clone)]
pub struct Telemetry(Option<Arc<Collector>>);

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Telemetry({})",
            if self.0.is_some() { "on" } else { "off" }
        )
    }
}

impl Telemetry {
    /// The no-op handle: nothing is recorded, nothing is allocated.
    pub fn disabled() -> Telemetry {
        Telemetry(None)
    }

    /// Creates a collector for this simulation and installs it in the
    /// kernel's user-data slot, where [`Telemetry::from_handle`] finds it.
    pub fn install(sim: &SimHandle) -> Telemetry {
        Self::install_with(sim, true, 0)
    }

    /// [`Telemetry::install`] without span/flow storage: trace contexts
    /// still propagate and the latency histograms still fill, but no
    /// per-span records accumulate. The right mode for multi-second
    /// bench windows that only want percentiles.
    pub fn install_metrics_only(sim: &SimHandle) -> Telemetry {
        Self::install_with(sim, false, 0)
    }

    /// [`Telemetry::install`] with **trace sampling**: spans and flows
    /// are recorded for one in `every` root operations (the first, the
    /// `every+1`-th, …) and dropped for the rest, while histograms
    /// still fill for *all* operations. The middle ground between full
    /// tracing (span memory grows with run length) and
    /// [`install_metrics_only`](Telemetry::install_metrics_only) (no
    /// span trees at all): a multi-minute run keeps bounded span
    /// memory yet still yields complete, connected trees for the
    /// sampled operations. `every` of 0 or 1 records everything.
    pub fn install_sampled(sim: &SimHandle, every: u64) -> Telemetry {
        Self::install_with(sim, true, if every <= 1 { 0 } else { every })
    }

    fn install_with(sim: &SimHandle, record_spans: bool, sample_every: u64) -> Telemetry {
        let collector = Arc::new(Collector {
            sim: sim.clone(),
            inner: Mutex::new(Inner {
                rng: sim.seed() ^ 0xA0EB_A7E1_EC7A_CE00,
                record_spans,
                sample_every,
                root_count: 0,
                sampled: std::collections::HashSet::new(),
                spans: Vec::new(),
                open: HashMap::new(),
                flows: Vec::new(),
                tracks: Vec::new(),
                metrics: hist::Registry::default(),
            }),
        });
        sim.set_user_data(collector.clone() as Arc<dyn Any + Send + Sync>);
        Telemetry(Some(collector))
    }

    /// The handle installed on this simulation, or a disabled handle if
    /// [`Telemetry::install`] was never called. Every component already
    /// holds a `SimHandle`, so no constructor needs a telemetry parameter.
    pub fn from_handle(sim: &SimHandle) -> Telemetry {
        match sim.user_data() {
            Some(data) => match data.downcast::<Collector>() {
                Ok(c) => Telemetry(Some(c)),
                Err(_) => Telemetry(None),
            },
            None => Telemetry(None),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Names the exporter track for a machine (`process_name` metadata).
    pub fn name_machine(&self, machine: u64, name: &str) {
        if let Some(c) = &self.0 {
            let mut inner = c.inner.lock();
            if !inner.tracks.iter().any(|(m, _)| *m == machine) {
                inner.tracks.push((machine, name.to_string()));
            }
        }
    }

    /// Opens a root span (a new trace) on `machine` at the current
    /// simulated time. Returns [`TraceCtx::NONE`] when disabled.
    pub fn begin_root(&self, name: &str, machine: u64) -> TraceCtx {
        self.begin_at(name, machine, None, None)
    }

    /// Opens a child span of `parent` on `machine`. Silence propagates:
    /// a `NONE` parent (or a disabled handle) yields `NONE`.
    pub fn begin_child(&self, name: &str, machine: u64, parent: TraceCtx) -> TraceCtx {
        if parent.is_none() {
            return TraceCtx::NONE;
        }
        self.begin_at(name, machine, Some(parent), None)
    }

    /// [`Telemetry::begin_child`] with an explicit start time, for call
    /// sites that know the span began earlier than "now" (e.g. a handler
    /// attributing queueing delay).
    pub fn begin_child_at(
        &self,
        name: &str,
        machine: u64,
        parent: TraceCtx,
        start: SimTime,
    ) -> TraceCtx {
        if parent.is_none() {
            return TraceCtx::NONE;
        }
        self.begin_at(name, machine, Some(parent), Some(start))
    }

    fn begin_at(
        &self,
        name: &str,
        machine: u64,
        parent: Option<TraceCtx>,
        start: Option<SimTime>,
    ) -> TraceCtx {
        let Some(c) = &self.0 else {
            return TraceCtx::NONE;
        };
        let now = start.unwrap_or_else(|| c.sim.now());
        let mut inner = c.inner.lock();
        let span = Self::next_id(&mut inner.rng);
        let (trace, parent_span) = match parent {
            Some(p) => (p.trace, p.span),
            None => {
                let trace = Self::next_id(&mut inner.rng);
                // The sampler decides per root — per *operation* — so a
                // kept trace is recorded whole (every child span, every
                // flow) and a dropped one vanishes entirely.
                if inner.sample_every > 0 {
                    if inner.root_count % inner.sample_every == 0 {
                        inner.sampled.insert(trace);
                    }
                    inner.root_count += 1;
                }
                (trace, 0)
            }
        };
        if !inner.keeps(trace) {
            return TraceCtx { trace, span };
        }
        let idx = inner.spans.len();
        inner.spans.push(SpanRec {
            trace,
            span,
            parent: parent_span,
            name: name.to_string(),
            machine,
            start: now,
            end: None,
        });
        inner.open.insert(span, idx);
        TraceCtx { trace, span }
    }

    fn next_id(rng: &mut u64) -> u64 {
        loop {
            let id = splitmix64(rng);
            if id != 0 {
                return id;
            }
        }
    }

    /// Closes `ctx`'s span at the current simulated time.
    pub fn end(&self, ctx: TraceCtx) {
        if let Some(c) = &self.0 {
            if ctx.is_some() {
                self.end_at(ctx, c.sim.now());
            }
        }
    }

    /// Closes `ctx`'s span at an explicit simulated time.
    pub fn end_at(&self, ctx: TraceCtx, at: SimTime) {
        let Some(c) = &self.0 else { return };
        if ctx.is_none() {
            return;
        }
        let mut inner = c.inner.lock();
        if let Some(idx) = inner.open.remove(&ctx.span) {
            inner.spans[idx].end = Some(at);
        }
    }

    /// Records a traced packet edge; the network layer calls this once per
    /// delivered copy with both endpoints' timestamps.
    pub fn flow(
        &self,
        ctx: TraceCtx,
        src_machine: u64,
        sent_at: SimTime,
        dst_machine: u64,
        delivered_at: SimTime,
    ) {
        let Some(c) = &self.0 else { return };
        if ctx.is_none() {
            return;
        }
        let mut inner = c.inner.lock();
        if !inner.keeps(ctx.trace) {
            return;
        }
        inner.flows.push(FlowRec {
            trace: ctx.trace,
            span: ctx.span,
            src_machine,
            sent_at,
            dst_machine,
            delivered_at,
        });
    }

    /// Records one latency observation (µs) into the histogram for
    /// `family` (e.g. `"op.create"`).
    pub fn observe_us(&self, family: &str, us: u64) {
        if let Some(c) = &self.0 {
            c.inner.lock().metrics.observe(family, us);
        }
    }

    /// Records the simulated duration since `start` into `family`.
    pub fn observe_since(&self, family: &str, start: SimTime) {
        if let Some(c) = &self.0 {
            let dur = c.sim.now().saturating_since(start);
            c.inner
                .lock()
                .metrics
                .observe(family, dur.as_micros() as u64);
        }
    }

    /// Bumps a named counter.
    pub fn count(&self, name: &str, n: u64) {
        if let Some(c) = &self.0 {
            c.inner.lock().metrics.count(name, n);
        }
    }

    /// Sets a named gauge to its latest value.
    pub fn gauge(&self, name: &str, v: i64) {
        if let Some(c) = &self.0 {
            c.inner.lock().metrics.gauge(name, v);
        }
    }

    /// A snapshot of all recorded spans (tests and report plumbing).
    pub fn spans(&self) -> Vec<SpanRec> {
        match &self.0 {
            Some(c) => c.inner.lock().spans.clone(),
            None => Vec::new(),
        }
    }

    /// A snapshot of all recorded flow edges.
    pub fn flows(&self) -> Vec<FlowRec> {
        match &self.0 {
            Some(c) => c.inner.lock().flows.clone(),
            None => Vec::new(),
        }
    }

    /// A snapshot of the metrics registry (histograms + counters + gauges).
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.0 {
            Some(c) => c.inner.lock().metrics.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Serializes everything recorded so far as Chrome trace-event JSON.
    pub fn export_chrome_json(&self) -> String {
        match &self.0 {
            Some(c) => {
                let inner = c.inner.lock();
                export::chrome_json(&inner.spans, &inner.flows, &inner.tracks)
            }
            None => String::from("{\"traceEvents\":[]}\n"),
        }
    }
}

/// Connectivity statistics for the span tree of one trace: `(roots,
/// orphans, distinct machines)`. A *connected* tree has `roots == 1` and
/// `orphans == 0`; an orphan is a non-root span whose parent id does not
/// appear in the trace.
pub fn span_tree_stats(spans: &[SpanRec], trace: u64) -> (usize, usize, usize) {
    let in_trace: Vec<&SpanRec> = spans.iter().filter(|s| s.trace == trace).collect();
    let ids: std::collections::HashSet<u64> = in_trace.iter().map(|s| s.span).collect();
    let mut roots = 0;
    let mut orphans = 0;
    let mut machines = std::collections::HashSet::new();
    for s in &in_trace {
        machines.insert(s.machine);
        if s.parent == 0 {
            roots += 1;
        } else if !ids.contains(&s.parent) {
            orphans += 1;
        }
    }
    (roots, orphans, machines.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoeba_sim::Simulation;

    #[test]
    fn disabled_handle_is_silent() {
        let tele = Telemetry::disabled();
        let ctx = tele.begin_root("op", 1);
        assert!(ctx.is_none());
        tele.end(ctx);
        tele.observe_us("op", 10);
        assert!(tele.spans().is_empty());
        assert!(tele.metrics().hists.is_empty());
    }

    #[test]
    fn install_then_from_handle_shares_collector() {
        let sim = Simulation::new(7);
        let tele = Telemetry::install(&sim.handle());
        let again = Telemetry::from_handle(&sim.handle());
        let ctx = tele.begin_root("op", 3);
        assert!(ctx.is_some());
        again.end(ctx);
        let spans = again.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "op");
        assert!(spans[0].end.is_some());
    }

    #[test]
    fn child_of_none_is_none_and_ids_are_deterministic() {
        let sim = Simulation::new(9);
        let tele = Telemetry::install(&sim.handle());
        assert!(tele.begin_child("x", 0, TraceCtx::NONE).is_none());

        let sim2 = Simulation::new(9);
        let tele2 = Telemetry::install(&sim2.handle());
        let a = tele.begin_root("op", 1);
        let b = tele2.begin_root("op", 1);
        assert_eq!((a.trace, a.span), (b.trace, b.span));
    }

    #[test]
    fn sampling_keeps_every_nth_root_whole_and_drops_the_rest() {
        let sim = Simulation::new(5);
        let tele = Telemetry::install_sampled(&sim.handle(), 3);
        let mut kept = Vec::new();
        for i in 0..7 {
            let root = tele.begin_root("op", 1);
            assert!(root.is_some(), "contexts propagate for every trace");
            let kid = tele.begin_child("kid", 2, root);
            tele.flow(kid, 1, sim.handle().now(), 2, sim.handle().now());
            tele.end(kid);
            tele.end(root);
            tele.observe_us("op", 10);
            if i % 3 == 0 {
                kept.push(root.trace);
            }
        }
        let spans = tele.spans();
        // Roots 0, 3, 6 kept — two spans each; the other four vanish.
        assert_eq!(spans.len(), 6);
        for trace in kept {
            let (roots, orphans, _) = span_tree_stats(&spans, trace);
            assert_eq!((roots, orphans), (1, 0), "sampled trees stay connected");
        }
        // Flows follow the same verdict as their trace's spans.
        assert_eq!(tele.flows().len(), 3);
        // Histograms fill for every operation, sampled or not.
        let snap = tele.metrics();
        assert_eq!(snap.hists.get("op").unwrap().count, 7);
    }

    #[test]
    fn sampling_of_one_records_everything() {
        let sim = Simulation::new(5);
        let tele = Telemetry::install_sampled(&sim.handle(), 1);
        for _ in 0..4 {
            let root = tele.begin_root("op", 1);
            tele.end(root);
        }
        assert_eq!(tele.spans().len(), 4);
    }

    #[test]
    fn span_tree_stats_counts_roots_and_orphans() {
        let sim = Simulation::new(1);
        let tele = Telemetry::install(&sim.handle());
        let root = tele.begin_root("root", 1);
        let kid = tele.begin_child("kid", 2, root);
        let _grandkid = tele.begin_child("grandkid", 3, kid);
        let (roots, orphans, machines) = span_tree_stats(&tele.spans(), root.trace);
        assert_eq!((roots, orphans, machines), (1, 0, 3));
    }
}

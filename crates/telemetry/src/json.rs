//! A minimal recursive-descent JSON parser — just enough to validate the
//! exporter's own output (the workspace builds offline; there is no serde).
//! Accepts standard JSON; numbers are parsed as `f64`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Value::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from a &str,
                // so boundaries are valid).
                let s = &b[*pos..];
                let len = match s[0] {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&s[..len]).map_err(|_| "bad utf8")?);
                *pos += len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":true,"e":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
